"""Per-transaction lifecycle tracking: the causal timeline layer.

A :class:`LifecycleTracker` follows sampled transactions from the
light-node submit round through gossip hops to per-node attachment and
confirmation, recording a :class:`TxLifecycle` timeline of
``(stage, node, sim_time)`` events plus one causal span tree on the
shared :class:`~repro.telemetry.tracer.Tracer`:

* ``tx.lifecycle`` — the root span, opened when the device starts its
  submit round (trace id ``tx:<device>:<counter>``, deterministic);
* ``tx.ingest`` — one child span per node that attaches the
  transaction, parented on whichever span was ambient when the
  carrying message was sent (so hops chain device → gateway → peers).

Stages (in causal order)::

    submitted -> tips_received -> pow_solved
              -> received / verified / solidified / attached  (per node)
              -> credit_observed                              (per node)
              -> confirmed                                    (deployment-wide)

Everything is driven through the node hot paths behind the same
zero-overhead discipline as the rest of the telemetry package:
deployments built without ``telemetry=True`` get :data:`NULL_LIFECYCLE`
whose methods are empty one-liners and whose ``tracer`` is the null
tracer, so the ledger stays bit-identical (see
``tests/telemetry/test_null_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .registry import SECONDS_BUCKETS, coerce_registry
from .tracer import NULL_TRACER, Span, TraceContext, Tracer

__all__ = [
    "StageEvent",
    "TxLifecycle",
    "LifecycleTracker",
    "NullLifecycle",
    "NULL_LIFECYCLE",
    "coerce_lifecycle",
    "STAGES",
]

STAGES: Tuple[str, ...] = (
    "submitted",
    "tips_received",
    "pow_solved",
    "received",
    "verified",
    "solidified",
    "attached",
    "credit_observed",
    "confirmed",
)
"""Every stage name a timeline may carry, in causal order."""


@dataclass(frozen=True)
class StageEvent:
    """One lifecycle fact: *stage* happened at *node* at sim-time *time*."""

    stage: str
    node: str
    time: float


@dataclass
class TxLifecycle:
    """The observed timeline of one sampled transaction."""

    trace_id: str
    device: str
    started: float
    tx_hash: Optional[bytes] = None
    confirmed: bool = False
    events: List[StageEvent] = field(default_factory=list)
    root: Optional[Span] = None
    _seen: set = field(default_factory=set)

    @property
    def short_hash(self) -> str:
        return self.tx_hash.hex()[:16] if self.tx_hash else ""

    @property
    def bound(self) -> bool:
        """True once the PoW solved and a concrete tx hash exists."""
        return self.tx_hash is not None

    def stage_time(self, stage: str, node: Optional[str] = None
                   ) -> Optional[float]:
        """Earliest time *stage* was recorded (at *node* if given)."""
        times = [e.time for e in self.events
                 if e.stage == stage and (node is None or e.node == node)]
        return min(times) if times else None

    def stage_times(self, stage: str) -> Dict[str, float]:
        """node -> time for every record of *stage*."""
        return {e.node: e.time for e in self.events if e.stage == stage}

    def nodes(self) -> List[str]:
        """Every distinct node that recorded a stage, sorted."""
        return sorted({e.node for e in self.events})

    def attached_nodes(self) -> List[str]:
        return sorted({e.node for e in self.events if e.stage == "attached"})

    @property
    def context(self) -> Optional[TraceContext]:
        if self.root is None:
            return None
        return TraceContext(trace_id=self.trace_id,
                            span_id=self.root.span_id)


class _NullScope:
    """Shared no-op context manager for the untracked-ingest path."""

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _IngestScope:
    """Activates an ingest span's context for the with-block, then ends
    the span — so flood sends issued inside the block chain onto it."""

    __slots__ = ("_tracer", "span", "_activation")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self.span = span
        self._activation = None

    def __enter__(self) -> Span:
        self._activation = self._tracer.activate(
            self._tracer.context_of(self.span))
        self._activation.__enter__()
        return self.span

    def __exit__(self, *exc) -> bool:
        self._activation.__exit__(*exc)
        self._tracer.end_span(self.span)
        return False


class LifecycleTracker:
    """Owns sampled :class:`TxLifecycle` timelines and their spans.

    Args:
        clock: shared sim clock (callable or ``now()`` object).
        tracer: the deployment tracer spans are opened on.
        registry: the deployment metrics registry (may be null).
        sample_every: trace every Nth submit round per tracker
            (1 = every transaction).
    """

    enabled = True

    def __init__(self, clock: object = None, *, tracer: Tracer = None,
                 registry: object = None, sample_every: int = 1):
        if clock is None:
            self._time_fn: Callable[[], float] = lambda: 0.0
        elif callable(clock):
            self._time_fn = clock
        else:
            self._time_fn = clock.now
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.sample_every = sample_every
        self._counter = 0
        self._timelines: List[TxLifecycle] = []
        self._by_hash: Dict[bytes, TxLifecycle] = {}

        registry = coerce_registry(registry)
        self._m_sampled = registry.counter(
            "repro_trace_transactions_sampled_total",
            "Submit rounds picked up by the lifecycle tracker")
        self._m_spans = registry.counter(
            "repro_trace_spans_total",
            "Causal spans opened for sampled transactions")
        self._m_stage = registry.counter(
            "repro_lifecycle_stage_events_total",
            "Lifecycle stage records, by stage")
        self._m_attach_latency = registry.histogram(
            "repro_lifecycle_submit_to_attach_seconds",
            "Submit round start to first full-node attach",
            buckets=SECONDS_BUCKETS)
        self._m_confirm_latency = registry.histogram(
            "repro_lifecycle_confirmation_seconds",
            "Submit round start to deployment-wide confirmation",
            buckets=SECONDS_BUCKETS)
        self._m_coverage = registry.gauge(
            "repro_lifecycle_propagation_coverage_ratio",
            "Mean fraction of full nodes reached by sampled transactions")

    # -- device-side hooks -------------------------------------------------

    def begin_submission(self, device: str) -> Optional[TxLifecycle]:
        """Called when a light node starts a submit round.

        Returns a timeline handle for every ``sample_every``-th round
        (``None`` otherwise); the handle rides the round's pending-state
        dict until :meth:`bind` attaches a concrete tx hash.
        """
        self._counter += 1
        if (self._counter - 1) % self.sample_every != 0:
            return None
        now = self._time_fn()
        trace_id = f"tx:{device}:{self._counter:05d}"
        timeline = TxLifecycle(trace_id=trace_id, device=device, started=now)
        timeline.root = self.tracer.start_root_span(
            "tx.lifecycle", trace_id, device=device)
        self._timelines.append(timeline)
        self._m_sampled.inc()
        self._m_spans.inc()
        self._record(timeline, "submitted", device, now)
        return timeline

    def record_handle(self, timeline: Optional[TxLifecycle], stage: str,
                      node: str) -> None:
        """Record *stage* on a not-yet-bound timeline handle (no-op for
        unsampled rounds, which carry ``None``)."""
        if timeline is not None:
            self._record(timeline, stage, node, self._time_fn())

    def bind(self, timeline: Optional[TxLifecycle], tx_hash: bytes,
             **attributes: object) -> None:
        """Tie a solved transaction hash to its timeline (records
        ``pow_solved`` — called after the modelled compute delay)."""
        if timeline is None:
            return
        timeline.tx_hash = tx_hash
        self._by_hash[tx_hash] = timeline
        if timeline.root is not None:
            timeline.root.set_attribute("tx", tx_hash.hex()[:16])
            for key, value in attributes.items():
                timeline.root.set_attribute(key, value)
        self._record(timeline, "pow_solved", timeline.device,
                     self._time_fn())

    # -- node-side hooks ---------------------------------------------------

    def record(self, tx_hash: bytes, stage: str, node: str) -> None:
        """Record *stage* at *node* for a bound transaction; unknown
        hashes (unsampled traffic) are ignored, repeats deduplicated."""
        timeline = self._by_hash.get(tx_hash)
        if timeline is not None:
            now = self._time_fn()
            self._record(timeline, stage, node, now)
            if stage == "attached" and len(timeline.stage_times(stage)) == 1:
                self._m_attach_latency.observe(now - timeline.started)

    def context_of(self, tx_hash: bytes) -> Optional[TraceContext]:
        """The root context for a bound hash (hop-span parent fallback)."""
        timeline = self._by_hash.get(tx_hash)
        return timeline.context if timeline is not None else None

    def ingest(self, tx_hash: bytes, *, node: str,
               source: Optional[str] = None):
        """Context manager wrapping a full node's attach tail.

        For sampled transactions it opens a ``tx.ingest`` span —
        parented on the ambient context when that context belongs to
        the same trace (the carrying message's send site), else on the
        timeline root — and keeps it ambient so the flood sends inside
        the block chain onto it.  Untracked traffic gets a shared no-op
        scope.
        """
        timeline = self._by_hash.get(tx_hash)
        if timeline is None or not self.tracer.enabled:
            return _NULL_SCOPE
        ambient = self.tracer.current
        if ambient is not None and ambient.trace_id == timeline.trace_id:
            parent = ambient
        else:
            parent = timeline.context
        if parent is None:
            return _NULL_SCOPE
        span = self.tracer.start_child_span(
            "tx.ingest", parent, node=node, source=source or "")
        self._m_spans.inc()
        return _IngestScope(self.tracer, span)

    # -- deployment-wide sweeps --------------------------------------------

    def sweep_confirmations(self, nodes, *, threshold: int = 3) -> int:
        """Mark timelines confirmed once *every* node in *nodes* holds
        the transaction at cumulative weight >= *threshold*.

        Confirmation is a property of the whole deployment, so it is
        observed by sweeping (call periodically from the driver), not
        from any single node's hot path.  Returns how many timelines
        newly confirmed.
        """
        now = self._time_fn()
        newly = 0
        for timeline in self._timelines:
            if timeline.confirmed or timeline.tx_hash is None:
                continue
            tx_hash = timeline.tx_hash
            if all(tx_hash in node.tangle
                   and node.tangle.is_confirmed(tx_hash, threshold)
                   for node in nodes):
                timeline.confirmed = True
                self._record(timeline, "confirmed", "*", now)
                self._m_confirm_latency.observe(now - timeline.started)
                newly += 1
        self._update_coverage(len(nodes))
        return newly

    def finalize(self, *, node_count: int) -> None:
        """End-of-run bookkeeping: close still-open root spans and set
        the propagation-coverage gauge."""
        for timeline in self._timelines:
            if timeline.root is not None and not timeline.root.finished:
                self.tracer.end_span(timeline.root)
        self._update_coverage(node_count)

    def _update_coverage(self, node_count: int) -> None:
        bound = [t for t in self._timelines if t.bound]
        if not bound or node_count == 0:
            return
        total = sum(len(t.attached_nodes()) for t in bound)
        self._m_coverage.set(total / (len(bound) * node_count))

    # -- introspection -----------------------------------------------------

    def timelines(self) -> List[TxLifecycle]:
        """Every sampled timeline, in submit order."""
        return list(self._timelines)

    def timeline_for(self, tx_hash: bytes) -> Optional[TxLifecycle]:
        return self._by_hash.get(tx_hash)

    # -- internal ----------------------------------------------------------

    def _record(self, timeline: TxLifecycle, stage: str, node: str,
                now: float) -> None:
        key = (stage, node)
        if key in timeline._seen:
            return
        timeline._seen.add(key)
        timeline.events.append(StageEvent(stage=stage, node=node, time=now))
        self._m_stage.inc(stage=stage)


class NullLifecycle:
    """Disabled lifecycle tracking: every hook is an empty one-liner."""

    enabled = False
    tracer = NULL_TRACER
    sample_every = 0

    def begin_submission(self, device: str) -> None:
        return None

    def record_handle(self, timeline, stage: str, node: str) -> None:
        pass

    def bind(self, timeline, tx_hash: bytes, **attributes: object) -> None:
        pass

    def record(self, tx_hash: bytes, stage: str, node: str) -> None:
        pass

    def context_of(self, tx_hash: bytes) -> None:
        return None

    def ingest(self, tx_hash: bytes, *, node: str,
               source: Optional[str] = None) -> _NullScope:
        return _NULL_SCOPE

    def sweep_confirmations(self, nodes, *, threshold: int = 3) -> int:
        return 0

    def finalize(self, *, node_count: int) -> None:
        pass

    def timelines(self) -> List[TxLifecycle]:
        return []

    def timeline_for(self, tx_hash: bytes) -> None:
        return None


NULL_LIFECYCLE = NullLifecycle()
"""Shared inert tracker: the default for every ``lifecycle=`` knob."""


def coerce_lifecycle(lifecycle: object) -> object:
    """Normalise a ``lifecycle=`` argument: None -> NULL_LIFECYCLE."""
    return NULL_LIFECYCLE if lifecycle is None else lifecycle
