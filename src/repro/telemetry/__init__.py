"""Unified telemetry: metrics registry, sim-clock tracing, exporters.

The observability layer for the whole reproduction.  One
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
and one :class:`Tracer` (nested spans in simulated time) serve a
deployment; subsystems receive the registry through a ``telemetry=``
knob and instrument their hot paths.  Disabled means
:data:`NULL_REGISTRY` — inert singleton instruments whose calls are
empty, so tier-1 timings are unaffected.

Metric names follow ``repro_<subsystem>_<name>`` with subsystems
``tangle``, ``pow``, ``network``, ``keydist`` and ``credit`` — the
catalog lives in ``docs/TELEMETRY.md``.
"""

from .registry import (
    COUNT_BUCKETS,
    DIFFICULTY_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricEvent,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    coerce_registry,
)
from .series import TimeSeries
from .tracer import NULL_TRACER, NullTracer, Span, Tracer
from .exporters import export_jsonl, render_summary, to_prometheus_text
from .scenario import run_smoke_scenario

__all__ = [
    "COUNT_BUCKETS",
    "DIFFICULTY_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricEvent",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Span",
    "TimeSeries",
    "Tracer",
    "coerce_registry",
    "export_jsonl",
    "render_summary",
    "run_smoke_scenario",
    "to_prometheus_text",
]
