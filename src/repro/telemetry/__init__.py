"""Unified telemetry: metrics registry, sim-clock tracing, exporters.

The observability layer for the whole reproduction.  One
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
and one :class:`Tracer` (nested spans in simulated time) serve a
deployment; subsystems receive the registry through a ``telemetry=``
knob and instrument their hot paths.  Disabled means
:data:`NULL_REGISTRY` — inert singleton instruments whose calls are
empty, so tier-1 timings are unaffected.

On top of the metrics sit the causal layers: :class:`TraceContext`
rides message envelopes so spans parent across nodes, and the
:class:`LifecycleTracker` assembles per-transaction timelines
(submitted → PoW → per-node attach → confirmed) that export as Chrome
trace-event JSON (:func:`chrome_trace_json`) and causal-tree text
(:func:`render_causal_tree`).

Metric names follow ``repro_<subsystem>_<name>`` with subsystems
``tangle``, ``pow``, ``network``, ``keydist``, ``credit``, ``trace``
and ``lifecycle`` — the catalog lives in ``docs/TELEMETRY.md``.
"""

from .registry import (
    COUNT_BUCKETS,
    DIFFICULTY_BUCKETS,
    QUANTILES,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricEvent,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    bucket_quantile,
    coerce_registry,
)
from .series import TimeSeries
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
)
from .lifecycle import (
    NULL_LIFECYCLE,
    LifecycleTracker,
    NullLifecycle,
    StageEvent,
    TxLifecycle,
    coerce_lifecycle,
)
from .exporters import export_jsonl, render_summary, to_prometheus_text
from .trace_export import (
    chrome_trace_json,
    critical_path,
    dominant_stage,
    lifecycle_report,
    render_causal_tree,
    render_lifecycle_text,
    to_chrome_trace,
)
from .scenario import run_smoke_scenario, run_trace_scenario

__all__ = [
    "COUNT_BUCKETS",
    "DIFFICULTY_BUCKETS",
    "QUANTILES",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LifecycleTracker",
    "MetricEvent",
    "MetricsRegistry",
    "NULL_LIFECYCLE",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullLifecycle",
    "NullRegistry",
    "NullTracer",
    "Span",
    "StageEvent",
    "TimeSeries",
    "TraceContext",
    "Tracer",
    "TxLifecycle",
    "bucket_quantile",
    "chrome_trace_json",
    "coerce_lifecycle",
    "coerce_registry",
    "critical_path",
    "dominant_stage",
    "export_jsonl",
    "lifecycle_report",
    "render_causal_tree",
    "render_lifecycle_text",
    "render_summary",
    "run_smoke_scenario",
    "run_trace_scenario",
    "to_chrome_trace",
    "to_prometheus_text",
]
