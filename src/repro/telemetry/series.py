"""Timestamped event series with O(log n) window queries.

The accumulation layer shared by the rate/trace adapters in
:mod:`repro.analysis`: a :class:`TimeSeries` keeps (time, value) points
ordered by time — appends in time order are O(1), out-of-order inserts
fall back to ``bisect.insort`` — and answers *window* questions
(count/sum/rate inside [start, end]) by bisecting the bounds instead of
rescanning every point.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import List, Tuple

__all__ = ["TimeSeries"]


class TimeSeries:
    """Time-ordered (timestamp, value) points with bisect windowing."""

    def __init__(self):
        self._times: List[float] = []
        self._values: List[float] = []
        # Prefix sums make window_sum O(log n) too; rebuilt lazily
        # after out-of-order inserts.
        self._prefix: List[float] = [0.0]
        self._prefix_fresh = True

    def __len__(self) -> int:
        return len(self._times)

    def append(self, timestamp: float, value: float = 1.0) -> None:
        """Add one point (fast path: timestamps arrive in order)."""
        t = float(timestamp)
        if not self._times or t >= self._times[-1]:
            self._times.append(t)
            self._values.append(float(value))
            if self._prefix_fresh:
                self._prefix.append(self._prefix[-1] + float(value))
            return
        index = bisect_right(self._times, t)
        self._times.insert(index, t)
        self._values.insert(index, float(value))
        self._prefix_fresh = False

    def _ensure_prefix(self) -> None:
        if self._prefix_fresh:
            return
        prefix = [0.0]
        for value in self._values:
            prefix.append(prefix[-1] + value)
        self._prefix = prefix
        self._prefix_fresh = True

    # -- window queries (inclusive bounds) --------------------------------

    def _window_indexes(self, start: float, end: float) -> Tuple[int, int]:
        return bisect_left(self._times, start), bisect_right(self._times, end)

    def window_count(self, start: float, end: float) -> int:
        """How many points fall inside [start, end]."""
        lo, hi = self._window_indexes(start, end)
        return hi - lo

    def window_sum(self, start: float, end: float) -> float:
        """Sum of values inside [start, end]."""
        self._ensure_prefix()
        lo, hi = self._window_indexes(start, end)
        return self._prefix[hi] - self._prefix[lo]

    def rate(self, start: float, end: float) -> float:
        """Points per second inside [start, end]."""
        if end <= start:
            raise ValueError("end must exceed start")
        return self.window_count(start, end) / (end - start)

    # -- accessors --------------------------------------------------------

    @property
    def timestamps(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def first_at_or_after(self, timestamp: float) -> int:
        """Index of the first point with time >= *timestamp* (len() if
        none)."""
        return bisect_left(self._times, timestamp)
