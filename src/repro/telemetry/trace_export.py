"""Trace artifacts: Chrome trace-event JSON, causal trees, critical paths.

Three consumers of the causal layer (:mod:`repro.telemetry.lifecycle`):

* :func:`to_chrome_trace` / :func:`chrome_trace_json` — the Trace Event
  Format understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``: one timeline row (tid) per trace, complete
  ("X") events for spans, instant ("i") events for lifecycle stages.
  Timestamps are *simulated* microseconds, so a trace of a seeded run
  is byte-identical across processes.
* :func:`critical_path` — decomposes one transaction's submit→confirm
  latency into named sequential segments (tips RTT, PoW grind, first
  hop, validation, propagation, confirmation wait) and names the
  dominant one.
* :func:`render_causal_tree` / :func:`lifecycle_report` — the human
  and machine views: a per-transaction hop tree with per-stage
  timings, and a canonical-JSON summary with latency quantiles and
  critical-path totals.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .lifecycle import TxLifecycle
from .registry import Histogram, bucket_quantile

__all__ = [
    "to_chrome_trace",
    "chrome_trace_json",
    "critical_path",
    "dominant_stage",
    "render_causal_tree",
    "render_lifecycle_text",
    "lifecycle_report",
]

_MICROS = 1_000_000.0


# -- Chrome trace-event export ----------------------------------------------

def to_chrome_trace(tracer, lifecycle=None) -> Dict[str, object]:
    """Build a Trace Event Format document from finished spans.

    Every distinct trace id gets its own thread row; driver spans (no
    trace id) share the ``driver`` row.  Lifecycle stage events are
    added as instant events on their trace's row.
    """
    tids: Dict[str, int] = {}

    def tid_for(trace_id: str) -> int:
        key = trace_id or "driver"
        if key not in tids:
            tids[key] = len(tids) + 1
        return tids[key]

    events: List[Dict[str, object]] = []
    for span in tracer.finished():
        args: Dict[str, object] = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": span.start * _MICROS,
            "dur": span.duration * _MICROS,
            "pid": 1,
            "tid": tid_for(span.trace_id),
            "args": args,
        })
    if lifecycle is not None:
        for timeline in lifecycle.timelines():
            tid = tid_for(timeline.trace_id)
            for event in timeline.events:
                events.append({
                    "name": f"stage:{event.stage}",
                    "cat": "lifecycle",
                    "ph": "i",
                    "s": "t",
                    "ts": event.time * _MICROS,
                    "pid": 1,
                    "tid": tid,
                    "args": {"node": event.node,
                             "tx": timeline.short_hash},
                })
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": key},
        }
        for key, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    events.sort(key=lambda e: (e["ts"], e["tid"], e["name"], e["ph"]))
    return {
        "displayTimeUnit": "ms",
        "traceEvents": metadata + events,
    }


def chrome_trace_json(tracer, lifecycle=None) -> str:
    """Canonical (sorted-keys, no-whitespace) Chrome trace JSON."""
    return json.dumps(to_chrome_trace(tracer, lifecycle),
                      sort_keys=True, separators=(",", ":"))


# -- critical-path analysis --------------------------------------------------

def critical_path(timeline: TxLifecycle) -> List[Tuple[str, float]]:
    """Sequential latency segments of one transaction's life.

    Segments are derived from stage timestamps and clamped at zero (a
    stage recorded in the same scheduler step as its predecessor
    contributes 0.0 s); segments whose stages never happened are
    omitted::

        tips_rtt          submitted      -> tips_received
        pow               tips_received  -> pow_solved
        first_hop         pow_solved     -> first node received
        validation        first received -> first node attached
        propagation       first attached -> last node attached
        confirmation_wait first attached -> confirmed
    """
    t_submit = timeline.stage_time("submitted")
    t_tips = timeline.stage_time("tips_received")
    t_pow = timeline.stage_time("pow_solved")
    received = timeline.stage_times("received")
    attached = timeline.stage_times("attached")
    t_confirm = timeline.stage_time("confirmed")

    segments: List[Tuple[str, float]] = []

    def add(name: str, start: Optional[float],
            end: Optional[float]) -> None:
        if start is not None and end is not None:
            segments.append((name, max(0.0, end - start)))

    add("tips_rtt", t_submit, t_tips)
    add("pow", t_tips if t_tips is not None else t_submit, t_pow)
    first_received = min(received.values()) if received else None
    first_attached = min(attached.values()) if attached else None
    last_attached = max(attached.values()) if attached else None
    add("first_hop", t_pow, first_received)
    add("validation", first_received, first_attached)
    add("propagation", first_attached, last_attached)
    add("confirmation_wait", first_attached, t_confirm)
    return segments


def dominant_stage(timeline: TxLifecycle) -> Optional[str]:
    """The critical-path segment with the largest share of latency
    (ties broken by name, so the answer is deterministic)."""
    segments = critical_path(timeline)
    if not segments:
        return None
    return max(segments, key=lambda seg: (seg[1], seg[0]))[0]


# -- text and report rendering ----------------------------------------------

def render_causal_tree(timeline: TxLifecycle) -> str:
    """One transaction's hop tree with per-stage relative timings."""
    t0 = timeline.started
    header = (f"{timeline.trace_id}"
              f"  tx={timeline.short_hash or '(unbound)'}"
              f"  start={t0:.3f}s"
              f"  nodes={len(timeline.nodes())}")
    lines = [header]
    device_stages = []
    for stage in ("submitted", "tips_received", "pow_solved"):
        t = timeline.stage_time(stage)
        if t is not None:
            device_stages.append(f"{stage}@{t - t0:+.3f}s")
    lines.append(f"└─ {timeline.device} [{' '.join(device_stages)}]")
    attached = timeline.stage_times("attached")
    node_names = sorted(
        set(timeline.stage_times("received")) | set(attached),
        key=lambda n: (attached.get(n, float("inf")), n))
    for i, node in enumerate(node_names):
        branch = "└─" if i == len(node_names) - 1 else "├─"
        stages = []
        for stage in ("received", "solidified", "attached",
                      "credit_observed"):
            t = timeline.stage_times(stage).get(node)
            if t is not None:
                stages.append(f"{stage}@{t - t0:+.3f}s")
        lines.append(f"   {branch} {node} [{' '.join(stages)}]")
    t_confirm = timeline.stage_time("confirmed")
    if t_confirm is not None:
        lines.append(f"   confirmed@{t_confirm - t0:+.3f}s")
    dominant = dominant_stage(timeline)
    if dominant is not None:
        path = " ".join(f"{name}={seconds:.3f}s"
                        for name, seconds in critical_path(timeline))
        lines.append(f"   critical path: {path}  dominant={dominant}")
    return "\n".join(lines)


def lifecycle_report(lifecycle, *, node_count: int) -> Dict[str, object]:
    """Canonical plain-data summary of every sampled timeline.

    Per-run aggregate counts, latency quantiles (re-derived through a
    scratch :class:`Histogram` so the numbers match the exported
    metrics), critical-path totals, and one record per *delivered*
    transaction (bound and attached somewhere); rounds that never bound
    a hash or whose submit was lost on the wireless hop are counted but
    carry no tree.
    """
    timelines = lifecycle.timelines()
    delivered = [t for t in timelines if t.bound and t.attached_nodes()]
    lost = [t for t in timelines if t.bound and not t.attached_nodes()]
    unbound = [t for t in timelines if not t.bound]

    attach_hist = _scratch_histogram()
    confirm_hist = _scratch_histogram()
    path_totals: Dict[str, Dict[str, object]] = {}
    records = []
    for timeline in delivered:
        first_attach = timeline.stage_time("attached")
        if first_attach is not None:
            attach_hist.observe(first_attach - timeline.started)
        t_confirm = timeline.stage_time("confirmed")
        if t_confirm is not None:
            confirm_hist.observe(t_confirm - timeline.started)
        segments = critical_path(timeline)
        dominant = dominant_stage(timeline)
        for name, seconds in segments:
            entry = path_totals.setdefault(
                name, {"seconds": 0.0, "dominant_count": 0})
            entry["seconds"] += seconds
        if dominant is not None:
            path_totals[dominant]["dominant_count"] += 1
        records.append({
            "trace_id": timeline.trace_id,
            "tx": timeline.short_hash,
            "device": timeline.device,
            "started": timeline.started,
            "nodes": timeline.nodes(),
            "coverage": (len(timeline.attached_nodes()) / node_count
                         if node_count else 0.0),
            "confirmed": timeline.confirmed,
            "critical_path": [[name, seconds] for name, seconds in segments],
            "dominant_stage": dominant,
        })

    def quantile_block(hist: Histogram) -> Dict[str, Optional[float]]:
        merged = hist.merged()
        return {
            "count": merged.count,
            "mean": merged.mean,
            "p50": bucket_quantile(hist.buckets, merged, 0.5),
            "p95": bucket_quantile(hist.buckets, merged, 0.95),
            "p99": bucket_quantile(hist.buckets, merged, 0.99),
        }

    coverage = (sum(r["coverage"] for r in records) / len(records)
                if records else 0.0)
    return {
        "sampled": len(timelines),
        "delivered": len(delivered),
        "confirmed": sum(1 for t in delivered if t.confirmed),
        "lost_in_transit": len(lost),
        "incomplete_rounds": len(unbound),
        "node_count": node_count,
        "propagation_coverage": coverage,
        "submit_to_attach": quantile_block(attach_hist),
        "submit_to_confirm": quantile_block(confirm_hist),
        "critical_path_totals": {
            name: {"seconds": entry["seconds"],
                   "dominant_count": entry["dominant_count"]}
            for name, entry in sorted(path_totals.items())
        },
        "transactions": records,
    }


def render_lifecycle_text(lifecycle, *, node_count: int) -> str:
    """The full text report: summary header + one causal tree per
    delivered transaction."""
    report = lifecycle_report(lifecycle, node_count=node_count)
    lines = [
        "transaction lifecycle report",
        f"  sampled={report['sampled']}"
        f" delivered={report['delivered']}"
        f" confirmed={report['confirmed']}"
        f" lost_in_transit={report['lost_in_transit']}"
        f" incomplete_rounds={report['incomplete_rounds']}",
        f"  propagation coverage: {report['propagation_coverage']:.3f}"
        f" of {node_count} full nodes",
    ]
    attach = report["submit_to_attach"]
    if attach["count"]:
        lines.append(
            f"  submit->attach: n={attach['count']}"
            f" mean={attach['mean']:.3f}s p50={attach['p50']:.3f}s"
            f" p95={attach['p95']:.3f}s p99={attach['p99']:.3f}s")
    confirm = report["submit_to_confirm"]
    if confirm["count"]:
        lines.append(
            f"  submit->confirm: n={confirm['count']}"
            f" mean={confirm['mean']:.3f}s p50={confirm['p50']:.3f}s"
            f" p95={confirm['p95']:.3f}s p99={confirm['p99']:.3f}s")
    totals = report["critical_path_totals"]
    if totals:
        dominant_line = " ".join(
            f"{name}:{entry['dominant_count']}"
            for name, entry in totals.items() if entry["dominant_count"])
        lines.append(f"  dominant stages: {dominant_line}")
    lines.append("")
    for timeline in lifecycle.timelines():
        if timeline.bound and timeline.attached_nodes():
            lines.append(render_causal_tree(timeline))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _scratch_histogram() -> Histogram:
    """A registry-less histogram for report-time quantile estimation."""
    from .registry import MetricsRegistry

    scratch = MetricsRegistry(record_events=False)
    return scratch.histogram("repro_scratch_seconds", "report scratch")
