"""Telemetry smoke scenario: a small deployment that exercises every
registered instrument.

The CI coverage gate (``repro telemetry --require-all``) fails when any
registered metric is never emitted, so this scenario is written to
drive all five instrumented subsystems:

* **tangle** — weighted-walk tip selection (walk lengths), steady
  attach traffic (flush batches, weight reads), plus explicit
  ``tips()`` / ``depth_from_tips()`` reads to hit both cache branches;
* **pow** — every submission grinds at its credit-assigned difficulty;
* **network** — the wireless links are lossy (drops) and the full-node
  mesh floods gossip (relays and duplicate suppressions);
* **keydist** — the default sensor cycle includes sensitive streams,
  so the manager runs Fig. 4 handshakes during ``initialize()``;
* **credit** — a double-spend report is injected mid-run, so penalty
  events and the *punished* difficulty tier both appear.
* **faults/retries** — a short recovery probe at the end of the run:
  an in-flight message is purged by a link cut, a duplication overlay
  doubles a burst of probes, and a key-distribution handshake is run
  against a crashed-then-restarted device (driving the retry attempt/
  backoff/recovery counters) plus one against a permanently dead
  device (driving exhaustion).
* **storage** — a journalling probe: a gateway's history is journalled
  to an instrumented store, checkpointed (with pruning), extended, and
  loaded back, driving every ``repro_storage_*`` write/flush/replay
  counter.
* **crypto** — a batch-verification probe: a burst of fresh
  transactions (one with a corrupted signature) is fed through a
  gateway's batch-ingest path, driving the ``repro_crypto_batch_*``
  round/size/verified/fallback instruments.
* **trace/lifecycle** — every submission round is sampled by the
  :class:`~repro.telemetry.lifecycle.LifecycleTracker`, and a final
  confirmation sweep plus ``finalize()`` drive the ``repro_trace_*``
  and ``repro_lifecycle_*`` instruments (confirmation latency and
  propagation-coverage included).
"""

from __future__ import annotations

__all__ = ["run_smoke_scenario", "run_trace_scenario"]


def run_smoke_scenario(*, seed: int = 42, device_count: int = 4,
                       gateway_count: int = 2, seconds: float = 40.0,
                       report_interval: float = 2.0,
                       crypto_backend: str = "reference",
                       pow_workers: int = 0):
    """Build, run and return a telemetry-enabled :class:`BIoTSystem`.

    The returned system's ``telemetry`` registry and ``tracer`` hold
    the full run; ``telemetry.unobserved()`` is expected to be empty.
    *crypto_backend* / *pow_workers* select the accelerated crypto lane
    (CI runs the scenario under both configurations — the instrument
    catalog and the scenario outcome must not depend on the backend).
    """
    # Imported lazily: repro.core.biot itself imports repro.telemetry.
    from ..core.biot import BIoTConfig, BIoTSystem

    config = BIoTConfig(
        device_count=device_count,
        gateway_count=gateway_count,
        seed=seed,
        report_interval=report_interval,
        initial_difficulty=8,
        tip_alpha=0.05,
        telemetry=True,
        crypto_backend=crypto_backend,
        pow_workers=pow_workers,
    )
    system = BIoTSystem.build(config)
    system.initialize()
    system.start_devices()
    system.run_for(seconds / 2)

    # Inject one detected double spend so penalty events and the
    # "punished" difficulty tier show up in the second half of the run.
    offender = system.devices[0].keypair.node_id
    now = system.scheduler.clock.now()
    for full_node in [system.manager] + system.gateways:
        full_node.consensus.report_double_spend(offender, now)
    system.run_for(seconds / 2)

    _run_recovery_probe(system)
    _run_storage_probe(system)
    _run_crypto_probe(system)

    # Lifecycle close-out: the confirmation sweep and finalize() drive
    # the confirmation-latency histogram and the propagation-coverage
    # gauge, which have no hot-path emission site by design.
    system.lifecycle.sweep_confirmations(system.full_nodes, threshold=3)
    system.lifecycle.finalize(node_count=len(system.full_nodes))

    # Reporting reads: consecutive calls hit the rebuild branch first,
    # then the cached branch, covering both cache counters.
    tangle = system.manager.tangle
    genesis_hash = tangle.genesis.tx_hash
    for _ in range(2):
        tangle.tips()
        tangle.depth_from_tips(genesis_hash)
    return system


def run_trace_scenario(*, seed: int = 7, device_count: int = 4,
                       gateway_count: int = 2, seconds: float = 20.0,
                       sample_every: int = 1,
                       confirmation_threshold: int = 3):
    """Build and run the causal-tracing scenario behind ``repro trace``.

    Unlike the smoke scenario this run is **byte-deterministic**: the
    process-global randomness source is swapped for a seeded stream for
    the duration of the run (sensitive-sensor payload encryption
    otherwise draws fresh AES IVs from ``os.urandom``), so two runs
    with the same seed produce identical tangles, identical span
    timings, and byte-identical trace artifacts.

    Devices are stopped shortly before the end and the tail of the run
    drains in-flight gossip, so sampled transactions reach every
    reachable full node; a periodic confirmation sweep timestamps
    confirmations at ~1 s resolution of simulated time.
    """
    from ..core.biot import BIoTConfig, BIoTSystem
    from ..crypto import rand

    with rand.deterministic(f"trace:smoke:{seed}".encode()):
        config = BIoTConfig(
            device_count=device_count,
            gateway_count=gateway_count,
            seed=seed,
            initial_difficulty=8,
            tip_alpha=0.05,
            telemetry=True,
            trace_sample_every=sample_every,
        )
        system = BIoTSystem.build(config)
        system.initialize()
        system.start_devices()
        elapsed = 0.0
        while elapsed < seconds:
            step = min(1.0, seconds - elapsed)
            system.run_for(step)
            elapsed += step
            system.lifecycle.sweep_confirmations(
                system.full_nodes, threshold=confirmation_threshold)
        for device in system.devices:
            device.stop()
        system.run_for(5.0)  # drain in-flight PoW, gossip, solidification
        system.lifecycle.sweep_confirmations(
            system.full_nodes, threshold=confirmation_threshold)
        system.lifecycle.finalize(node_count=len(system.full_nodes))
    return system


def _run_recovery_probe(system) -> None:
    """Drive the fault-injection and retry instruments deterministically.

    The main run is fault-free, so the ``repro_fault_*`` message
    counters and the ``repro_retry_*`` recovery counters would
    otherwise stay silent and trip the coverage gate.
    """
    from ..network.transport import LinkOverlay

    network = system.network
    for device in system.devices:
        device.stop()  # keep the probe's event horizon short

    # In-flight purge: put a message on the manager<->gateway-0 wire,
    # then sever it before the delivery fires.
    network.send("manager", "gateway-0", "telemetry_probe", {})
    network.cut_link("manager", "gateway-0")
    network.heal_link("manager", "gateway-0")

    # Duplication: with p=0.9 over eight probes a duplicate is all but
    # certain (and the run is seeded, so "all but" is "exactly").
    token = network.add_overlay(
        "manager", "gateway-0", LinkOverlay(duplicate_probability=0.9))
    for _ in range(8):
        network.send("manager", "gateway-0", "telemetry_probe", {})
    system.run_for(2.0)
    network.remove_overlay(token)

    # Retry recovery: crash a device, start a key distribution at it
    # (M1 is lost), let the first backoff expire, restart the device,
    # and let the retried handshake complete.
    device = system.devices[0]
    network.take_down(device.address)
    system.manager.distribute_key(device.address, device.keypair.public)
    system.run_for(1.0)
    network.bring_up(device.address)
    system.run_for(30.0)

    # Retry exhaustion: a permanently dead device drains every attempt.
    casualty = system.devices[1]
    network.take_down(casualty.address)
    system.manager.distribute_key(casualty.address, casualty.keypair.public)
    system.run_for(40.0)
    network.bring_up(casualty.address)


def _run_crypto_probe(system) -> None:
    """Drive the ``repro_crypto_batch_*`` instruments deterministically.

    The smoke deployment floods transactions one at a time (batch size
    1), so the batch verifier would otherwise stay silent.  The probe
    issues a small burst of fresh, correctly signed transactions plus
    one with a corrupted signature and pushes them through a gateway's
    batch-ingest path: the round/size/verified counters fire for the
    good ones, and the corrupted one exercises the fallback counter
    (batch rejection settled by individual verification).
    """
    from dataclasses import replace

    from ..tangle.transaction import Transaction, TransactionKind

    gateway = system.gateways[0]
    keypair = next(iter(system.device_keys.values()))
    now = system.scheduler.clock.now()
    burst = []
    for index in range(3):
        branch, trunk = gateway.tip_selector.select(gateway.tangle,
                                                    gateway.rng)
        burst.append(Transaction.create(
            keypair,
            kind=TransactionKind.DATA,
            payload=b"crypto-probe-%d" % index,
            timestamp=now,
            branch=branch,
            trunk=trunk,
            difficulty=1,
        ))
    bad_signature = bytes(64)
    corrupted = replace(burst[-1], signature=bad_signature)
    gateway._ingest_batch(
        [tx.to_bytes() for tx in burst[:-1] + [corrupted]], source=None)


def _run_storage_probe(system) -> None:
    """Drive the ``repro_storage_*`` instruments deterministically.

    The smoke deployment runs the in-memory backend (so the main run is
    storage-free, as in production defaults); this probe journals one
    gateway's history to a separate instrumented store, checkpoints it
    with pruning, journals a short tail, and loads the restore point —
    touching every append/flush/prune/checkpoint/replay/restore
    counter without disturbing the live system.
    """
    from ..storage.persistence import NodePersistence
    from ..storage.store import MemoryStore

    gateway = system.gateways[0]
    store = MemoryStore(telemetry=system.telemetry)
    persistence = NodePersistence(store, telemetry=system.telemetry)
    persistence.initialize(gateway.tangle.genesis)
    transactions = [tx for tx in gateway.tangle if not tx.is_genesis]
    for tx in transactions[:-2]:
        persistence.record_transaction(
            tx, gateway.tangle.arrival_time(tx.tx_hash))
    now = system.scheduler.clock.now()
    persistence.checkpoint(gateway, now=now, keep_recent_seconds=30.0,
                           min_weight_to_prune=2)
    for tx in transactions[-2:]:
        persistence.record_transaction(
            tx, gateway.tangle.arrival_time(tx.tx_hash))
    persistence.load()
