"""Telemetry smoke scenario: a small deployment that exercises every
registered instrument.

The CI coverage gate (``repro telemetry --require-all``) fails when any
registered metric is never emitted, so this scenario is written to
drive all five instrumented subsystems:

* **tangle** — weighted-walk tip selection (walk lengths), steady
  attach traffic (flush batches, weight reads), plus explicit
  ``tips()`` / ``depth_from_tips()`` reads to hit both cache branches;
* **pow** — every submission grinds at its credit-assigned difficulty;
* **network** — the wireless links are lossy (drops) and the full-node
  mesh floods gossip (relays and duplicate suppressions);
* **keydist** — the default sensor cycle includes sensitive streams,
  so the manager runs Fig. 4 handshakes during ``initialize()``;
* **credit** — a double-spend report is injected mid-run, so penalty
  events and the *punished* difficulty tier both appear.
"""

from __future__ import annotations

__all__ = ["run_smoke_scenario"]


def run_smoke_scenario(*, seed: int = 42, device_count: int = 4,
                       gateway_count: int = 2, seconds: float = 40.0,
                       report_interval: float = 2.0):
    """Build, run and return a telemetry-enabled :class:`BIoTSystem`.

    The returned system's ``telemetry`` registry and ``tracer`` hold
    the full run; ``telemetry.unobserved()`` is expected to be empty.
    """
    # Imported lazily: repro.core.biot itself imports repro.telemetry.
    from ..core.biot import BIoTConfig, BIoTSystem

    config = BIoTConfig(
        device_count=device_count,
        gateway_count=gateway_count,
        seed=seed,
        report_interval=report_interval,
        initial_difficulty=8,
        tip_alpha=0.05,
        telemetry=True,
    )
    system = BIoTSystem.build(config)
    system.initialize()
    system.start_devices()
    system.run_for(seconds / 2)

    # Inject one detected double spend so penalty events and the
    # "punished" difficulty tier show up in the second half of the run.
    offender = system.devices[0].keypair.node_id
    now = system.scheduler.clock.now()
    for full_node in [system.manager] + system.gateways:
        full_node.consensus.report_double_spend(offender, now)
    system.run_for(seconds / 2)

    # Reporting reads: consecutive calls hit the rebuild branch first,
    # then the cached branch, covering both cache counters.
    tangle = system.manager.tangle
    genesis_hash = tangle.genesis.tx_hash
    for _ in range(2):
        tangle.tips()
        tangle.depth_from_tips(genesis_hash)
    return system
