"""Telemetry exporters: JSONL event stream, Prometheus text, summary.

Three consumers, three formats:

* :func:`export_jsonl` — the full story: every metric observation and
  every finished span as one JSON object per line, in time order.
  This is the artifact CI uploads and offline analysis replays.
* :func:`to_prometheus_text` — the standard text exposition format
  (``# HELP`` / ``# TYPE`` / samples, cumulative histogram buckets),
  so the registry's final state drops into any Prometheus tooling.
* :func:`render_summary` — the human-facing table, built on the same
  :func:`repro.analysis.metrics.format_table` the benchmarks use.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, List, Optional, Tuple, Union

from .registry import (QUANTILES, Counter, Gauge, Histogram,
                       MetricsRegistry, bucket_quantile)
from .tracer import Tracer

__all__ = ["export_jsonl", "to_prometheus_text", "render_summary"]


def _label_str(labels: Iterable[Tuple[str, str]]) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}" if inner else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


# -- JSONL ------------------------------------------------------------------

def export_jsonl(sink: Union[str, IO[str]],
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> int:
    """Write metric events and finished spans to *sink* (a path or an
    open text file) as JSON Lines, sorted by simulated time; returns
    the number of lines written."""
    records: List[Tuple[float, int, dict]] = []
    order = 0
    if registry is not None and getattr(registry, "events", None):
        for event in registry.events:
            records.append((event.time, order, {
                "type": "metric",
                "t": event.time,
                "name": event.name,
                "labels": dict(event.labels),
                "value": event.value,
            }))
            order += 1
    if tracer is not None:
        for span in tracer.finished():
            records.append((span.start, order, {
                "type": "span",
                "t": span.start,
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "attributes": span.attributes,
            }))
            order += 1
    records.sort(key=lambda r: (r[0], r[1]))
    if registry is not None:
        # Trailing meta record: how much of the story the event log
        # actually holds (the log is bounded; overflow drops the
        # oldest half into `events_dropped`).
        records.append((math.inf, order, {
            "type": "meta",
            "t": registry.now(),
            "events_recorded": len(registry.events),
            "events_dropped": registry.events_dropped,
        }))

    def write_all(handle: IO[str]) -> int:
        for _, _, record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    if isinstance(sink, str):
        with open(sink, "w") as handle:
            return write_all(handle)
    return write_all(sink)


# -- Prometheus text exposition ---------------------------------------------

def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry's current state in the Prometheus text
    format (version 0.0.4): HELP/TYPE headers, one sample per label
    set, cumulative ``_bucket``/``_sum``/``_count`` for histograms."""
    lines: List[str] = []
    for inst in registry.instruments():
        if inst.help:
            lines.append(f"# HELP {inst.name} {inst.help}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            series = inst.series()
            if not series:
                lines.append(f"{inst.name} 0")
            for labels in sorted(series):
                lines.append(
                    f"{inst.name}{_label_str(labels)} "
                    f"{_format_value(series[labels])}"
                )
        elif isinstance(inst, Histogram):
            series = inst.series()
            if not series:
                series = {(): None}
            for labels in sorted(series):
                state = series[labels]
                cumulative = 0
                counts = (state.bucket_counts if state is not None
                          else [0] * (len(inst.buckets) + 1))
                for edge, bucket_count in zip(
                        tuple(inst.buckets) + (math.inf,), counts):
                    cumulative += bucket_count
                    le = dict(labels)
                    le["le"] = _format_value(edge)
                    lines.append(
                        f"{inst.name}_bucket{_label_str(sorted(le.items()))} "
                        f"{cumulative}"
                    )
                total = state.total if state is not None else 0.0
                count = state.count if state is not None else 0
                lines.append(
                    f"{inst.name}_sum{_label_str(labels)} "
                    f"{_format_value(total)}"
                )
                lines.append(
                    f"{inst.name}_count{_label_str(labels)} {count}"
                )
                if state is not None and state.count:
                    for q in QUANTILES:
                        estimate = bucket_quantile(inst.buckets, state, q)
                        ql = dict(labels)
                        ql["quantile"] = _format_value(q)
                        lines.append(
                            f"{inst.name}_quantile"
                            f"{_label_str(sorted(ql.items()))} "
                            f"{_format_value(estimate)}"
                        )
    lines.append("# HELP repro_telemetry_events_dropped_total "
                 "Metric events discarded by the bounded event log")
    lines.append("# TYPE repro_telemetry_events_dropped_total counter")
    lines.append(f"repro_telemetry_events_dropped_total "
                 f"{registry.events_dropped}")
    return "\n".join(lines) + "\n"


# -- summary table ----------------------------------------------------------

def render_summary(registry: MetricsRegistry) -> str:
    """One row per instrument: kind, observation count, headline value."""
    # Imported here: analysis.metrics builds on telemetry.series, so a
    # module-level import would be circular during package init.
    from ..analysis.metrics import format_table

    rows = []
    for inst in registry.instruments():
        if isinstance(inst, Histogram):
            merged = inst.merged()
            headline = f"n={merged.count} mean={merged.mean:.4g}"
            if merged.count:
                quantiles = inst.quantiles()
                headline += "".join(
                    f" p{int(q * 100)}={quantiles[q]:.4g}"
                    for q in sorted(quantiles))
                headline += f" max={merged.maximum:.4g}"
            observations = merged.count
        else:
            series = inst.series()
            observations = len(series)
            total = sum(series.values())
            headline = f"total={total:.6g} series={len(series)}"
        rows.append((inst.name, inst.kind, observations, headline))
    table = format_table(rows, headers=["metric", "kind", "series", "value"])
    return (f"{table}\n"
            f"event log: {len(registry.events)} recorded, "
            f"{registry.events_dropped} dropped")
