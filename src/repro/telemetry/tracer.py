"""Span tracing on the simulation clock.

A :class:`Tracer` produces *nested spans*: named intervals with
structured attributes whose start/end timestamps are read from the
shared :class:`~repro.devices.clock.SimulatedClock`, so a span's
duration is simulated seconds — "how long did key distribution take in
the experiment", not "how long did Python take to run it".

Nesting is lexical: ``with tracer.span(...)`` inside an open span makes
a child.  Because the discrete-event scheduler interleaves callbacks,
long-lived protocol phases (a key-distribution handshake, a device's
submit round-trip) are traced by the *driver* around ``run_for`` /
``run_until`` calls, where the with-block structure matches simulated
causality; fine-grained per-event facts stay in the metrics registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    attributes: Dict[str, object] = field(default_factory=dict)
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value


class Tracer:
    """Produces nested spans against a (simulated) clock.

    Args:
        clock: a callable returning seconds or an object with ``now()``
            — pass the scheduler's :class:`SimulatedClock`.
    """

    enabled = True

    def __init__(self, clock: object = None):
        if clock is None:
            self._time_fn: Callable[[], float] = lambda: 0.0
        elif callable(clock):
            self._time_fn = clock
        else:
            self._time_fn = clock.now
        self._next_id = 1
        self._stack: List[Span] = []
        self.spans: List[Span] = []  # finished spans, in end order

    # -- manual API (for event-callback lifetimes) -------------------------

    def start_span(self, name: str, **attributes: object) -> Span:
        """Open a span; it nests under the innermost open span."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=self._time_fn(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close *span* (and any deeper spans left open, innermost
        first — a scheduler callback that raised must not wedge the
        stack)."""
        while self._stack:
            top = self._stack.pop()
            top.end = self._time_fn()
            self.spans.append(top)
            if top is span:
                return span
        raise ValueError(f"span {span.name!r} is not open on this tracer")

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """``with tracer.span("phase", key=value) as s:`` — the normal API."""
        span = self.start_span(name, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    # -- introspection ----------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def finished(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self.spans)
        return [s for s in self.spans if s.name == name]

    def children(self, parent: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == parent.span_id]


class NullTracer:
    """Disabled tracing: spans cost one no-op context manager."""

    enabled = False
    spans: List[Span] = []

    _SPAN = Span(span_id=0, parent_id=None, name="null", start=0.0, end=0.0)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        yield self._SPAN

    def start_span(self, name: str, **attributes: object) -> Span:
        return self._SPAN

    def end_span(self, span: Span) -> Span:
        return span

    def finished(self, name: Optional[str] = None) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
