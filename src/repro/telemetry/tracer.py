"""Span tracing on the simulation clock.

A :class:`Tracer` produces *nested spans*: named intervals with
structured attributes whose start/end timestamps are read from the
shared :class:`~repro.devices.clock.SimulatedClock`, so a span's
duration is simulated seconds — "how long did key distribution take in
the experiment", not "how long did Python take to run it".

Two span families coexist:

* **Lexical spans** (``with tracer.span(...)``) nest under the
  innermost open span — the right shape for *driver* phases wrapped
  around ``run_for`` / ``run_until`` calls.
* **Explicit-parent spans** (:meth:`start_root_span` /
  :meth:`start_child_span`) carry a :class:`TraceContext` and parent
  onto whatever span the caller names, independent of the lexical
  stack.  They express *causal* structure across scheduler callbacks:
  a transaction's submit on one node and its ingest on another belong
  to the same trace even though no with-block spans both.

The *current* context (:attr:`Tracer.current`) is an ambient
trace-context slot.  :meth:`activate` swaps it for the duration of a
with-block; the network simulator captures it when a message is sent
(or an event scheduled) and restores it around the delivery callback,
which is how causality crosses asynchrony without touching wire
encodings.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True)
class TraceContext:
    """Reference to a span inside a trace — what travels out-of-band.

    ``trace_id`` is a caller-chosen deterministic string (the lifecycle
    tracker uses ``tx:<device>:<counter>``), ``span_id`` the tracer-local
    id of the span new children should parent onto.
    """

    trace_id: str
    span_id: int


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    attributes: Dict[str, object] = field(default_factory=dict)
    end: Optional[float] = None
    trace_id: str = ""

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value


class Tracer:
    """Produces nested and explicit-parent spans against a clock.

    Args:
        clock: a callable returning seconds or an object with ``now()``
            — pass the scheduler's :class:`SimulatedClock`.
    """

    enabled = True

    def __init__(self, clock: object = None):
        if clock is None:
            self._time_fn: Callable[[], float] = lambda: 0.0
        elif callable(clock):
            self._time_fn = clock
        else:
            self._time_fn = clock.now
        self._next_id = 1
        self._stack: List[Span] = []
        self._open_explicit: Dict[int, Span] = {}
        self._current: Optional[TraceContext] = None
        self.spans: List[Span] = []  # finished spans, in end order

    # -- manual API (for event-callback lifetimes) -------------------------

    def start_span(self, name: str, **attributes: object) -> Span:
        """Open a lexical span; it nests under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            start=self._time_fn(),
            attributes=dict(attributes),
            trace_id=parent.trace_id if parent else "",
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close *span*.

        Lexical spans unwind the stack (any deeper spans left open are
        closed innermost first — a scheduler callback that raised must
        not wedge the stack); explicit-parent spans close individually.
        """
        if span.span_id in self._open_explicit:
            del self._open_explicit[span.span_id]
            span.end = self._time_fn()
            self.spans.append(span)
            return span
        while self._stack:
            top = self._stack.pop()
            top.end = self._time_fn()
            self.spans.append(top)
            if top is span:
                return span
        raise ValueError(f"span {span.name!r} is not open on this tracer")

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """``with tracer.span("phase", key=value) as s:`` — the normal API."""
        span = self.start_span(name, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    # -- explicit-parent API (causal, non-lexical) -------------------------

    def start_root_span(self, name: str, trace_id: str,
                        **attributes: object) -> Span:
        """Open a trace root, independent of the lexical stack.

        The caller supplies the (deterministic) trace id; the span id is
        tracer-local.  Close with :meth:`end_span`.
        """
        span = Span(
            span_id=self._next_id,
            parent_id=None,
            name=name,
            start=self._time_fn(),
            attributes=dict(attributes),
            trace_id=trace_id,
        )
        self._next_id += 1
        self._open_explicit[span.span_id] = span
        return span

    def start_child_span(self, name: str, parent: TraceContext,
                         **attributes: object) -> Span:
        """Open a span parented on *parent*, ignoring the lexical stack."""
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id,
            name=name,
            start=self._time_fn(),
            attributes=dict(attributes),
            trace_id=parent.trace_id,
        )
        self._next_id += 1
        self._open_explicit[span.span_id] = span
        return span

    def context_of(self, span: Span) -> TraceContext:
        """The :class:`TraceContext` new children of *span* should carry."""
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)

    # -- ambient context ---------------------------------------------------

    @property
    def current(self) -> Optional[TraceContext]:
        """The context activated around the currently running callback."""
        return self._current

    def capture(self) -> Optional[TraceContext]:
        """Snapshot the ambient context (for deferred callbacks)."""
        return self._current

    @contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Make *context* ambient for the with-block (``None`` clears it)."""
        previous = self._current
        self._current = context
        try:
            yield
        finally:
            self._current = previous

    # -- introspection ----------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    @property
    def open_explicit(self) -> List[Span]:
        """Explicit-parent spans still open, in creation order."""
        return list(self._open_explicit.values())

    def finished(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self.spans)
        return [s for s in self.spans if s.name == name]

    def children(self, parent: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == parent.span_id]


class _NullContext:
    """Reusable no-op context manager (shared, stateless)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Disabled tracing: spans cost one no-op context manager."""

    enabled = False
    spans: List[Span] = []
    current: Optional[TraceContext] = None

    _SPAN = Span(span_id=0, parent_id=None, name="null", start=0.0, end=0.0)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        yield self._SPAN

    def start_span(self, name: str, **attributes: object) -> Span:
        return self._SPAN

    def start_root_span(self, name: str, trace_id: str,
                        **attributes: object) -> Span:
        return self._SPAN

    def start_child_span(self, name: str, parent: TraceContext,
                         **attributes: object) -> Span:
        return self._SPAN

    def end_span(self, span: Span) -> Span:
        return span

    def context_of(self, span: Span) -> Optional[TraceContext]:
        return None

    def capture(self) -> Optional[TraceContext]:
        return None

    def activate(self, context: Optional[TraceContext]) -> _NullContext:
        return _NULL_CONTEXT

    def finished(self, name: Optional[str] = None) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
