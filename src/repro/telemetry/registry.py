"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` serves a whole deployment.  Subsystems ask
it for named instruments once (at construction time) and then drive
them on their hot paths; the registry keeps one series per label set
and — when event recording is on — an append-only event log whose
timestamps come from the *simulation* clock, never the wall clock, so
telemetry is as deterministic as the experiment it observes.

Metric names follow the ``repro_<subsystem>_<name>`` scheme (see
``docs/TELEMETRY.md``); the registry enforces the character set and
rejects re-registration under a different kind or help string.

Disabling telemetry must cost nothing.  :class:`NullRegistry` hands out
singleton null instruments whose methods are empty one-liners, so an
instrumented hot path pays one attribute load and one no-op call —
there is no branching, no label hashing, no allocation.  Tier-1 tests
prove null-vs-absent equivalence (``tests/telemetry``).
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricEvent",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SECONDS_BUCKETS",
    "COUNT_BUCKETS",
    "BYTES_BUCKETS",
    "DIFFICULTY_BUCKETS",
    "QUANTILES",
    "bucket_quantile",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
)
"""Default edges for simulated-seconds histograms (latency, PoW time)."""

COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)
"""Default edges for size/length histograms (batches, walk lengths)."""

BYTES_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)
"""Edges for on-the-wire sizes (``repro_transport_frame_bytes``)."""

DIFFICULTY_BUCKETS: Tuple[float, ...] = (2, 4, 6, 8, 10, 12, 16, 20, 24)
"""Edges matching the PoW difficulty range [1, 24]."""

QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)
"""The quantiles surfaced by the summary renderer and the Prometheus
exporter (as ``_quantile``-suffixed gauges)."""

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricEvent:
    """One observation, as recorded in the event log (JSONL source)."""

    time: float
    name: str
    labels: LabelSet
    value: float


class Instrument:
    """Base class: a named metric with one series per label set."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self._registry = registry
        self.name = name
        self.help = help
        self.observed = False

    def _record(self, value: float, labels: Dict[str, str]) -> LabelSet:
        self.observed = True
        return self._registry._log_event(self.name, value, labels)

    def series(self) -> Dict[LabelSet, object]:
        """Label set -> current value (shape depends on the kind)."""
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, registry, name, help):
        super().__init__(registry, name, help)
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._record(amount, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelSet, float]:
        return dict(self._values)


class Gauge(Instrument):
    """A value that can move both ways (queue depths, pool sizes)."""

    kind = "gauge"

    def __init__(self, registry, name, help):
        super().__init__(registry, name, help)
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._record(value, labels)
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._record(amount, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelSet, float]:
        return dict(self._values)


@dataclass
class HistogramSeries:
    """Per-label-set histogram state: fixed cumulative-style buckets."""

    bucket_counts: List[int]
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def bucket_quantile(edges: Sequence[float],
                    series: Optional[HistogramSeries],
                    q: float) -> Optional[float]:
    """Estimate the *q*-quantile of a fixed-bucket series.

    Linear interpolation within the bucket that crosses the target
    rank; the first bucket is anchored at the observed minimum and the
    overflow bucket at the observed maximum, and the estimate is always
    clamped into ``[minimum, maximum]``.  Returns ``None`` for an empty
    series.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    if series is None or series.count == 0:
        return None
    target = q * series.count
    cumulative = 0.0
    for i, count in enumerate(series.bucket_counts):
        if count and cumulative + count >= target:
            lo = edges[i - 1] if i > 0 else series.minimum
            hi = edges[i] if i < len(edges) else series.maximum
            fraction = (target - cumulative) / count
            value = lo + (hi - lo) * fraction
            return min(max(value, series.minimum), series.maximum)
        cumulative += count
    return series.maximum


class Histogram(Instrument):
    """Fixed-bucket distribution; edges are upper bounds, +Inf implied."""

    kind = "histogram"

    def __init__(self, registry, name, help,
                 buckets: Sequence[float] = SECONDS_BUCKETS):
        super().__init__(registry, name, help)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly increasing")
        self.buckets = edges
        self._series: Dict[LabelSet, HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._record(value, labels)
        series = self._series.get(key)
        if series is None:
            series = HistogramSeries(bucket_counts=[0] * (len(self.buckets) + 1))
            self._series[key] = series
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.count += 1
        series.total += value
        series.minimum = min(series.minimum, value)
        series.maximum = max(series.maximum, value)

    def snapshot(self, **labels: str) -> Optional[HistogramSeries]:
        return self._series.get(_label_key(labels))

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Estimated *q*-quantile; the merged distribution when no
        labels are given, the matching series otherwise."""
        if labels:
            series = self._series.get(_label_key(labels))
        else:
            series = self.merged()
        return bucket_quantile(self.buckets, series, q)

    def quantiles(self, qs: Sequence[float] = QUANTILES,
                  **labels: str) -> Dict[float, Optional[float]]:
        return {q: self.quantile(q, **labels) for q in qs}

    def merged(self) -> HistogramSeries:
        """All label sets folded into one distribution."""
        merged = HistogramSeries(bucket_counts=[0] * (len(self.buckets) + 1))
        for series in self._series.values():
            for i, c in enumerate(series.bucket_counts):
                merged.bucket_counts[i] += c
            merged.count += series.count
            merged.total += series.total
            merged.minimum = min(merged.minimum, series.minimum)
            merged.maximum = max(merged.maximum, series.maximum)
        return merged

    def series(self) -> Dict[LabelSet, HistogramSeries]:
        return dict(self._series)


class MetricsRegistry:
    """Creates and owns instruments; the single telemetry sink.

    Args:
        clock: time source for the event log — a callable returning
            seconds, or anything with a ``now()`` method (e.g. a
            :class:`~repro.devices.clock.SimulatedClock`).  Defaults to
            a frozen zero clock, which keeps standalone registries (unit
            tests, adapters) deterministic.
        record_events: append every observation to :attr:`events` for
            the JSONL exporter.  Aggregated series are always kept.
        max_events: event-log bound; the oldest half is dropped on
            overflow (``events_dropped`` counts what was lost).
    """

    enabled = True

    def __init__(self, clock: object = None, *, record_events: bool = True,
                 max_events: int = 200_000):
        if clock is None:
            self._time_fn: Callable[[], float] = lambda: 0.0
        elif callable(clock):
            self._time_fn = clock
        else:
            self._time_fn = clock.now
        if max_events < 2:
            raise ValueError("max_events must be >= 2")
        self.record_events = record_events
        self.max_events = max_events
        self.events: List[MetricEvent] = []
        self.events_dropped = 0
        self._instruments: Dict[str, Instrument] = {}

    # -- instrument creation ---------------------------------------------

    def _register(self, cls, name: str, help: str, **kwargs) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"bad metric name {name!r} (want lowercase_snake_case)"
            )
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name} already registered as a {existing.kind}"
                )
            return existing
        instrument = cls(self, name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name* (idempotent)."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = SECONDS_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    # -- event log --------------------------------------------------------

    def _log_event(self, name: str, value: float,
                   labels: Dict[str, str]) -> LabelSet:
        key = _label_key(labels)
        if self.record_events:
            if len(self.events) >= self.max_events:
                dropped = len(self.events) // 2
                self.events = self.events[dropped:]
                self.events_dropped += dropped
            self.events.append(
                MetricEvent(self._time_fn(), name, key, value)
            )
        return key

    def now(self) -> float:
        """The registry's current (simulated) time."""
        return self._time_fn()

    # -- introspection ----------------------------------------------------

    def instruments(self) -> List[Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[n] for n in sorted(self._instruments)]

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def unobserved(self) -> List[str]:
        """Names of instruments registered but never driven — the CI
        coverage check: an instrument nothing emits to is dead code or
        a scenario gap."""
        return sorted(
            name for name, inst in self._instruments.items()
            if not inst.observed
        )

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every series (the summary() payload)."""
        out: Dict[str, object] = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                merged = inst.merged()
                out[inst.name] = {
                    "kind": inst.kind,
                    "count": merged.count,
                    "sum": merged.total,
                    "mean": merged.mean,
                    "min": merged.minimum if merged.count else None,
                    "max": merged.maximum if merged.count else None,
                }
            else:
                out[inst.name] = {
                    "kind": inst.kind,
                    "series": {
                        ",".join(f"{k}={v}" for k, v in key) or "_": value
                        for key, value in inst.series().items()
                    },
                }
        return out


# -- the disabled path ------------------------------------------------------

class _NullInstrument:
    """Absorbs every instrument method as a no-op."""

    observed = False
    name = "null"
    help = ""
    kind = "null"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def quantile(self, q: float, **labels: str) -> None:
        return None

    def quantiles(self, qs: Sequence[float] = QUANTILES,
                  **labels: str) -> Dict[float, None]:
        return {q: None for q in qs}

    def series(self) -> Dict[LabelSet, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The zero-overhead disabled registry.

    Every factory returns the same inert instrument; hot paths keep
    their instrument references and pay only an empty method call.
    ``enabled`` lets code skip *computing* expensive observations
    entirely (never required for correctness, only for speed).
    """

    enabled = False
    events: List[MetricEvent] = []
    events_dropped = 0
    record_events = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> List[Instrument]:
        return []

    def get(self, name: str) -> None:
        return None

    def unobserved(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {}

    def now(self) -> float:
        return 0.0


NULL_REGISTRY = NullRegistry()
"""Shared inert registry: the default for every ``telemetry=`` knob."""


def coerce_registry(telemetry: object) -> object:
    """Normalise a ``telemetry=`` argument: None -> NULL_REGISTRY."""
    return NULL_REGISTRY if telemetry is None else telemetry
