"""Attack harnesses for the four threats of Section III: lazy tips,
double spending, Sybil identities, and DDoS/single-point-of-failure."""

from .ddos import DDoSAttacker, DDoSStats, failover_devices
from .double_spend import DoubleSpendAttacker, DoubleSpendStats
from .lazy_tips import LazyLightNode
from .parasite import ParasiteOutcome, simulate_parasite_release
from .sybil import SybilAttacker, SybilStats

__all__ = [
    "LazyLightNode",
    "DoubleSpendAttacker",
    "DoubleSpendStats",
    "SybilAttacker",
    "SybilStats",
    "DDoSAttacker",
    "DDoSStats",
    "failover_devices",
    "ParasiteOutcome",
    "simulate_parasite_release",
]
