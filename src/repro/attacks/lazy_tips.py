"""The lazy-tips attacker (threat model, Section III).

"A 'lazy' node could always verify a fixed pair of very old
transactions, while not contributing to the verification of more recent
transactions.  For example, a malicious entity can artificially inflate
the number of tips by issuing many transactions that verify a fixed
pair of transactions."

:class:`LazyLightNode` behaves exactly like an honest device except
that it discards the gateway's tip suggestions and always approves a
fixed, aging pair (the genesis by default).  Under plain PoW this is
free; under the credit mechanism each detected lazy approval cuts the
node's credit, and its assigned difficulty — and therefore its attack
cost — climbs.
"""

from __future__ import annotations

from typing import Optional

from ..network.transport import Message
from ..nodes.light_node import LightNode

__all__ = ["LazyLightNode"]


class LazyLightNode(LightNode):
    """A light node that always approves a fixed pair of transactions.

    Args:
        fixed_branch: transaction hash the attacker forever approves
            (defaults to the genesis, resolved lazily from the first
            tips response when not given).
        fixed_trunk: second fixed hash (defaults to *fixed_branch*).
    """

    def __init__(self, *args, fixed_branch: Optional[bytes] = None,
                 fixed_trunk: Optional[bytes] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.fixed_branch = fixed_branch
        self.fixed_trunk = fixed_trunk if fixed_trunk is not None else fixed_branch
        self.lazy_submissions = 0

    def _handle_tips_response(self, message: Message) -> None:
        body = message.body
        context = self._pending.pop(body.get("request_id"), None)
        if context is None:
            return
        if not body.get("ok"):
            self.stats.tips_refused += 1
            self._schedule_next_tick()
            return
        # Ignore the suggested tips; pin the fixed old pair.  The first
        # response seeds the pin when none was configured.
        if self.fixed_branch is None:
            self.fixed_branch = body["branch"]
            self.fixed_trunk = body["trunk"]
        self.lazy_submissions += 1
        self._build_and_submit(
            context,
            branch=self.fixed_branch,
            trunk=self.fixed_trunk,
            difficulty=body["difficulty"],
        )
