"""The parasite "broom" attack on tip selection.

Exactly the escalation the paper's threat model warns about: "a
malicious entity can artificially inflate the number of tips by issuing
many transactions that verify a fixed pair of transactions.  This would
make it possible for future transactions to select these tips with very
high probability, abandoning the tips belonging to honest nodes."

The attacker mints a burst of transactions that all approve one fixed,
old anchor pair — a *broom*: one handle, many bristle tips.  Released at
once, the bristles swamp the tip pool; a selector that samples tips
uniformly hands the attacker nearly all subsequent approvals.
Weight-biased (MCMC) selection defeats the broom structurally: the walk
descends by cumulative weight, and each bristle carries only the weight
the attacker personally gave it.

:func:`simulate_parasite_release` runs the whole scenario on a bare
tangle and reports how the approval flow splits after the release —
the quantitative backing for Ext-4's qualitative story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Set

from ..crypto.keys import KeyPair
from ..tangle.tangle import Tangle
from ..tangle.tip_selection import TipSelector, UniformRandomTipSelector
from ..tangle.transaction import Transaction

__all__ = ["ParasiteOutcome", "simulate_parasite_release"]


@dataclass(frozen=True)
class ParasiteOutcome:
    """What the attacker achieved.

    Attributes:
        parasite_size: transactions in the released parasite chain.
        honest_after_release: honest transactions issued post-release.
        approvals_captured: honest approval edges landing on parasite
            transactions after the release.
        approvals_total: all honest approval edges after the release.
        parasite_tip_weight: cumulative weight of the parasite's final
            transaction at the end (how much honest work it attracted).
    """

    parasite_size: int
    honest_after_release: int
    approvals_captured: int
    approvals_total: int
    parasite_tip_weight: int

    @property
    def capture_ratio(self) -> float:
        """Fraction of post-release honest approvals the parasite won."""
        if self.approvals_total == 0:
            return 0.0
        return self.approvals_captured / self.approvals_total


def simulate_parasite_release(*, selector: Optional[TipSelector] = None,
                              honest_before: int = 60,
                              parasite_size: int = 40,
                              honest_after: int = 60,
                              seed: int = 0) -> ParasiteOutcome:
    """Run the three-phase parasite scenario on one tangle.

    Phase 1: *honest_before* honest transactions grow the main tangle.
    Phase 2: the attacker grows a private chain of *parasite_size*
    transactions anchored at the genesis-era tangle, then releases it
    in one burst (every parasite transaction attaches back-to-back).
    Phase 3: *honest_after* honest transactions arrive, selecting tips
    with *selector* (uniform random by default); we measure where their
    approvals go.
    """
    honest = KeyPair.generate(seed=f"parasite-honest-{seed}".encode())
    attacker = KeyPair.generate(seed=f"parasite-attacker-{seed}".encode())
    selector = selector if selector is not None else UniformRandomTipSelector()
    rng = random.Random(seed)

    genesis = Transaction.create_genesis(honest)
    tangle = Tangle(genesis)
    clock = 0.0

    def attach_honest(index: int) -> Transaction:
        nonlocal clock
        clock += 1.0
        branch, trunk = selector.select(tangle, rng)
        tx = Transaction.create(
            honest, kind="data", payload=f"honest-{index}".encode(),
            timestamp=clock, branch=branch, trunk=trunk, difficulty=1,
        )
        tangle.attach(tx, arrival_time=clock)
        return tx

    # Phase 1 — the main tangle grows.
    for i in range(honest_before):
        attach_honest(i)

    # Phase 2 — the broom: every parasite transaction approves the same
    # fixed anchor pair (the genesis, the oldest possible point), so the
    # release dumps `parasite_size` fresh tips into the pool at once.
    parasite_hashes: Set[bytes] = set()
    anchor = genesis.tx_hash
    last_parasite = anchor
    for i in range(parasite_size):
        clock += 0.001  # burst: effectively simultaneous arrivals
        tx = Transaction.create(
            attacker, kind="data", payload=f"parasite-{i}".encode(),
            timestamp=clock, branch=anchor, trunk=anchor,
            difficulty=1,
        )
        tangle.attach(tx, arrival_time=clock)
        parasite_hashes.add(tx.tx_hash)
        last_parasite = tx.tx_hash
    parasite_tip = last_parasite

    # Phase 3 — honest traffic resumes; where do approvals land?
    captured = 0
    total = 0
    for i in range(honest_after):
        tx = attach_honest(honest_before + i)
        for chosen in (tx.branch, tx.trunk):
            total += 1
            if chosen in parasite_hashes:
                captured += 1

    return ParasiteOutcome(
        parasite_size=parasite_size,
        honest_after_release=honest_after,
        approvals_captured=captured,
        approvals_total=total,
        parasite_tip_weight=tangle.weight(parasite_tip),
    )
