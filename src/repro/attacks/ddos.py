"""DDoS flooding against a gateway, and the architecture's defence.

The paper's availability argument is architectural: because B-IoT is
decentralised, flooding (or crashing) a single gateway cannot take the
service down — devices fail over to another full node, and the
replicated tangle keeps every copy of the data (Section VI-C, "single
point of failure").

:class:`DDoSAttacker` floods junk at a victim gateway.
:func:`failover_devices` re-homes the victim's light nodes onto a
surviving gateway, modelling the devices' "find closest gateway
enabled RPC port" discovery step from Fig. 6.
"""

from __future__ import annotations

import random

from ..crypto.rand import randbytes
from dataclasses import dataclass
from typing import List, Optional

from ..network.network import NetworkNode
from ..network.transport import Message
from ..nodes.light_node import LightNode

__all__ = ["DDoSAttacker", "DDoSStats", "failover_devices"]


@dataclass
class DDoSStats:
    """Flood volume accounting."""

    messages_sent: int = 0
    bursts: int = 0


class DDoSAttacker(NetworkNode):
    """Floods a victim with garbage messages at a fixed rate.

    The junk uses unknown message kinds and malformed submissions, so a
    victim burning cycles on them models request-queue pressure; the
    experiments measure *system-level* service continuity rather than
    per-box saturation.
    """

    def __init__(self, address: str, *, victim: str,
                 burst_size: int = 50, burst_interval: float = 0.5,
                 rng: Optional[random.Random] = None):
        super().__init__(address)
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        self.victim = victim
        self.burst_size = burst_size
        self.burst_interval = burst_interval
        self.rng = rng if rng is not None else random.Random()
        self.stats = DDoSStats()
        self._running = False

    @property
    def _scheduler(self):
        return self.network.scheduler

    def start(self, *, initial_delay: float = 0.0) -> None:
        self._running = True
        self._scheduler.schedule(initial_delay, self._burst)

    def stop(self) -> None:
        self._running = False

    def _burst(self) -> None:
        if not self._running:
            return
        for _ in range(self.burst_size):
            self.stats.messages_sent += 1
            junk = randbytes(self.rng.randrange(16, 128))
            self.send(self.victim, "junk-flood", {"noise": junk},
                      size_bytes=len(junk))
        self.stats.bursts += 1
        self._scheduler.schedule(self.burst_interval, self._burst)

    def handle_message(self, message: Message) -> None:
        pass  # the attacker ignores all replies


def failover_devices(devices: List[LightNode], *, from_gateway: str,
                     to_gateway: str) -> int:
    """Re-home every device using *from_gateway* onto *to_gateway*.

    Returns how many devices switched.  This is the recovery half of
    the single-point-of-failure experiment: the service continues
    because any full node can serve any authorised device.
    """
    switched = 0
    for device in devices:
        if device.gateway == from_gateway:
            device.gateway = to_gateway
            switched += 1
    return switched
