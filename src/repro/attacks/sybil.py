"""The Sybil attacker (threat model, Section III).

"There may exist evil nodes, which pretend multiple identities
illegitimately, attempts to control most nodes in the network."

:class:`SybilAttacker` fabricates a swarm of fresh identities — none of
which the manager ever authorised — and has each of them hammer a
gateway with tip requests and forged submissions.  The defence under
test is the on-ledger authorisation list (Section VI-C): gateways
"decline to provide services for unauthorized IoT devices", so every
Sybil request dies at the ACL check and never reaches the tangle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..crypto.keys import KeyPair
from ..network.network import NetworkNode
from ..network.transport import Message
from ..tangle.transaction import Transaction, TransactionKind, ZERO_HASH

__all__ = ["SybilAttacker", "SybilStats"]


@dataclass
class SybilStats:
    """What the Sybil swarm achieved (ideally: nothing)."""

    identities: int = 0
    tip_requests_sent: int = 0
    tips_granted: int = 0
    tips_refused: int = 0
    submissions_sent: int = 0
    submissions_accepted: int = 0
    submissions_rejected: int = 0


class SybilAttacker(NetworkNode):
    """A single host wielding many fake identities.

    Args:
        address: network address.
        gateway: victim gateway address.
        identity_count: how many Sybil identities to fabricate.
        request_interval: seconds between request bursts.
    """

    def __init__(self, address: str, *, gateway: str,
                 identity_count: int = 10,
                 request_interval: float = 1.0,
                 rng: Optional[random.Random] = None,
                 seed: int = 0):
        super().__init__(address)
        if identity_count < 1:
            raise ValueError("need at least one Sybil identity")
        self.gateway = gateway
        self.request_interval = request_interval
        self.rng = rng if rng is not None else random.Random()
        self.identities: List[KeyPair] = [
            KeyPair.generate(seed=f"sybil:{seed}:{i}".encode())
            for i in range(identity_count)
        ]
        self.stats = SybilStats(identities=identity_count)
        self._running = False
        self._request_counter = 0

    @property
    def _scheduler(self):
        return self.network.scheduler

    def start(self, *, initial_delay: float = 0.0) -> None:
        self._running = True
        self._scheduler.schedule(initial_delay, self._burst)

    def stop(self) -> None:
        self._running = False

    def _burst(self) -> None:
        """One burst: every identity requests tips and pushes a forged
        transaction (parents guessed as zero — gateways never get that
        far once the ACL check fires)."""
        if not self._running:
            return
        now = self._scheduler.clock.now()
        for identity in self.identities:
            self._request_counter += 1
            self.stats.tip_requests_sent += 1
            self.send(self.gateway, "get_tips_request", {
                "request_id": self._request_counter,
                "node_id": identity.node_id,
            })
            forged = Transaction.create(
                identity,
                kind=TransactionKind.DATA,
                payload=b"sybil-noise",
                timestamp=now,
                branch=ZERO_HASH,
                trunk=ZERO_HASH,
                difficulty=1,
            )
            self._request_counter += 1
            self.stats.submissions_sent += 1
            encoded = forged.to_bytes()
            self.send(self.gateway, "submit_transaction", {
                "request_id": self._request_counter,
                "transaction": encoded,
            }, size_bytes=len(encoded))
        self._scheduler.schedule(self.request_interval, self._burst)

    def handle_message(self, message: Message) -> None:
        if message.kind == "get_tips_response":
            if message.body.get("ok"):
                self.stats.tips_granted += 1
            else:
                self.stats.tips_refused += 1
        elif message.kind == "submit_response":
            if message.body.get("ok"):
                self.stats.submissions_accepted += 1
            else:
                self.stats.submissions_rejected += 1
