"""The double-spending attacker (threat model, Section III).

"A malicious node wants to spend the same token twice or more through
submitting multiple transactions before the previous one is verified."

:class:`DoubleSpendAttacker` is an *authorised* device (Sybil defence
does not apply to it) holding a token balance.  On each attack round it
builds two transfers that reuse the same sequence number with different
recipients, then submits one to each of two gateways nearly
simultaneously, racing the gossip layer.  Every replica accepts
whichever version arrives first and rejects the other as a
:class:`~repro.tangle.errors.DoubleSpendError`, reporting the conflict
to the credit mechanism (αd = 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crypto.keys import KeyPair, PublicIdentity
from ..devices.profiles import MALICIOUS_RIG, DeviceProfile
from ..network.network import NetworkNode
from ..network.transport import Message
from ..pow.engine import PowEngine
from ..tangle.ledger import TransferPayload
from ..tangle.transaction import Transaction, TransactionKind

__all__ = ["DoubleSpendAttacker", "DoubleSpendStats"]


@dataclass
class DoubleSpendStats:
    """Outcome ledger of the attack campaign."""

    rounds_started: int = 0
    submissions_sent: int = 0
    accepted: int = 0
    rejected: int = 0
    pow_seconds_total: float = 0.0
    assigned_difficulties: List[int] = field(default_factory=list)

    @property
    def successful_double_spends(self) -> int:
        """Rounds where *both* conflicting transfers were accepted by
        the gateways they were sent to (the race was won locally; the
        network still reconciles to one winner)."""
        return max(0, self.accepted - self.rounds_started)


class DoubleSpendAttacker(NetworkNode):
    """Submits conflicting transfers to two gateways at once.

    Args:
        address: network address.
        keypair: the attacker's (authorised) account.
        gateways: two or more gateway addresses to race against.
        recipients: identities receiving the conflicting payments.
        amount: tokens moved per transfer.
        profile: attacker hardware (defaults to
            :data:`~repro.devices.profiles.MALICIOUS_RIG`).
        attack_interval: seconds between attack rounds.
    """

    def __init__(self, address: str, keypair: KeyPair, *,
                 gateways: List[str], recipients: List[PublicIdentity],
                 amount: int = 1, profile: DeviceProfile = MALICIOUS_RIG,
                 attack_interval: float = 10.0,
                 rng: Optional[random.Random] = None):
        super().__init__(address)
        if len(gateways) < 2:
            raise ValueError("double spending needs at least two gateways")
        if len(recipients) < 2:
            raise ValueError("need two distinct recipients")
        self.keypair = keypair
        self.gateways = list(gateways)
        self.recipients = list(recipients)
        self.amount = amount
        self.profile = profile
        self.attack_interval = attack_interval
        self.rng = rng if rng is not None else random.Random()
        self.stats = DoubleSpendStats()
        self.engine: Optional[PowEngine] = None
        self._sequence = 0
        self._request_counter = 0
        self._pending: Dict[int, Dict] = {}
        self._running = False

    def bind(self, network) -> None:
        super().bind(network)
        self.engine = PowEngine(
            self.profile, network.scheduler.clock,
            rng=self.rng, advance_clock=False,
        )

    @property
    def _scheduler(self):
        return self.network.scheduler

    def _now(self) -> float:
        return self._scheduler.clock.now()

    def start(self, *, initial_delay: float = 0.0) -> None:
        self._running = True
        self._scheduler.schedule(initial_delay, self._attack_round)

    def stop(self) -> None:
        self._running = False

    # -- attack round ------------------------------------------------------

    def _attack_round(self) -> None:
        if not self._running:
            return
        self.stats.rounds_started += 1
        request_id = self._next_request_id()
        self._pending[request_id] = {"stage": "tips"}
        self.send(self.gateways[0], "get_tips_request", {
            "request_id": request_id,
            "node_id": self.keypair.node_id,
        })

    def handle_message(self, message: Message) -> None:
        if message.kind == "get_tips_response":
            self._handle_tips(message)
        elif message.kind == "submit_response":
            self._handle_submit_response(message)

    def _handle_tips(self, message: Message) -> None:
        body = message.body
        context = self._pending.pop(body.get("request_id"), None)
        if context is None:
            return
        if not body.get("ok"):
            self._schedule_next_round()
            return
        self._forge_and_race(body["branch"], body["trunk"], body["difficulty"])

    def _forge_and_race(self, branch: bytes, trunk: bytes,
                        difficulty: int) -> None:
        """Build the two conflicting transfers and race them out."""
        sequence = self._sequence
        self._sequence += 1
        self.stats.assigned_difficulties.append(difficulty)
        total_compute = 0.0
        transactions = []
        for recipient in self.recipients[:2]:
            payload = TransferPayload(
                sender=self.keypair.node_id,
                recipient=recipient.node_id,
                amount=self.amount,
                sequence=sequence,
            )
            draft = Transaction(
                kind=TransactionKind.TRANSFER,
                issuer=self.keypair.public,
                payload=payload.to_bytes(),
                timestamp=self._now(),
                branch=branch,
                trunk=trunk,
                difficulty=difficulty,
                nonce=0,
                signature=b"",
            )
            result = self.engine.solve(draft.pow_challenge, difficulty)
            total_compute += result.elapsed_seconds
            self.stats.pow_seconds_total += result.elapsed_seconds
            tx = Transaction.create(
                self.keypair,
                kind=draft.kind,
                payload=draft.payload,
                timestamp=draft.timestamp,
                branch=draft.branch,
                trunk=draft.trunk,
                difficulty=draft.difficulty,
                nonce=result.proof.nonce,
            )
            transactions.append(tx)

        def launch():
            for gateway, tx in zip(self.gateways, transactions):
                request_id = self._next_request_id()
                self._pending[request_id] = {"stage": "submit"}
                encoded = tx.to_bytes()
                self.stats.submissions_sent += 1
                self.send(gateway, "submit_transaction", {
                    "request_id": request_id,
                    "transaction": encoded,
                }, size_bytes=len(encoded))

        # Both PoWs must finish before either conflicting copy launches.
        self._scheduler.schedule(total_compute, launch)

    def _handle_submit_response(self, message: Message) -> None:
        body = message.body
        context = self._pending.pop(body.get("request_id"), None)
        if context is None:
            return
        if body.get("ok"):
            self.stats.accepted += 1
        else:
            self.stats.rejected += 1
        if not self._pending:
            self._schedule_next_round()

    def _schedule_next_round(self) -> None:
        if self._running:
            self._scheduler.schedule(self.attack_interval, self._attack_round)

    def _next_request_id(self) -> int:
        self._request_counter += 1
        return self._request_counter
