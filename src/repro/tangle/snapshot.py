"""Local snapshots: bounding ledger storage on constrained full nodes.

The paper's own closing discussion names "storage limitations" as an
open problem ("some methods to store huge amounts of data" are future
work).  This module implements the standard tangle answer — *local
snapshots*: deeply confirmed history is dropped, its cut surface is
remembered as **entry points** (pruned transaction hashes that retained
transactions may still reference), and application state derived from
the pruned region (token balances, ACL entries, credit histories) is
carried forward separately by the components that own it.

A snapshot is restartable and serialisable, so it doubles as the
bootstrap artifact for a brand-new gateway: ship the snapshot, replay
the retained region, sync the rest via anti-entropy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .tangle import DEFAULT_WEIGHT_FLUSH_INTERVAL, Tangle, Validator
from .transaction import Transaction

__all__ = ["TangleSnapshot", "take_snapshot"]


@dataclass(frozen=True)
class TangleSnapshot:
    """A pruned, restorable view of a tangle.

    Attributes:
        genesis: the original genesis (always retained — it anchors the
            trust configuration).
        retained: the kept transactions with their arrival times, in
            arrival order (parents before children within the snapshot).
        entry_points: hashes of pruned transactions that retained
            transactions reference, mapped to the pruned transactions'
            timestamps (needed for deterministic parent-age computation).
        retired_tips: retained transactions (or the genesis) whose
            approvers were all pruned — they must not re-enter the tip
            pool after a restore.
        pruned_count: how many transactions the snapshot dropped.
        created_at: ledger time at which the snapshot was taken.
    """

    genesis: Transaction
    retained: Tuple[Tuple[Transaction, float], ...]
    entry_points: Tuple[Tuple[bytes, float], ...]
    retired_tips: Tuple[bytes, ...]
    pruned_count: int
    created_at: float

    @property
    def retained_count(self) -> int:
        return len(self.retained)

    # -- restore -----------------------------------------------------------

    def restore(self, *, validators: Optional[List[Validator]] = None,
                track_cumulative_weight: bool = True,
                weight_flush_interval: int = DEFAULT_WEIGHT_FLUSH_INTERVAL) -> Tangle:
        """Rebuild a working tangle from this snapshot.

        The restored tangle accepts references to the pruned region via
        its entry points and continues growing normally.  The retained
        region is replayed *without* validators — it was validated when
        it first attached, and stateful validators (timestamps, credit)
        would mis-judge a replay; the supplied validators only govern
        growth after the restore.  The replay itself rides the batched
        weight engine (*weight_flush_interval*), so restoring an
        n-transaction snapshot no longer pays an O(ancestors) walk per
        replayed transaction.
        """
        tangle = Tangle(
            self.genesis,
            track_cumulative_weight=track_cumulative_weight,
            entry_points=dict(self.entry_points),
            weight_flush_interval=weight_flush_interval,
        )
        for tx, arrival_time in self.retained:
            tangle.attach(tx, arrival_time=arrival_time)
        for tx_hash in self.retired_tips:
            tangle.retire_tip(tx_hash)
        for validator in (validators or []):
            tangle.add_validator(validator)
        return tangle

    # -- serialisation -------------------------------------------------------

    def to_json(self) -> str:
        """Serialise for storage or for bootstrapping a new node."""
        return json.dumps({
            "genesis": self.genesis.to_bytes().hex(),
            "retained": [
                [tx.to_bytes().hex(), arrival]
                for tx, arrival in self.retained
            ],
            "entry_points": [
                [tx_hash.hex(), timestamp]
                for tx_hash, timestamp in self.entry_points
            ],
            "retired_tips": [tx_hash.hex() for tx_hash in self.retired_tips],
            "pruned_count": self.pruned_count,
            "created_at": self.created_at,
        })

    @classmethod
    def from_json(cls, data: str) -> "TangleSnapshot":
        try:
            fields = json.loads(data)
            return cls(
                genesis=Transaction.from_bytes(
                    bytes.fromhex(fields["genesis"])),
                retained=tuple(
                    (Transaction.from_bytes(bytes.fromhex(encoded)),
                     float(arrival))
                    for encoded, arrival in fields["retained"]
                ),
                entry_points=tuple(
                    (bytes.fromhex(h), float(t))
                    for h, t in fields["entry_points"]
                ),
                retired_tips=tuple(
                    bytes.fromhex(h) for h in fields["retired_tips"]
                ),
                pruned_count=int(fields["pruned_count"]),
                created_at=float(fields["created_at"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed snapshot encoding: {exc}") from exc


def take_snapshot(tangle: Tangle, *, now: float,
                  keep_recent_seconds: float = 60.0,
                  min_weight_to_prune: int = 5) -> TangleSnapshot:
    """Prune deeply confirmed history from *tangle*.

    A transaction is pruned when it is **both** old (arrived more than
    *keep_recent_seconds* before *now*) **and** buried (cumulative
    weight at least *min_weight_to_prune* — the DAG's six-block-style
    burial guarantee).  Everything else is retained; tips are therefore
    always retained, so the tangle keeps growing seamlessly after a
    restore.

    Pruned transactions referenced by retained ones become entry points.
    The genesis is always retained.
    """
    if keep_recent_seconds < 0:
        raise ValueError("keep_recent_seconds must be non-negative")
    if min_weight_to_prune < 1:
        raise ValueError("min_weight_to_prune must be >= 1")

    cutoff = now - keep_recent_seconds
    retained: List[Tuple[Transaction, float]] = []
    retained_hashes = {tangle.genesis.tx_hash}
    pruned: Dict[bytes, float] = {}

    for tx in tangle:
        if tx.is_genesis:
            continue
        arrival = tangle.arrival_time(tx.tx_hash)
        buried = tangle.weight(tx.tx_hash) >= min_weight_to_prune
        old = arrival < cutoff
        if buried and old and not tangle.is_tip(tx.tx_hash):
            pruned[tx.tx_hash] = tx.timestamp
        else:
            retained.append((tx, arrival))
            retained_hashes.add(tx.tx_hash)

    # Entry points: pruned (or previously pruned) parents that retained
    # transactions still reference.
    entry_points: Dict[bytes, float] = {}
    previous_entry_points = tangle.entry_points()
    for tx, _ in retained:
        for parent in (tx.branch, tx.trunk):
            if parent in retained_hashes:
                continue
            if parent in pruned:
                entry_points[parent] = pruned[parent]
            elif parent in previous_entry_points:
                entry_points[parent] = previous_entry_points[parent]

    # Retained transactions whose approvers were all pruned must not
    # resurface as tips after the restore: their burial already happened.
    retired_tips = tuple(
        tx_hash for tx_hash in sorted(retained_hashes)
        if not tangle.is_tip(tx_hash)
        and not any(child in retained_hashes
                    for child in tangle.approvers(tx_hash))
    )

    return TangleSnapshot(
        genesis=tangle.genesis,
        retained=tuple(retained),
        entry_points=tuple(sorted(entry_points.items())),
        retired_tips=retired_tips,
        pruned_count=len(pruned),
        created_at=now,
    )
