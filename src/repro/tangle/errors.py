"""Exception hierarchy for ledger validation.

Every reason a transaction can be rejected has its own exception type so
tests, gateways and the credit system can react to the *specific*
failure (e.g. a :class:`DoubleSpendError` triggers the αd punishment,
an :class:`UnauthorizedIssuerError` is simply dropped by gateways).
"""

from __future__ import annotations

__all__ = [
    "TangleError",
    "ValidationError",
    "UnknownParentError",
    "DuplicateTransactionError",
    "InvalidPowError",
    "InvalidSignatureError",
    "TimestampError",
    "SelfApprovalError",
    "MalformedPayloadError",
    "UnauthorizedIssuerError",
    "DoubleSpendError",
    "InsufficientFundsError",
]


class TangleError(Exception):
    """Base class for all ledger errors."""


class ValidationError(TangleError):
    """A transaction failed validation and must not be attached."""


class UnknownParentError(ValidationError):
    """The transaction approves a parent the tangle has never seen."""


class DuplicateTransactionError(ValidationError):
    """The transaction hash is already attached."""


class InvalidPowError(ValidationError):
    """The nonce does not satisfy the declared difficulty."""


class InvalidSignatureError(ValidationError):
    """The issuer's signature does not verify."""


class TimestampError(ValidationError):
    """The timestamp is outside the acceptable window."""


class SelfApprovalError(ValidationError):
    """The transaction lists itself (or the same parent twice when
    forbidden) as an approval target."""


class MalformedPayloadError(ValidationError):
    """The payload cannot be decoded for the declared kind."""


class UnauthorizedIssuerError(ValidationError):
    """The issuer is not on the manager's authorisation list."""


class DoubleSpendError(ValidationError):
    """A transfer reuses an already-spent (account, sequence) slot."""


class InsufficientFundsError(ValidationError):
    """A transfer exceeds the sender's available balance."""
