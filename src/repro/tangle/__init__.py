"""DAG-structured blockchain substrate (the tangle).

Implements Section II-B of the paper: transactions as DAG vertices, tip
selection, cumulative weights, asynchronous validation, and the token
ledger that gives double-spending concrete semantics.
"""

from .errors import (
    DoubleSpendError,
    DuplicateTransactionError,
    InsufficientFundsError,
    InvalidPowError,
    InvalidSignatureError,
    MalformedPayloadError,
    SelfApprovalError,
    TangleError,
    TimestampError,
    UnauthorizedIssuerError,
    UnknownParentError,
    ValidationError,
)
from .ledger import ConflictRecord, TokenLedger, TransferPayload
from .snapshot import TangleSnapshot, take_snapshot
from .tangle import (
    DEFAULT_WEIGHT_FLUSH_INTERVAL,
    AttachResult,
    Tangle,
    TipInfo,
    Validator,
)
from .tip_selection import (
    FixedPairTipSelector,
    TipSelector,
    UniformRandomTipSelector,
    WeightedRandomWalkSelector,
)
from .transaction import GENESIS_KIND, ZERO_HASH, Transaction, TransactionKind
from .validation import (
    DEFAULT_MAX_PARENT_AGE,
    crypto_validator,
    detect_lazy_approval,
    timestamp_validator,
)

__all__ = [
    "Tangle",
    "AttachResult",
    "TipInfo",
    "Validator",
    "DEFAULT_WEIGHT_FLUSH_INTERVAL",
    "Transaction",
    "TransactionKind",
    "GENESIS_KIND",
    "ZERO_HASH",
    "TipSelector",
    "UniformRandomTipSelector",
    "WeightedRandomWalkSelector",
    "FixedPairTipSelector",
    "TokenLedger",
    "TransferPayload",
    "ConflictRecord",
    "TangleSnapshot",
    "take_snapshot",
    "crypto_validator",
    "timestamp_validator",
    "detect_lazy_approval",
    "DEFAULT_MAX_PARENT_AGE",
    "TangleError",
    "ValidationError",
    "UnknownParentError",
    "DuplicateTransactionError",
    "InvalidPowError",
    "InvalidSignatureError",
    "TimestampError",
    "SelfApprovalError",
    "MalformedPayloadError",
    "UnauthorizedIssuerError",
    "DoubleSpendError",
    "InsufficientFundsError",
]
