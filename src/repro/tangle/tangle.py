"""The tangle: a DAG-structured distributed ledger.

Implements the structure of Section II-B: transactions are vertices,
each approving two earlier transactions; unapproved transactions are
*tips*; a transaction's *weight* ("proportional to the number of
validation[s] for the transaction") is its cumulative weight — itself
plus every transaction that directly or indirectly approves it.  The
larger the weight, the harder the transaction is to tamper with —
the DAG analogue of Bitcoin's six-block security.

The class is a pure data structure: cryptographic and semantic checks
are composed in as validator callables (see
:mod:`repro.tangle.validation`), so a bare ``Tangle`` can be used for
structural experiments while the full B-IoT stack layers ACL and ledger
rules on top.

Scale notes
-----------

Three hot paths are engineered for large ledgers:

* **Cumulative weights** are maintained *lazily*: an attach only
  appends the transaction to a dirty set (O(1)); contributions are
  propagated in batched epochs (:meth:`Tangle.flush_weights`) that
  share one reverse-topological sweep — with bitmask multiplicity
  tracking — across the whole epoch.  Every read through
  :meth:`Tangle.weight` flushes first, so observed weights are always
  exact; the batching is invisible except in speed.
* **The tip pool** keeps a lazily rebuilt sorted cache plus per-tip
  issuer/arrival/height metadata, so :meth:`Tangle.tips` and selector
  sampling stop re-sorting the pool on every call, and
  :meth:`Tangle.newest_tip_arrival` answers in O(log n) amortised via
  a lazy max-heap instead of an O(tips) scan.
* **Depth from tips** is answered from a multi-source BFS map cached
  per tangle version instead of a fresh future-cone BFS per query.

A **height index** (:meth:`Tangle.transactions_at_height`,
:attr:`Tangle.max_height`) supports milestone-style bounded random
walks (see :class:`~repro.tangle.tip_selection.
WeightedRandomWalkSelector`).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..telemetry.registry import COUNT_BUCKETS, coerce_registry
from .errors import (
    DuplicateTransactionError,
    UnknownParentError,
    ValidationError,
)
from .transaction import Transaction, ZERO_HASH

__all__ = ["Tangle", "AttachResult", "TipInfo", "Validator",
           "DEFAULT_WEIGHT_FLUSH_INTERVAL"]

Validator = Callable[["Tangle", Transaction], None]
"""A validation hook: raise :class:`ValidationError` to reject."""

DEFAULT_WEIGHT_FLUSH_INTERVAL = 256
"""Dirty-set size that triggers an automatic weight flush on attach.

Each flush costs one sweep over the union of the dirty transactions'
ancestor cones, so a larger interval amortises more attaches per sweep
(total flush work is ~O(n²/interval) node visits for an n-transaction
growth that never reads weights).  Reads flush eagerly regardless, so
the interval never affects observable values — only throughput."""


@dataclass(frozen=True)
class AttachResult:
    """What the tangle observed while attaching one transaction.

    The credit system consumes these observations: ``parents_were_tips``
    reveals whether the approved targets were still unapproved, and
    ``parent_ages`` how stale they were.

    ``parent_ages`` is computed from *ledger timestamps*
    (``tx.timestamp - parent.timestamp``), not local arrival times, so
    every replica derives the identical value for the same transaction —
    a prerequisite for replicas to agree on credit, and therefore on the
    required PoW difficulty.
    """

    transaction: Transaction
    arrival_time: float
    parents_were_tips: Tuple[bool, bool]
    parent_ages: Tuple[float, float]
    new_tip_count: int

    @property
    def approved_fresh_tips(self) -> bool:
        """True when both approved parents were still unapproved tips."""
        return all(self.parents_were_tips)


@dataclass(frozen=True)
class TipInfo:
    """O(1) metadata the tip-pool index keeps per tip."""

    tx_hash: bytes
    issuer: bytes
    arrival_time: float
    height: int


class Tangle:
    """In-memory DAG ledger seeded by a genesis transaction.

    Args:
        genesis: the root transaction (``branch == trunk == ZERO_HASH``).
        validators: extra validation hooks run before structural attach
            (ACL checks, ledger conflict rules, PoW policy, ...).
        track_cumulative_weight: maintain exact cumulative weights via
            the lazy batched engine (O(1) per attach, amortised batched
            propagation on read).  Disable for very large throughput
            sweeps that only need tip statistics; weights are then
            recomputed from scratch on demand (exact-on-demand
            fallback).
        entry_points: hashes of *pruned* transactions (mapped to their
            original timestamps) that may still be referenced as
            parents — the local-snapshot mechanism
            (:mod:`repro.tangle.snapshot`).  An entry point satisfies
            parent lookups but carries no content and is never a tip.
        weight_flush_interval: dirty-set size triggering an automatic
            batched weight flush on attach.  ``1`` degenerates to the
            classic eager per-attach ancestor walk (useful as the exact
            baseline in differential tests and benchmarks).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` to emit
            ``repro_tangle_*`` metrics into (attach counts, flush batch
            sizes, walk lengths, cache hits); ``None`` means the
            zero-overhead null registry.
    """

    def __init__(self, genesis: Transaction, *,
                 validators: Optional[List[Validator]] = None,
                 track_cumulative_weight: bool = True,
                 entry_points: Optional[Dict[bytes, float]] = None,
                 weight_flush_interval: int = DEFAULT_WEIGHT_FLUSH_INTERVAL,
                 telemetry=None):
        if not genesis.is_genesis:
            raise ValueError("tangle must be seeded with a genesis transaction")
        if genesis.branch != ZERO_HASH or genesis.trunk != ZERO_HASH:
            raise ValueError("genesis parents must be the zero hash")
        if weight_flush_interval < 1:
            raise ValueError("weight_flush_interval must be >= 1")
        self._validators: List[Validator] = list(validators or [])
        self._track_weight = track_cumulative_weight
        self._flush_interval = weight_flush_interval
        self._entry_points: Dict[bytes, float] = dict(entry_points or {})

        self._transactions: Dict[bytes, Transaction] = {}
        self._approvers: Dict[bytes, Set[bytes]] = {}
        self._tips: Set[bytes] = set()
        self._arrival_time: Dict[bytes, float] = {}
        self._height: Dict[bytes, int] = {}
        self._cumulative_weight: Dict[bytes, int] = {}
        self._order: List[bytes] = []
        # -- scale indexes -------------------------------------------------
        # Arrival position per hash: reverse-topological order for the
        # batched weight sweep (arrival order is topological).
        self._arrival_index: Dict[bytes, int] = {}
        # Dirty set of attached-but-unpropagated weight contributions.
        self._pending_weight: List[bytes] = []
        # Height index for milestone-style walk entry points.
        self._by_height: Dict[int, List[bytes]] = {}
        self._max_height: int = 0
        # Tip-pool index: lazily rebuilt sorted cache + lazy max-heap of
        # (-arrival, hash) for newest_tip_arrival.
        self._tips_cache: Optional[Tuple[bytes, ...]] = None
        self._tip_arrival_heap: List[Tuple[float, bytes]] = []
        # Tips removed without an approval (snapshot restores): they
        # bound depth_from_tips for fully buried history.
        self._retired: Set[bytes] = set()
        # Structure version, for the cached depth-from-tips map.
        self._version: int = 0
        self._depth_map: Dict[bytes, int] = {}
        self._depth_version: int = -1
        # Flush observers: called with {tx_hash: new_weight} for every
        # transaction whose cumulative weight changed in a flush epoch.
        self._weight_listeners: List[Callable[[Dict[bytes, int]], object]] = []

        self.telemetry = coerce_registry(telemetry)
        self._m_attach = self.telemetry.counter(
            "repro_tangle_attach_total", "Transactions attached")
        self._m_flush = self.telemetry.counter(
            "repro_tangle_flush_total", "Batched weight-flush epochs")
        self._m_flush_batch = self.telemetry.histogram(
            "repro_tangle_flush_batch_size",
            "Dirty transactions propagated per flush epoch",
            buckets=COUNT_BUCKETS)
        self._m_weight_reads = self.telemetry.counter(
            "repro_tangle_weight_reads_total", "Cumulative-weight reads")
        self._m_tip_cache_hit = self.telemetry.counter(
            "repro_tangle_tip_cache_hits_total",
            "tip_sequence() served from the sorted cache")
        self._m_tip_cache_miss = self.telemetry.counter(
            "repro_tangle_tip_cache_misses_total",
            "tip_sequence() rebuilds of the sorted cache")
        self._m_tips_gauge = self.telemetry.gauge(
            "repro_tangle_tips", "Current tip-pool size")
        self._m_walk_length = self.telemetry.histogram(
            "repro_tangle_walk_length",
            "Steps per weighted-random-walk tip selection",
            buckets=COUNT_BUCKETS)
        self._m_depth_cache_hit = self.telemetry.counter(
            "repro_tangle_depth_cache_hits_total",
            "depth_from_tips() served from the cached BFS map")
        self._m_depth_cache_miss = self.telemetry.counter(
            "repro_tangle_depth_cache_misses_total",
            "depth_from_tips() multi-source BFS rebuilds")

        self.genesis = genesis
        self._insert(genesis, arrival_time=genesis.timestamp, parents=())

    # -- validators ------------------------------------------------------

    def add_validator(self, validator: Validator) -> None:
        """Append a validation hook applied to all future attaches."""
        self._validators.append(validator)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._transactions

    def __iter__(self) -> Iterator[Transaction]:
        """Iterate transactions in arrival order (genesis first)."""
        return (self._transactions[h] for h in self._order)

    def get(self, tx_hash: bytes) -> Transaction:
        """Return the transaction for *tx_hash* (KeyError if unknown)."""
        return self._transactions[tx_hash]

    def is_entry_point(self, tx_hash: bytes) -> bool:
        """Whether *tx_hash* is a pruned-history entry point."""
        return tx_hash in self._entry_points

    def entry_points(self) -> Dict[bytes, float]:
        """The pruned-parent hashes this tangle accepts, with their
        original timestamps."""
        return dict(self._entry_points)

    def tips(self) -> List[bytes]:
        """Current tip hashes in deterministic (sorted) order."""
        return list(self.tip_sequence())

    def tip_sequence(self) -> Tuple[bytes, ...]:
        """Sorted tip hashes as a cached tuple (no per-call copy/sort).

        The cache is rebuilt only when the tip set changed since the
        last call, so selectors sampling an unchanged pool pay O(1).
        """
        if self._tips_cache is None:
            self._m_tip_cache_miss.inc()
            self._tips_cache = tuple(sorted(self._tips))
        else:
            self._m_tip_cache_hit.inc()
        return self._tips_cache

    def is_tip(self, tx_hash: bytes) -> bool:
        return tx_hash in self._tips

    def tip_info(self, tx_hash: bytes) -> TipInfo:
        """Issuer/arrival/height metadata for one current tip (O(1))."""
        if tx_hash not in self._tips:
            raise KeyError(tx_hash)
        tx = self._transactions[tx_hash]
        return TipInfo(
            tx_hash=tx_hash,
            issuer=tx.issuer.node_id,
            arrival_time=self._arrival_time[tx_hash],
            height=self._height[tx_hash],
        )

    def tip_metadata(self) -> List[TipInfo]:
        """Metadata for every current tip, in sorted-hash order."""
        return [self.tip_info(h) for h in self.tip_sequence()]

    def newest_tip_arrival(self) -> float:
        """Latest arrival time among current tips (O(log n) amortised).

        Backed by a lazy max-heap: stale entries (transactions approved
        or retired since they were pushed) are discarded on read, so
        per-attach consumers like the timestamp validator no longer
        scan the whole tip pool.
        """
        heap = self._tip_arrival_heap
        while heap and heap[0][1] not in self._tips:
            heapq.heappop(heap)
        if not heap:
            raise ValueError("tangle has no tips")
        return -heap[0][0]

    def retire_tip(self, tx_hash: bytes) -> None:
        """Remove *tx_hash* from the tip pool without an approval.

        Used by snapshot restoration: a transaction whose approvers were
        all pruned must not be re-offered for approval (its burial is a
        historical fact the snapshot preserves).  Retired tips remain
        queryable and act as burial boundaries for
        :meth:`depth_from_tips`.
        """
        if tx_hash not in self._transactions:
            raise KeyError(tx_hash)
        if tx_hash in self._tips:
            self._tips.discard(tx_hash)
            self._retired.add(tx_hash)
            self._tips_cache = None
            self._version += 1

    @property
    def tip_count(self) -> int:
        return len(self._tips)

    def retired_tips(self) -> Set[bytes]:
        """Transactions removed from the tip pool via :meth:`retire_tip`
        (and still without retained approvers)."""
        return set(self._retired)

    def approvers(self, tx_hash: bytes) -> Set[bytes]:
        """Direct approvers (children) of *tx_hash*."""
        return set(self._approvers[tx_hash])

    def parents(self, tx_hash: bytes) -> Tuple[bytes, ...]:
        """The (branch, trunk) hashes of *tx_hash* (empty for genesis)."""
        tx = self._transactions[tx_hash]
        if tx.is_genesis:
            return ()
        return (tx.branch, tx.trunk)

    def arrival_time(self, tx_hash: bytes) -> float:
        return self._arrival_time[tx_hash]

    def height(self, tx_hash: bytes) -> int:
        """Longest path length from genesis to *tx_hash*."""
        return self._height[tx_hash]

    @property
    def max_height(self) -> int:
        """Largest height of any attached transaction."""
        return self._max_height

    def transactions_at_height(self, height: int) -> Tuple[bytes, ...]:
        """Hashes at exactly *height*, in arrival order (empty when the
        tangle has none) — the milestone candidates for bounded walks."""
        return tuple(self._by_height.get(height, ()))

    def weight(self, tx_hash: bytes) -> int:
        """Cumulative weight: 1 + number of (in)direct approvers.

        This is the paper's per-transaction *weight* metric ``w_k``.
        Always exact: pending batched contributions are flushed before
        the read — except for transactions with no approvers, whose
        stored weight (1) is already exact: increments only ever flow
        up from descendants, so a childless transaction can never have
        a pending contribution aimed at it.  That fast path lets
        record-time weight reads on freshly attached transactions (the
        credit registry's common case) skip the flush entirely,
        preserving the attach path's O(1) batching.
        """
        self._m_weight_reads.inc()
        if not self._track_weight:
            return self._compute_cumulative_weight(tx_hash)
        approvers = self._approvers.get(tx_hash)
        if approvers is not None and not approvers:
            return self._cumulative_weight[tx_hash]
        if self._pending_weight:
            self.flush_weights()
        return self._cumulative_weight[tx_hash]

    @property
    def pending_weight_count(self) -> int:
        """Attached transactions whose weight contribution has not been
        propagated yet (observability for tests and benchmarks)."""
        return len(self._pending_weight)

    def add_weight_listener(
            self, listener: Callable[[Dict[bytes, int]], object]) -> None:
        """Subscribe to weight changes: *listener* is called at the end
        of every flush epoch with ``{tx_hash: new_weight}`` for each
        transaction whose cumulative weight changed.

        This is the push half of the credit registry's weight cache
        (:meth:`~repro.core.credit.CreditRegistry.refresh_weight_values`):
        instead of re-reading every recorded weight through the provider
        per evaluation, the registry records weights once and receives
        the deltas as they land.
        """
        self._weight_listeners.append(listener)

    def flush_weights(self) -> int:
        """Propagate all dirty weight contributions; returns how many
        transactions were flushed.

        A singleton epoch takes the classic ancestor walk.  Larger
        epochs share one reverse-topological sweep over the union of
        the dirty transactions' ancestor cones: every dirty transaction
        owns one bit in an integer mask, masks are OR-merged down the
        parent edges (children are visited before parents because
        arrival order is topological), and each ancestor's increment is
        the popcount of the mask that reached it — counting every dirty
        descendant exactly once, diamonds included.
        """
        pending = self._pending_weight
        if not pending:
            return 0
        self._pending_weight = []
        self._m_flush.inc()
        self._m_flush_batch.observe(len(pending))
        weights = self._cumulative_weight
        listeners = self._weight_listeners
        changed: Optional[Dict[bytes, int]] = {} if listeners else None
        if len(pending) == 1:
            for ancestor in self.ancestors(pending[0]):
                weights[ancestor] += 1
                if changed is not None:
                    changed[ancestor] = weights[ancestor]
            if changed:
                for listener in listeners:
                    listener(changed)
            return 1
        bit_of = {h: 1 << i for i, h in enumerate(pending)}
        # Affected region: the union of ancestor cones (shared ancestors
        # are visited once, not once per dirty transaction).
        affected: Set[bytes] = set(pending)
        queue = deque(pending)
        transactions = self._transactions
        while queue:
            current = queue.popleft()
            for parent in self.parents(current):
                if parent in affected or parent not in transactions:
                    continue
                affected.add(parent)
                queue.append(parent)
        incoming: Dict[bytes, int] = {}
        arrival_index = self._arrival_index
        for tx_hash in sorted(affected, key=arrival_index.__getitem__,
                              reverse=True):
            mask = incoming.pop(tx_hash, 0)
            if mask:
                weights[tx_hash] += mask.bit_count()
                if changed is not None:
                    changed[tx_hash] = weights[tx_hash]
            mask |= bit_of.get(tx_hash, 0)
            if not mask:
                continue
            for parent in set(self.parents(tx_hash)):
                if parent in affected:
                    incoming[parent] = incoming.get(parent, 0) | mask
        if changed:
            for listener in listeners:
                listener(changed)
        return len(pending)

    def is_confirmed(self, tx_hash: bytes, threshold: int) -> bool:
        """A transaction is confirmed once its weight reaches *threshold*
        (the DAG analogue of six-block security)."""
        return self.weight(tx_hash) >= threshold

    def depth_from_tips(self, tx_hash: bytes) -> int:
        """Shortest approval distance from any current tip (0 for tips).

        Answered from a multi-source BFS map cached per tangle version,
        so repeated queries between attaches are O(1) instead of a
        future-cone BFS each.

        A transaction whose whole future cone was pruned (its nearest
        unapproved descendants were retired via :meth:`retire_tip`)
        reports its distance to the nearest *retired* boundary instead —
        a lower bound on its true burial depth, since the pruned region
        beyond the boundary only adds approvals.  (Historically this
        case raised :class:`UnknownParentError`.)
        """
        if tx_hash not in self._transactions:
            raise KeyError(tx_hash)
        if self._depth_version != self._version:
            self._m_depth_cache_miss.inc()
            self._rebuild_depth_map()
        else:
            self._m_depth_cache_hit.inc()
        return self._depth_map[tx_hash]

    def _rebuild_depth_map(self) -> None:
        depth: Dict[bytes, int] = {}
        transactions = self._transactions

        def sweep(sources) -> None:
            queue: deque = deque()
            for source in sources:
                if source not in depth:
                    depth[source] = 0
                    queue.append(source)
            while queue:
                current = queue.popleft()
                next_depth = depth[current] + 1
                for parent in self.parents(current):
                    if parent in depth or parent not in transactions:
                        continue
                    depth[parent] = next_depth
                    queue.append(parent)

        # Live tips first: where a live tip is reachable the answer is
        # the exact historical semantics.  Anything still unassigned can
        # only surface at a retired (pruned-approver) boundary.
        sweep(self._tips)
        sweep(h for h in self._retired if h not in depth)
        self._depth_map = depth
        self._depth_version = self._version

    def ancestors(self, tx_hash: bytes) -> Set[bytes]:
        """All *retained* transactions (in)directly approved by
        *tx_hash* (pruned entry points are not included)."""
        seen: Set[bytes] = set()
        queue = deque(self.parents(tx_hash))
        while queue:
            current = queue.popleft()
            if current in seen or current not in self._transactions:
                continue
            seen.add(current)
            queue.extend(self.parents(current))
        return seen

    def transactions_by_issuer(self, node_id: bytes) -> List[Transaction]:
        """All attached transactions issued by *node_id*, arrival order."""
        return [tx for tx in self if tx.issuer.node_id == node_id]

    def observe_walk(self, steps: int) -> None:
        """Record one tip-selection walk of *steps* hops — the seam
        selectors use so walk-length telemetry lands next to the
        tangle's other hot-path metrics."""
        self._m_walk_length.observe(steps)

    # -- attach ----------------------------------------------------------

    def attach(self, tx: Transaction, *, arrival_time: Optional[float] = None) -> AttachResult:
        """Validate and insert *tx*, returning attach observations.

        Raises a :class:`~repro.tangle.errors.ValidationError` subclass
        and leaves the tangle unmodified on any failure.
        """
        if tx.tx_hash in self._transactions:
            raise DuplicateTransactionError(
                f"transaction {tx.short_hash} already attached"
            )
        if tx.is_genesis:
            raise ValidationError("a tangle has exactly one genesis")
        for parent in (tx.branch, tx.trunk):
            if (parent not in self._transactions
                    and parent not in self._entry_points):
                raise UnknownParentError(
                    f"unknown parent {parent.hex()[:8]} for {tx.short_hash}"
                )
        for validator in self._validators:
            validator(self, tx)

        when = arrival_time if arrival_time is not None else tx.timestamp
        parents = (tx.branch, tx.trunk)
        parents_were_tips = tuple(p in self._tips for p in parents)
        # Ledger-timestamp ages: identical on every replica.
        parent_ages = tuple(
            max(0.0, tx.timestamp - self._parent_timestamp(p))
            for p in parents
        )
        self._insert(tx, arrival_time=when, parents=parents)
        self._m_attach.inc()
        return AttachResult(
            transaction=tx,
            arrival_time=when,
            parents_were_tips=parents_were_tips,  # type: ignore[arg-type]
            parent_ages=parent_ages,  # type: ignore[arg-type]
            new_tip_count=len(self._tips),
        )

    # -- internals -------------------------------------------------------

    def _parent_timestamp(self, parent: bytes) -> float:
        tx = self._transactions.get(parent)
        if tx is not None:
            return tx.timestamp
        return self._entry_points[parent]

    def _insert(self, tx: Transaction, *, arrival_time: float,
                parents: Tuple[bytes, ...]) -> None:
        tx_hash = tx.tx_hash
        self._transactions[tx_hash] = tx
        self._approvers[tx_hash] = set()
        self._arrival_time[tx_hash] = arrival_time
        self._arrival_index[tx_hash] = len(self._order)
        self._order.append(tx_hash)
        self._tips.add(tx_hash)
        if parents:
            # Entry points (pruned history) sit at height 0.
            height = 1 + max(self._height.get(p, 0) for p in set(parents))
        else:
            height = 0
        self._height[tx_hash] = height
        self._by_height.setdefault(height, []).append(tx_hash)
        if height > self._max_height:
            self._max_height = height
        for parent in set(parents):
            if parent in self._entry_points:
                continue  # pruned parents track no approvers
            self._approvers[parent].add(tx_hash)
            self._tips.discard(parent)
            self._retired.discard(parent)
        self._tips_cache = None
        self._version += 1
        self._m_tips_gauge.set(len(self._tips))
        heapq.heappush(self._tip_arrival_heap, (-arrival_time, tx_hash))
        self._cumulative_weight[tx_hash] = 1
        if self._track_weight and parents:
            self._pending_weight.append(tx_hash)
            if len(self._pending_weight) >= self._flush_interval:
                self.flush_weights()

    def _compute_cumulative_weight(self, tx_hash: bytes) -> int:
        if tx_hash not in self._transactions:
            raise KeyError(tx_hash)
        seen: Set[bytes] = {tx_hash}
        queue = deque([tx_hash])
        while queue:
            current = queue.popleft()
            for child in self._approvers[current]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return len(seen)
