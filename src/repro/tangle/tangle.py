"""The tangle: a DAG-structured distributed ledger.

Implements the structure of Section II-B: transactions are vertices,
each approving two earlier transactions; unapproved transactions are
*tips*; a transaction's *weight* ("proportional to the number of
validation[s] for the transaction") is its cumulative weight — itself
plus every transaction that directly or indirectly approves it.  The
larger the weight, the harder the transaction is to tamper with —
the DAG analogue of Bitcoin's six-block security.

The class is a pure data structure: cryptographic and semantic checks
are composed in as validator callables (see
:mod:`repro.tangle.validation`), so a bare ``Tangle`` can be used for
structural experiments while the full B-IoT stack layers ACL and ledger
rules on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .errors import (
    DuplicateTransactionError,
    UnknownParentError,
    ValidationError,
)
from .transaction import Transaction, ZERO_HASH

__all__ = ["Tangle", "AttachResult", "Validator"]

Validator = Callable[["Tangle", Transaction], None]
"""A validation hook: raise :class:`ValidationError` to reject."""


@dataclass(frozen=True)
class AttachResult:
    """What the tangle observed while attaching one transaction.

    The credit system consumes these observations: ``parents_were_tips``
    reveals whether the approved targets were still unapproved, and
    ``parent_ages`` how stale they were.

    ``parent_ages`` is computed from *ledger timestamps*
    (``tx.timestamp - parent.timestamp``), not local arrival times, so
    every replica derives the identical value for the same transaction —
    a prerequisite for replicas to agree on credit, and therefore on the
    required PoW difficulty.
    """

    transaction: Transaction
    arrival_time: float
    parents_were_tips: Tuple[bool, bool]
    parent_ages: Tuple[float, float]
    new_tip_count: int

    @property
    def approved_fresh_tips(self) -> bool:
        """True when both approved parents were still unapproved tips."""
        return all(self.parents_were_tips)


class Tangle:
    """In-memory DAG ledger seeded by a genesis transaction.

    Args:
        genesis: the root transaction (``branch == trunk == ZERO_HASH``).
        validators: extra validation hooks run before structural attach
            (ACL checks, ledger conflict rules, PoW policy, ...).
        track_cumulative_weight: maintain exact cumulative weights on
            every attach (O(ancestors) per attach).  Disable for very
            large throughput sweeps that only need tip statistics.
        entry_points: hashes of *pruned* transactions (mapped to their
            original timestamps) that may still be referenced as
            parents — the local-snapshot mechanism
            (:mod:`repro.tangle.snapshot`).  An entry point satisfies
            parent lookups but carries no content and is never a tip.
    """

    def __init__(self, genesis: Transaction, *,
                 validators: Optional[List[Validator]] = None,
                 track_cumulative_weight: bool = True,
                 entry_points: Optional[Dict[bytes, float]] = None):
        if not genesis.is_genesis:
            raise ValueError("tangle must be seeded with a genesis transaction")
        if genesis.branch != ZERO_HASH or genesis.trunk != ZERO_HASH:
            raise ValueError("genesis parents must be the zero hash")
        self._validators: List[Validator] = list(validators or [])
        self._track_weight = track_cumulative_weight
        self._entry_points: Dict[bytes, float] = dict(entry_points or {})

        self._transactions: Dict[bytes, Transaction] = {}
        self._approvers: Dict[bytes, Set[bytes]] = {}
        self._tips: Set[bytes] = set()
        self._arrival_time: Dict[bytes, float] = {}
        self._height: Dict[bytes, int] = {}
        self._cumulative_weight: Dict[bytes, int] = {}
        self._order: List[bytes] = []

        self.genesis = genesis
        self._insert(genesis, arrival_time=genesis.timestamp, parents=())

    # -- validators ------------------------------------------------------

    def add_validator(self, validator: Validator) -> None:
        """Append a validation hook applied to all future attaches."""
        self._validators.append(validator)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._transactions

    def __iter__(self) -> Iterator[Transaction]:
        """Iterate transactions in arrival order (genesis first)."""
        return (self._transactions[h] for h in self._order)

    def get(self, tx_hash: bytes) -> Transaction:
        """Return the transaction for *tx_hash* (KeyError if unknown)."""
        return self._transactions[tx_hash]

    def is_entry_point(self, tx_hash: bytes) -> bool:
        """Whether *tx_hash* is a pruned-history entry point."""
        return tx_hash in self._entry_points

    def entry_points(self) -> Dict[bytes, float]:
        """The pruned-parent hashes this tangle accepts, with their
        original timestamps."""
        return dict(self._entry_points)

    def tips(self) -> List[bytes]:
        """Current tip hashes in deterministic (sorted) order."""
        return sorted(self._tips)

    def is_tip(self, tx_hash: bytes) -> bool:
        return tx_hash in self._tips

    def retire_tip(self, tx_hash: bytes) -> None:
        """Remove *tx_hash* from the tip pool without an approval.

        Used by snapshot restoration: a transaction whose approvers were
        all pruned must not be re-offered for approval (its burial is a
        historical fact the snapshot preserves).
        """
        if tx_hash not in self._transactions:
            raise KeyError(tx_hash)
        self._tips.discard(tx_hash)

    @property
    def tip_count(self) -> int:
        return len(self._tips)

    def approvers(self, tx_hash: bytes) -> Set[bytes]:
        """Direct approvers (children) of *tx_hash*."""
        return set(self._approvers[tx_hash])

    def parents(self, tx_hash: bytes) -> Tuple[bytes, ...]:
        """The (branch, trunk) hashes of *tx_hash* (empty for genesis)."""
        tx = self._transactions[tx_hash]
        if tx.is_genesis:
            return ()
        return (tx.branch, tx.trunk)

    def arrival_time(self, tx_hash: bytes) -> float:
        return self._arrival_time[tx_hash]

    def height(self, tx_hash: bytes) -> int:
        """Longest path length from genesis to *tx_hash*."""
        return self._height[tx_hash]

    def weight(self, tx_hash: bytes) -> int:
        """Cumulative weight: 1 + number of (in)direct approvers.

        This is the paper's per-transaction *weight* metric ``w_k``.
        """
        if self._track_weight:
            return self._cumulative_weight[tx_hash]
        return self._compute_cumulative_weight(tx_hash)

    def is_confirmed(self, tx_hash: bytes, threshold: int) -> bool:
        """A transaction is confirmed once its weight reaches *threshold*
        (the DAG analogue of six-block security)."""
        return self.weight(tx_hash) >= threshold

    def depth_from_tips(self, tx_hash: bytes) -> int:
        """Shortest approval distance from any current tip (0 for tips)."""
        if tx_hash in self._tips:
            return 0
        distance = {tx_hash: 0}
        queue = deque([tx_hash])
        best = None
        while queue:
            current = queue.popleft()
            for child in self._approvers[current]:
                if child in distance:
                    continue
                distance[child] = distance[current] + 1
                if child in self._tips:
                    child_distance = distance[child]
                    best = child_distance if best is None else min(best, child_distance)
                else:
                    queue.append(child)
        if best is None:
            raise UnknownParentError(f"no tip reachable from {tx_hash.hex()[:8]}")
        return best

    def ancestors(self, tx_hash: bytes) -> Set[bytes]:
        """All *retained* transactions (in)directly approved by
        *tx_hash* (pruned entry points are not included)."""
        seen: Set[bytes] = set()
        queue = deque(self.parents(tx_hash))
        while queue:
            current = queue.popleft()
            if current in seen or current not in self._transactions:
                continue
            seen.add(current)
            queue.extend(self.parents(current))
        return seen

    def transactions_by_issuer(self, node_id: bytes) -> List[Transaction]:
        """All attached transactions issued by *node_id*, arrival order."""
        return [tx for tx in self if tx.issuer.node_id == node_id]

    # -- attach ----------------------------------------------------------

    def attach(self, tx: Transaction, *, arrival_time: Optional[float] = None) -> AttachResult:
        """Validate and insert *tx*, returning attach observations.

        Raises a :class:`~repro.tangle.errors.ValidationError` subclass
        and leaves the tangle unmodified on any failure.
        """
        if tx.tx_hash in self._transactions:
            raise DuplicateTransactionError(
                f"transaction {tx.short_hash} already attached"
            )
        if tx.is_genesis:
            raise ValidationError("a tangle has exactly one genesis")
        for parent in (tx.branch, tx.trunk):
            if (parent not in self._transactions
                    and parent not in self._entry_points):
                raise UnknownParentError(
                    f"unknown parent {parent.hex()[:8]} for {tx.short_hash}"
                )
        for validator in self._validators:
            validator(self, tx)

        when = arrival_time if arrival_time is not None else tx.timestamp
        parents = (tx.branch, tx.trunk)
        parents_were_tips = tuple(p in self._tips for p in parents)
        # Ledger-timestamp ages: identical on every replica.
        parent_ages = tuple(
            max(0.0, tx.timestamp - self._parent_timestamp(p))
            for p in parents
        )
        self._insert(tx, arrival_time=when, parents=parents)
        return AttachResult(
            transaction=tx,
            arrival_time=when,
            parents_were_tips=parents_were_tips,  # type: ignore[arg-type]
            parent_ages=parent_ages,  # type: ignore[arg-type]
            new_tip_count=len(self._tips),
        )

    # -- internals -------------------------------------------------------

    def _parent_timestamp(self, parent: bytes) -> float:
        tx = self._transactions.get(parent)
        if tx is not None:
            return tx.timestamp
        return self._entry_points[parent]

    def _insert(self, tx: Transaction, *, arrival_time: float,
                parents: Tuple[bytes, ...]) -> None:
        tx_hash = tx.tx_hash
        self._transactions[tx_hash] = tx
        self._approvers[tx_hash] = set()
        self._arrival_time[tx_hash] = arrival_time
        self._order.append(tx_hash)
        self._tips.add(tx_hash)
        if parents:
            # Entry points (pruned history) sit at height 0.
            self._height[tx_hash] = 1 + max(
                self._height.get(p, 0) for p in set(parents)
            )
        else:
            self._height[tx_hash] = 0
        for parent in set(parents):
            if parent in self._entry_points:
                continue  # pruned parents track no approvers
            self._approvers[parent].add(tx_hash)
            self._tips.discard(parent)
        self._cumulative_weight[tx_hash] = 1
        if self._track_weight and parents:
            for ancestor in self.ancestors(tx_hash):
                self._cumulative_weight[ancestor] += 1

    def _compute_cumulative_weight(self, tx_hash: bytes) -> int:
        if tx_hash not in self._transactions:
            raise KeyError(tx_hash)
        seen: Set[bytes] = {tx_hash}
        queue = deque([tx_hash])
        while queue:
            current = queue.popleft()
            for child in self._approvers[current]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return len(seen)
