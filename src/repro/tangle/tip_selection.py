"""Tip-selection strategies.

Before submitting, a node gets "two random tips to validate" (paper
workflow step 4).  How those tips are chosen determines both throughput
and attack resistance:

* :class:`UniformRandomTipSelector` — the paper's baseline: pick two
  unapproved transactions uniformly at random.
* :class:`WeightedRandomWalkSelector` — the tangle's MCMC walk (Popov's
  α-walk): start deep in the DAG and walk toward tips, biased by
  cumulative weight.  Its bias against low-weight side branches is the
  structural defence that makes lazy tips ineffective even before the
  credit mechanism punishes them.
* :class:`FixedPairTipSelector` — the *lazy tips* misbehaviour itself:
  always approve one fixed, old pair (threat model, Section III).
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from .tangle import Tangle

__all__ = [
    "TipSelector",
    "UniformRandomTipSelector",
    "WeightedRandomWalkSelector",
    "FixedPairTipSelector",
]


class TipSelector:
    """Strategy interface: choose the two transactions to approve."""

    def select(self, tangle: Tangle, rng: random.Random) -> Tuple[bytes, bytes]:
        """Return a (branch, trunk) pair of transaction hashes."""
        raise NotImplementedError


class UniformRandomTipSelector(TipSelector):
    """Pick two tips uniformly at random (with replacement when only one
    tip exists, e.g. right after genesis)."""

    def select(self, tangle: Tangle, rng: random.Random) -> Tuple[bytes, bytes]:
        tips = tangle.tip_sequence()  # cached sorted tuple: no re-sort
        if not tips:
            raise ValueError("tangle has no tips")
        if len(tips) == 1:
            return tips[0], tips[0]
        branch, trunk = rng.sample(tips, 2)
        return branch, trunk


class WeightedRandomWalkSelector(TipSelector):
    """Markov-chain random walk biased by cumulative weight.

    From a starting transaction the walk repeatedly moves to one of the
    current vertex's approvers, chosen with probability proportional to
    ``exp(alpha * weight(child))``, until it reaches a tip.  ``alpha=0``
    degenerates to an unweighted walk; larger values concentrate
    approvals on the heavy "main tangle" and starve parasitic branches.

    Args:
        alpha: weight-bias exponent (IOTA uses values around 0.001–0.1
            at mainnet weight scales; at our simulation scale 0.01–0.5
            is reasonable).
        start_depth: how many height levels below the newest transaction
            to start the walk (walks start at genesis when the tangle is
            shallower).  This is the milestone/checkpoint bound that
            keeps walk length O(start_depth) instead of O(ledger):
            production tangles anchor walks at a recent milestone for
            exactly this reason, and anything attached *below* the
            entry height can no longer capture approvals — the
            structural parasite defence.
    """

    def __init__(self, alpha: float = 0.05, start_depth: int = 20):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if start_depth < 1:
            raise ValueError("start_depth must be >= 1")
        self.alpha = alpha
        self.start_depth = start_depth

    def select(self, tangle: Tangle, rng: random.Random) -> Tuple[bytes, bytes]:
        start = self._walk_entry_point(tangle)
        branch = self._walk(tangle, start, rng)
        trunk = self._walk(tangle, start, rng)
        return branch, trunk

    def _walk_entry_point(self, tangle: Tangle) -> bytes:
        """Milestone-style entry: start ``start_depth`` height levels
        below the newest transaction instead of at genesis.

        The entry is the *heaviest* transaction at the target height
        (ties broken by hash), read from the tangle's maintained height
        index — the same transaction every replica picks for the same
        ledger state, so bounding the walk costs no determinism.
        Dead-end candidates (retired snapshot boundaries) are skipped;
        a tangle shallower than ``start_depth`` still walks from
        genesis, preserving the exact historical behaviour at small
        scales.
        """
        target_height = tangle.max_height - self.start_depth
        if target_height <= 0:
            return tangle.genesis.tx_hash
        candidates = [
            h for h in tangle.transactions_at_height(target_height)
            if tangle.is_tip(h) or tangle.approvers(h)
        ]
        if not candidates:  # pragma: no cover - only all-retired levels
            return tangle.genesis.tx_hash
        return max(candidates, key=lambda h: (tangle.weight(h), h))

    def _walk(self, tangle: Tangle, start: bytes, rng: random.Random) -> bytes:
        current = start
        steps = 0
        while not tangle.is_tip(current):
            children = sorted(tangle.approvers(current))
            if not children:
                # Retired snapshot boundary: legal (if stale) to approve.
                break
            steps += 1
            if len(children) == 1:
                current = children[0]
                continue
            weights = [tangle.weight(child) for child in children]
            top = max(weights)
            # Subtract the max before exponentiating for numeric safety.
            scores = [math.exp(self.alpha * (w - top)) for w in weights]
            current = rng.choices(children, weights=scores, k=1)[0]
        tangle.observe_walk(steps)
        return current


class FixedPairTipSelector(TipSelector):
    """The lazy-tips misbehaviour: always approve the same old pair.

    "A 'lazy' node could always verify a fixed pair of very old
    transactions, while not contributing to the verification of more
    recent transactions."  Used by the attack harness and the credit
    mechanism's evaluation.
    """

    def __init__(self, branch: bytes, trunk: Optional[bytes] = None):
        self.branch = branch
        self.trunk = trunk if trunk is not None else branch

    def select(self, tangle: Tangle, rng: random.Random) -> Tuple[bytes, bytes]:
        if self.branch not in tangle or self.trunk not in tangle:
            raise ValueError("fixed pair not present in tangle")
        return self.branch, self.trunk
