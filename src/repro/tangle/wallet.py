"""Wallets: account-side transfer construction.

The token ledger (:mod:`repro.tangle.ledger`) defines what a valid
transfer *is*; a :class:`Wallet` is the sender-side state machine that
produces them — tracking the next sequence number, locally reserving
funds across in-flight transfers, and signing the payloads — so
examples, tests and attack harnesses do not hand-roll sequence
bookkeeping (and get it subtly wrong).

A wallet is intentionally *optimistic*: it trusts its own view of the
balance until the ledger says otherwise.  :meth:`Wallet.reconcile`
resyncs against an authoritative ledger (e.g. after conflicts were
arbitrated away from this sender's favour).
"""

from __future__ import annotations

from typing import Optional

from ..crypto.keys import KeyPair
from .ledger import TokenLedger, TransferPayload
from .transaction import Transaction, TransactionKind

__all__ = ["Wallet", "InsufficientWalletFundsError"]


class InsufficientWalletFundsError(Exception):
    """The wallet's local balance cannot cover a requested transfer."""


class Wallet:
    """Sender-side transfer builder for one account.

    Args:
        keypair: the account's identity (signs every transfer).
        initial_balance: the account's balance as known at creation
            (e.g. from the genesis allocation).
        initial_sequence: the next unused sequence number.
    """

    def __init__(self, keypair: KeyPair, *, initial_balance: int = 0,
                 initial_sequence: int = 0):
        if initial_balance < 0:
            raise ValueError("initial_balance must be non-negative")
        if initial_sequence < 0:
            raise ValueError("initial_sequence must be non-negative")
        self.keypair = keypair
        self._balance = initial_balance
        self._next_sequence = initial_sequence

    @property
    def account_id(self) -> bytes:
        return self.keypair.node_id

    @property
    def available_balance(self) -> int:
        """Funds not yet committed to built transfers."""
        return self._balance

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    # -- building ----------------------------------------------------------

    def build_transfer(self, recipient: bytes, amount: int, *,
                       timestamp: float, branch: bytes, trunk: bytes,
                       difficulty: int,
                       nonce: Optional[int] = None) -> Transaction:
        """Create a signed, sealed transfer transaction.

        Consumes the next sequence number and locally reserves the
        funds; raises :class:`InsufficientWalletFundsError` without
        side effects when the balance cannot cover it.
        """
        if amount <= 0:
            raise ValueError("transfer amount must be positive")
        if amount > self._balance:
            raise InsufficientWalletFundsError(
                f"wallet holds {self._balance}, transfer wants {amount}"
            )
        payload = TransferPayload(
            sender=self.account_id,
            recipient=recipient,
            amount=amount,
            sequence=self._next_sequence,
        )
        tx = Transaction.create(
            self.keypair,
            kind=TransactionKind.TRANSFER,
            payload=payload.to_bytes(),
            timestamp=timestamp,
            branch=branch,
            trunk=trunk,
            difficulty=difficulty,
            nonce=nonce,
        )
        self._next_sequence += 1
        self._balance -= amount
        return tx

    # -- incoming / reconciliation -------------------------------------------

    def notice_deposit(self, amount: int) -> None:
        """Record an incoming payment the wallet learned about."""
        if amount <= 0:
            raise ValueError("deposit amount must be positive")
        self._balance += amount

    def reconcile(self, ledger: TokenLedger) -> None:
        """Resync against an authoritative ledger view.

        Adopts the ledger's balance and fast-forwards the sequence
        counter past every slot the ledger has seen for this account —
        never backwards, so transfers built but not yet applied do not
        get their sequence reused.
        """
        self._balance = ledger.balance(self.account_id)
        ledger_next = ledger.next_sequence(self.account_id)
        self._next_sequence = max(self._next_sequence, ledger_next)
