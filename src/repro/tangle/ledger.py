"""Account ledger and double-spend semantics for transfer transactions.

The threat model (Section III) includes double-spending: "a malicious
node wants to spend the same token twice or more through submitting
multiple transactions before the previous one is verified".  To give
that attack concrete semantics, the tangle carries *transfer* payloads
over an account ledger:

* every account (a node id) holds an integer token balance;
* each transfer carries a per-sender *sequence number*;
* spending the same sequence slot twice with different content is a
  double spend — first-seen wins, the conflict is recorded (the record
  is what the credit mechanism punishes).

Sequence numbers make conflict detection exact and deterministic in an
asynchronous DAG, where "the same token" has no UTXO identity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .errors import (
    DoubleSpendError,
    InsufficientFundsError,
    MalformedPayloadError,
)
from .transaction import Transaction, TransactionKind

__all__ = ["TransferPayload", "ConflictRecord", "TokenLedger"]


@dataclass(frozen=True)
class TransferPayload:
    """A token transfer: move *amount* from *sender* to *recipient*.

    ``sequence`` must increase by one per sender transfer; reusing a
    sequence with different content is the double-spend signature.
    """

    sender: bytes
    recipient: bytes
    amount: int
    sequence: int

    def __post_init__(self):
        if len(self.sender) != 32 or len(self.recipient) != 32:
            raise ValueError("sender/recipient must be 32-byte node ids")
        if self.amount <= 0:
            raise ValueError("transfer amount must be positive")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "sender": self.sender.hex(),
                "recipient": self.recipient.hex(),
                "amount": self.amount,
                "sequence": self.sequence,
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "TransferPayload":
        try:
            fields = json.loads(data.decode())
            return cls(
                sender=bytes.fromhex(fields["sender"]),
                recipient=bytes.fromhex(fields["recipient"]),
                amount=int(fields["amount"]),
                sequence=int(fields["sequence"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise MalformedPayloadError(f"bad transfer payload: {exc}") from exc


@dataclass(frozen=True)
class ConflictRecord:
    """One detected double spend."""

    sender: bytes
    sequence: int
    accepted_tx: bytes
    rejected_tx: bytes
    detected_at: float


class TokenLedger:
    """Balances plus per-sender spent-sequence tracking.

    The ledger composes with a :class:`~repro.tangle.tangle.Tangle` in
    two phases: :meth:`validate` runs as an attach validator (rejecting
    conflicts before they enter the DAG) and :meth:`apply` is called by
    the owning node after a successful attach.
    """

    def __init__(self, initial_balances: Optional[Dict[bytes, int]] = None):
        self._balances: Dict[bytes, int] = {}
        for account, amount in (initial_balances or {}).items():
            if amount < 0:
                raise ValueError("initial balances must be non-negative")
            self._balances[bytes(account)] = int(amount)
        # sender -> sequence -> accepted transaction hash
        self._spent: Dict[bytes, Dict[int, bytes]] = {}
        # sender -> cached next unused sequence (kept so the per-transfer
        # hot path stays O(1) instead of max() over all spent slots;
        # invalidated on reversal, rebuilt lazily)
        self._next_sequence: Dict[bytes, int] = {}
        # applied tx hash -> payload (kept so a losing conflict branch
        # can be reversed when the deterministic winner arrives)
        self._applied: Dict[bytes, TransferPayload] = {}
        self.conflicts: List[ConflictRecord] = []

    # -- queries ---------------------------------------------------------

    def balance(self, account: bytes) -> int:
        """Current balance of *account* (0 if never seen)."""
        return self._balances.get(account, 0)

    def next_sequence(self, account: bytes) -> int:
        """The next unused sequence number for *account* (O(1) amortised)."""
        cached = self._next_sequence.get(account)
        if cached is None:
            spent = self._spent.get(account)
            cached = max(spent) + 1 if spent else 0
            self._next_sequence[account] = cached
        return cached

    def spent_tx(self, sender: bytes, sequence: int) -> Optional[bytes]:
        """Hash of the transfer occupying (sender, sequence), if any."""
        return self._spent.get(sender, {}).get(sequence)

    @property
    def total_supply(self) -> int:
        return sum(self._balances.values())

    # -- validation / application ----------------------------------------

    @staticmethod
    def decode(tx: Transaction) -> TransferPayload:
        """Decode a transfer transaction's payload (raises
        :class:`MalformedPayloadError` on anything else)."""
        if tx.kind != TransactionKind.TRANSFER:
            raise MalformedPayloadError(
                f"transaction {tx.short_hash} is not a transfer"
            )
        return TransferPayload.from_bytes(tx.payload)

    def validate(self, tx: Transaction, *, now: float = 0.0) -> TransferPayload:
        """Check a transfer against the current state.

        Raises :class:`DoubleSpendError` when the sequence slot is taken
        by a *different* transaction (recording the conflict), and
        :class:`InsufficientFundsError` when the balance is too small.
        The sender must match the transaction issuer — you can only
        spend your own tokens.
        """
        payload = self.decode(tx)
        if payload.sender != tx.issuer.node_id:
            raise MalformedPayloadError(
                f"transfer sender {payload.sender.hex()[:8]} is not the "
                f"issuer {tx.issuer.short_id}"
            )
        existing = self.spent_tx(payload.sender, payload.sequence)
        if existing is not None and existing != tx.tx_hash:
            self.conflicts.append(
                ConflictRecord(
                    sender=payload.sender,
                    sequence=payload.sequence,
                    accepted_tx=existing,
                    rejected_tx=tx.tx_hash,
                    detected_at=now,
                )
            )
            raise DoubleSpendError(
                f"sequence {payload.sequence} of {payload.sender.hex()[:8]} "
                f"already spent by {existing.hex()[:8]}"
            )
        if self.balance(payload.sender) < payload.amount:
            raise InsufficientFundsError(
                f"{payload.sender.hex()[:8]} has {self.balance(payload.sender)}, "
                f"needs {payload.amount}"
            )
        return payload

    def apply(self, tx: Transaction, *, now: float = 0.0) -> TransferPayload:
        """Validate then mutate balances for an attached transfer."""
        payload = self.validate(tx, now=now)
        self._apply_effect(tx.tx_hash, payload)
        return payload

    def _apply_effect(self, tx_hash: bytes, payload: TransferPayload) -> None:
        self._balances[payload.sender] = self.balance(payload.sender) - payload.amount
        self._balances[payload.recipient] = (
            self.balance(payload.recipient) + payload.amount
        )
        self._spent.setdefault(payload.sender, {})[payload.sequence] = tx_hash
        cached = self._next_sequence.get(payload.sender)
        if cached is not None and payload.sequence >= cached:
            self._next_sequence[payload.sender] = payload.sequence + 1
        self._applied[tx_hash] = payload

    def _reverse_effect(self, tx_hash: bytes) -> None:
        payload = self._applied.pop(tx_hash)
        self._balances[payload.sender] = self.balance(payload.sender) + payload.amount
        self._balances[payload.recipient] = (
            self.balance(payload.recipient) - payload.amount
        )
        del self._spent[payload.sender][payload.sequence]
        # The reversed slot may have been the highest: recompute lazily.
        self._next_sequence.pop(payload.sender, None)

    def apply_or_conflict(self, tx: Transaction, *, now: float = 0.0) -> str:
        """Asynchronous-consensus application: never refuses the DAG.

        Conflicting transfers are allowed to *exist* in the tangle (so
        replicas converge structurally — the paper: double spends are
        "detected and canceled by asynchronous consensus mechanism");
        only their ledger effect is arbitrated.  The arbiter is
        deterministic: among transactions competing for one
        (sender, sequence) slot, the **lowest transaction hash wins**,
        so every replica settles on the same balances regardless of
        arrival order.

        Returns one of:

        * ``"applied"`` — effect applied normally;
        * ``"duplicate"`` — this exact transaction was already applied;
        * ``"conflict-rejected"`` — a conflict; the incumbent keeps the
          slot (it has the lower hash);
        * ``"conflict-replaced"`` — a conflict; this transaction has the
          lower hash, the incumbent's effect was reversed;
        * ``"insufficient"`` — no conflict, but the sender cannot cover
          the amount; the transfer is void (no effect).

        A lower-hash challenger that the sender could not fund after
        reversing the incumbent is rejected (the incumbent stands):
        balances must never go negative.  In that corner the arbitration
        is funding-constrained rather than purely hash-ordered.
        """
        payload = self.decode(tx)
        if payload.sender != tx.issuer.node_id:
            raise MalformedPayloadError(
                f"transfer sender {payload.sender.hex()[:8]} is not the "
                f"issuer {tx.issuer.short_id}"
            )
        existing = self.spent_tx(payload.sender, payload.sequence)
        if existing == tx.tx_hash:
            return "duplicate"
        if existing is None:
            if self.balance(payload.sender) < payload.amount:
                return "insufficient"
            self._apply_effect(tx.tx_hash, payload)
            return "applied"
        self.conflicts.append(
            ConflictRecord(
                sender=payload.sender,
                sequence=payload.sequence,
                accepted_tx=min(existing, tx.tx_hash),
                rejected_tx=max(existing, tx.tx_hash),
                detected_at=now,
            )
        )
        if tx.tx_hash < existing:
            incumbent_payload = self._applied[existing]
            self._reverse_effect(existing)
            if self.balance(payload.sender) < payload.amount:
                # Challenger unfundable: reinstate the incumbent.
                self._apply_effect(existing, incumbent_payload)
                return "conflict-rejected"
            self._apply_effect(tx.tx_hash, payload)
            return "conflict-replaced"
        return "conflict-rejected"

    def validator(self, tangle, tx: Transaction) -> None:
        """Adapter matching the :data:`~repro.tangle.tangle.Validator`
        signature; only transfer transactions are inspected."""
        if tx.kind == TransactionKind.TRANSFER:
            self.validate(tx)

    def credit(self, account: bytes, amount: int) -> None:
        """Mint *amount* tokens to *account* (genesis allocation helper)."""
        if amount <= 0:
            raise ValueError("credit amount must be positive")
        self._balances[account] = self.balance(account) + amount

    # -- state transfer ----------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Serialisable balances and spent-slot map, for node snapshots."""
        return {
            "balances": {
                account.hex(): amount
                for account, amount in sorted(self._balances.items())
            },
            "spent": {
                sender.hex(): {
                    str(sequence): tx_hash.hex()
                    for sequence, tx_hash in slots.items()
                }
                for sender, slots in self._spent.items()
            },
        }

    def rehydrate(self, transactions: Iterable[Transaction]) -> int:
        """Repopulate reversal payloads from retained transfers.

        :meth:`import_state` cannot carry the ``_applied`` payload map
        (the export format is balances + spent slots only), so a
        restored ledger would be unable to *reverse* a pre-restore
        incumbent when a lower-hash challenger arrives afterwards —
        conflict arbitration spanning the restore boundary would crash
        instead of replaying identically.  Snapshot adopters call this
        with the retained transactions; each transfer that still owns
        its (sender, sequence) slot gets its payload re-decoded.
        Returns how many payloads were rehydrated.
        """
        count = 0
        for tx in transactions:
            if tx.kind != TransactionKind.TRANSFER:
                continue
            payload = self.decode(tx)
            if self._spent.get(payload.sender, {}).get(payload.sequence) \
                    == tx.tx_hash:
                self._applied[tx.tx_hash] = payload
                count += 1
        return count

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`export_state` output (replaces current state).

        Conflict records are not carried: a restored node arbitrates
        only conflicts it sees from then on.  Reversal payloads are
        rebuilt separately via :meth:`rehydrate` from the retained
        tangle region.
        """
        try:
            balances = {
                bytes.fromhex(account): int(amount)
                for account, amount in state["balances"].items()
            }
            spent = {
                bytes.fromhex(sender): {
                    int(sequence): bytes.fromhex(tx_hash)
                    for sequence, tx_hash in slots.items()
                }
                for sender, slots in state["spent"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise MalformedPayloadError(f"bad ledger state: {exc}") from exc
        self._balances = balances
        self._spent = spent
        self._next_sequence = {}
        self._applied = {}
        self.conflicts = []
