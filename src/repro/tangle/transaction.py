"""Tangle transactions: the vertices of the DAG ledger.

In a DAG-structured blockchain "each transaction is an individual node
linked in the distributed ledger" (Section II-B).  A transaction here
carries:

* the issuer's :class:`~repro.crypto.keys.PublicIdentity`;
* an opaque *payload* plus a *kind* tag (``data``, ``transfer``,
  ``acl``, ``genesis``) that higher layers interpret;
* the hashes of the two approved transactions (*branch* and *trunk* in
  IOTA terminology);
* the PoW *nonce* and *difficulty* solving Eqn. 6;
* an Ed25519 *signature* over the transaction hash.

Construction order matters and is enforced by :meth:`Transaction.create`:
body → PoW challenge → nonce → transaction hash → signature.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..crypto.hashing import DIGEST_SIZE, hash_concat
from ..crypto.keys import KeyPair, PublicIdentity
from ..pow import hashcash

__all__ = [
    "ZERO_HASH",
    "TransactionKind",
    "Transaction",
    "TransactionDecodeCache",
    "GENESIS_KIND",
    "DEFAULT_DECODE_CACHE_SIZE",
]

ZERO_HASH = b"\x00" * DIGEST_SIZE
"""Parent reference used by the genesis transaction."""

GENESIS_KIND = "genesis"


class TransactionKind:
    """Well-known payload kinds (free-form strings are also allowed)."""

    GENESIS = GENESIS_KIND
    DATA = "data"
    TRANSFER = "transfer"
    ACL = "acl"


@dataclass(frozen=True)
class Transaction:
    """An immutable, signed, PoW-sealed tangle transaction."""

    kind: str
    issuer: PublicIdentity
    payload: bytes
    timestamp: float
    branch: bytes
    trunk: bytes
    difficulty: int
    nonce: int
    signature: bytes

    def __post_init__(self):
        if len(self.branch) != DIGEST_SIZE or len(self.trunk) != DIGEST_SIZE:
            raise ValueError("branch/trunk must be 32-byte transaction hashes")
        if not self.kind:
            raise ValueError("transaction kind must be non-empty")
        if self.difficulty < hashcash.MIN_DIFFICULTY:
            raise ValueError(f"difficulty must be >= {hashcash.MIN_DIFFICULTY}")
        if not 0 <= self.nonce < 2 ** 64:
            raise ValueError("nonce out of 64-bit range")

    # -- digests ---------------------------------------------------------
    #
    # The instance is immutable, so every derived value is computed at
    # most once and memoized into the instance dict (``object.__setattr__``
    # sidesteps the frozen-dataclass guard).  tx_hash/to_bytes sit on the
    # per-hop gossip path: without the memo every relay re-hashes and
    # re-encodes the same transaction at every node it crosses.

    def _memo(self, slot: str, value):
        object.__setattr__(self, slot, value)
        return value

    @property
    def body_digest(self) -> bytes:
        """Digest of everything the PoW and signature must commit to,
        except the nonce itself."""
        cached = self.__dict__.get("_body_digest")
        if cached is not None:
            return cached
        return self._memo("_body_digest", hash_concat(
            self.kind.encode(),
            self.issuer.to_bytes(),
            self.payload,
            struct.pack(">d", self.timestamp),
            self.branch,
            self.trunk,
            struct.pack(">H", self.difficulty),
        ))

    @property
    def pow_challenge(self) -> bytes:
        """The Eqn. 6 challenge: both parents plus the body digest."""
        cached = self.__dict__.get("_pow_challenge")
        if cached is not None:
            return cached
        return self._memo("_pow_challenge", hashcash.pow_challenge(
            self.branch, self.trunk, self.body_digest))

    @property
    def tx_hash(self) -> bytes:
        """The DAG vertex identifier: body digest bound to the nonce."""
        cached = self.__dict__.get("_tx_hash")
        if cached is not None:
            return cached
        return self._memo("_tx_hash", hash_concat(
            self.body_digest, self.nonce.to_bytes(8, "big")))

    @property
    def full_digest(self) -> bytes:
        """Digest committing to the *entire* instance, signature included.

        ``tx_hash`` does not commit to the signature (the signature is
        computed *over* the hash), so two instances with identical
        content but different signature bytes share a ``tx_hash``.
        Anything that must distinguish byte-exact instances — e.g. the
        :class:`~repro.tangle.validation.VerificationCache`, where a
        relayed copy with a forged signature must not inherit the
        original's verification — keys on this digest instead.
        """
        cached = self.__dict__.get("_full_digest")
        if cached is not None:
            return cached
        return self._memo("_full_digest", hash_concat(
            self.tx_hash, self.signature))

    @property
    def short_hash(self) -> str:
        return self.tx_hash.hex()[:8]

    @property
    def is_genesis(self) -> bool:
        return self.kind == GENESIS_KIND

    # -- verification ----------------------------------------------------

    def verify_pow(self) -> bool:
        """Check the nonce satisfies the declared difficulty."""
        return hashcash.verify(self.pow_challenge, self.nonce, self.difficulty)

    def verify_signature(self) -> bool:
        """Check the issuer's signature over the transaction hash."""
        return self.issuer.verify(self.tx_hash, self.signature)

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, keypair: KeyPair, *, kind: str, payload: bytes,
               timestamp: float, branch: bytes, trunk: bytes,
               difficulty: int, nonce: Optional[int] = None) -> "Transaction":
        """Build, PoW-seal and sign a transaction.

        When *nonce* is None the PoW is actually solved here (convenient
        for tests and small examples); system code that must account for
        solve time uses :class:`~repro.pow.engine.PowEngine` and passes
        the found nonce in.
        """
        unsigned = cls(
            kind=kind,
            issuer=keypair.public,
            payload=bytes(payload),
            timestamp=float(timestamp),
            branch=bytes(branch),
            trunk=bytes(trunk),
            difficulty=int(difficulty),
            nonce=0,
            signature=b"",
        )
        if nonce is None:
            proof = hashcash.solve(unsigned.pow_challenge, difficulty)
            nonce = proof.nonce
        sealed = cls(
            kind=unsigned.kind,
            issuer=unsigned.issuer,
            payload=unsigned.payload,
            timestamp=unsigned.timestamp,
            branch=unsigned.branch,
            trunk=unsigned.trunk,
            difficulty=unsigned.difficulty,
            nonce=int(nonce),
            signature=b"",
        )
        signature = keypair.sign(sealed.tx_hash)
        return cls(
            kind=sealed.kind,
            issuer=sealed.issuer,
            payload=sealed.payload,
            timestamp=sealed.timestamp,
            branch=sealed.branch,
            trunk=sealed.trunk,
            difficulty=sealed.difficulty,
            nonce=sealed.nonce,
            signature=signature,
        )

    @classmethod
    def create_genesis(cls, keypair: KeyPair, *, payload: bytes = b"",
                       timestamp: float = 0.0) -> "Transaction":
        """Create the genesis transaction (zero parents, difficulty 1).

        The paper hard-codes the manager's public key "into genesis
        config of blockchain"; callers put that configuration in
        *payload* (see :mod:`repro.core.acl`).
        """
        return cls.create(
            keypair,
            kind=GENESIS_KIND,
            payload=payload,
            timestamp=timestamp,
            branch=ZERO_HASH,
            trunk=ZERO_HASH,
            difficulty=hashcash.MIN_DIFFICULTY,
        )

    # -- serialisation ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Length-prefixed binary encoding (round-trips exactly).

        Memoized: gossip re-encodes the identical immutable transaction
        on every relay hop, so the bytes are built once and shared.
        """
        cached = self.__dict__.get("_encoded")
        if cached is not None:
            return cached
        kind_bytes = self.kind.encode()
        parts = [
            struct.pack(">H", len(kind_bytes)), kind_bytes,
            self.issuer.to_bytes(),
            struct.pack(">I", len(self.payload)), self.payload,
            struct.pack(">d", self.timestamp),
            self.branch,
            self.trunk,
            struct.pack(">H", self.difficulty),
            struct.pack(">Q", self.nonce),
            struct.pack(">H", len(self.signature)), self.signature,
        ]
        return self._memo("_encoded", b"".join(parts))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Transaction":
        """Decode :meth:`to_bytes` output; raises ``ValueError`` on junk."""
        try:
            offset = 0
            (kind_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            kind = data[offset: offset + kind_len].decode()
            offset += kind_len
            issuer = PublicIdentity.from_bytes(data[offset: offset + 64])
            offset += 64
            (payload_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            payload = data[offset: offset + payload_len]
            if len(payload) != payload_len:
                raise ValueError("truncated payload")
            offset += payload_len
            (timestamp,) = struct.unpack_from(">d", data, offset)
            offset += 8
            branch = data[offset: offset + DIGEST_SIZE]
            offset += DIGEST_SIZE
            trunk = data[offset: offset + DIGEST_SIZE]
            offset += DIGEST_SIZE
            (difficulty,) = struct.unpack_from(">H", data, offset)
            offset += 2
            (nonce,) = struct.unpack_from(">Q", data, offset)
            offset += 8
            (sig_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            signature = data[offset: offset + sig_len]
            if len(signature) != sig_len or offset + sig_len != len(data):
                raise ValueError("truncated or oversized encoding")
        except (struct.error, UnicodeDecodeError) as exc:
            raise ValueError(f"malformed transaction encoding: {exc}") from exc
        tx = cls(
            kind=kind,
            issuer=issuer,
            payload=payload,
            timestamp=timestamp,
            branch=branch,
            trunk=trunk,
            difficulty=difficulty,
            nonce=nonce,
            signature=signature,
        )
        # The exact encoding is in hand: seed the to_bytes() memo so a
        # decoded transaction never pays to re-encode for the next hop.
        tx._memo("_encoded", bytes(data))
        return tx

    def __repr__(self) -> str:
        return (
            f"Transaction({self.kind!r}, {self.short_hash}, "
            f"issuer={self.issuer.short_id}, t={self.timestamp:.3f})"
        )


DEFAULT_DECODE_CACHE_SIZE = 65536
"""Default :class:`TransactionDecodeCache` capacity (entries)."""


class TransactionDecodeCache:
    """Bounded LRU mapping encoded bytes to a shared decoded instance.

    In a simulated deployment the *same* bytes object crosses every
    wire, so gossip delivers one transaction to dozens of nodes that
    each call :meth:`Transaction.from_bytes` on identical input.  The
    cache parses once and hands every later hop the same immutable
    ``Transaction`` — which also means the hash/encoding memos on that
    instance are shared, compounding the saving.

    A junk input raises ``ValueError`` exactly like ``from_bytes`` and
    is never cached.

    Args:
        max_size: LRU capacity (evicts least-recently decoded).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_cache_decode_*`` hit/miss counters.
    """

    def __init__(self, max_size: int = DEFAULT_DECODE_CACHE_SIZE, *,
                 telemetry=None):
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        # Imported here, not at module top: repro.telemetry is a heavier
        # import than this leaf module's other dependencies.
        from ..telemetry.registry import coerce_registry

        self.max_size = max_size
        self._decoded: "OrderedDict[bytes, Transaction]" = OrderedDict()
        self.evictions = 0
        # Plain-int mirrors of the telemetry counters: health digests
        # must work (and stay byte-deterministic) with telemetry off.
        self.hits = 0
        self.misses = 0
        telemetry = coerce_registry(telemetry)
        self._m_hit = telemetry.counter(
            "repro_cache_decode_hits_total",
            "Transaction decodes served from the shared decode LRU")
        self._m_miss = telemetry.counter(
            "repro_cache_decode_misses_total",
            "Transaction decodes that actually parsed bytes")

    def __len__(self) -> int:
        return len(self._decoded)

    def decode(self, data: bytes) -> Transaction:
        """:meth:`Transaction.from_bytes`, memoized on the exact bytes."""
        decoded = self._decoded
        tx = decoded.get(data)
        if tx is not None:
            decoded.move_to_end(data)
            self.hits += 1
            self._m_hit.inc()
            return tx
        self.misses += 1
        self._m_miss.inc()
        tx = Transaction.from_bytes(data)
        decoded[data] = tx
        if len(decoded) > self.max_size:
            decoded.popitem(last=False)
            self.evictions += 1
        return tx
