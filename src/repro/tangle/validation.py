"""Transaction validation hooks and misbehaviour detectors.

The tangle itself only enforces structure (known parents, no
duplicates).  Everything else composes in as validators:

* :func:`crypto_validator` — PoW and signature verification plus a
  minimum-difficulty floor (what every full node runs);
* :class:`VerificationCache` — a bounded LRU remembering which
  byte-exact transaction instances (keyed by the signature-committing
  ``full_digest``) already passed signature+PoW verification, so a
  full node (or a deployment of full nodes sharing one cache) pays the
  Ed25519 verify and the PoW hash exactly once per transaction instead
  of once per hop/duplicate;
* :func:`timestamp_validator` — reject far-future timestamps;
* :func:`detect_lazy_approval` — classify an attach as lazy-tips
  misbehaviour, the detector feeding the credit mechanism's αl penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..telemetry.registry import coerce_registry
from .errors import (
    InvalidPowError,
    InvalidSignatureError,
    SelfApprovalError,
    TimestampError,
)
from .tangle import AttachResult, Tangle, Validator
from .transaction import Transaction

__all__ = [
    "crypto_validator",
    "timestamp_validator",
    "detect_lazy_approval",
    "VerificationCache",
    "PreverifiedSet",
    "DEFAULT_MAX_PARENT_AGE",
    "DEFAULT_VERIFY_CACHE_SIZE",
    "DEFAULT_PREVERIFIED_SIZE",
]

DEFAULT_MAX_PARENT_AGE = 30.0
"""Parents older than this (seconds) mark an approval as lazy.  Matches
the paper's ΔT=30 s activity window."""

DEFAULT_VERIFY_CACHE_SIZE = 65536
"""Default capacity of a :class:`VerificationCache`: 64k 32-byte
digests (~4 MiB with LRU bookkeeping) comfortably covers the in-flight
window of a multi-hundred-node deployment."""


class VerificationCache:
    """Bounded LRU of transaction instances that passed crypto checks.

    Entries are keyed by :attr:`~repro.tangle.transaction.Transaction.
    full_digest`, which commits to the signature bytes — *not* by
    ``tx_hash``, which does not (the signature is computed over the
    hash).  Keying by hash would let a relayed copy with the same
    content but a corrupted or forged signature inherit the original's
    verification; with the full digest, only byte-identical instances
    skip re-verification, and verification of a byte-identical immutable
    instance is deterministic, so a positive outcome cached once is
    sound forever.

    Each entry also records whether PoW was *actually* verified when it
    was confirmed.  A validator that enforces PoW only hits on
    PoW-verified entries, so sharing one cache between enforcing and
    ``allow_simulated_pow`` validators never lets a simulation-grade
    confirmation bypass an enforcing node's nonce check (signature-only
    entries are upgraded in place once an enforcing node verifies the
    nonce).

    Only the *positive* outcome is cached: failures raise and the
    transaction is dropped, so there is no repeat cost to save, and
    caching them would let one collision poison rejection.

    The cache is safe to share across the full nodes of one simulated
    deployment — that is the intended topology (see
    :meth:`~repro.core.biot.BIoTSystem.build`): the first node to verify
    a gossiped transaction pays, every later hop hits.

    Args:
        max_size: LRU capacity (evicts least-recently confirmed).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_cache_verify_*`` hit/miss counters.
    """

    def __init__(self, max_size: int = DEFAULT_VERIFY_CACHE_SIZE, *,
                 telemetry=None):
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.max_size = max_size
        # key (full digest) -> True when PoW was verified for the entry,
        # False when only the signature was (allow_simulated_pow).
        self._verified: "OrderedDict[bytes, bool]" = OrderedDict()
        self.evictions = 0
        # Plain-int mirrors of the telemetry counters: health digests
        # must work (and stay byte-deterministic) with telemetry off.
        self.hits = 0
        self.misses = 0
        telemetry = coerce_registry(telemetry)
        self._m_hit = telemetry.counter(
            "repro_cache_verify_hits_total",
            "Signature+PoW verifications skipped via the verified-set LRU")
        self._m_miss = telemetry.counter(
            "repro_cache_verify_misses_total",
            "Signature+PoW verifications actually performed")

    def __len__(self) -> int:
        return len(self._verified)

    def __contains__(self, key: bytes) -> bool:
        return key in self._verified

    def check(self, key: bytes, *, require_pow: bool = True) -> bool:
        """True when *key* already verified to the required level
        (refreshes its LRU slot and counts a hit); False counts a miss.

        With *require_pow* a signature-only entry (confirmed under
        ``allow_simulated_pow``) is a miss: the caller must verify the
        nonce itself before trusting the instance.
        """
        verified = self._verified
        pow_verified = verified.get(key)
        if pow_verified is not None and (pow_verified or not require_pow):
            verified.move_to_end(key)
            self.hits += 1
            self._m_hit.inc()
            return True
        self.misses += 1
        self._m_miss.inc()
        return False

    def confirm(self, key: bytes, *, pow_verified: bool = True) -> None:
        """Record that *key* passed verification.

        *pow_verified* says whether the nonce was cryptographically
        checked; a signature-only confirmation never downgrades an
        existing PoW-verified entry.
        """
        verified = self._verified
        verified[key] = pow_verified or verified.get(key, False)
        verified.move_to_end(key)
        if len(verified) > self.max_size:
            verified.popitem(last=False)
            self.evictions += 1


DEFAULT_PREVERIFIED_SIZE = 8192
"""Default capacity of a :class:`PreverifiedSet`: comfortably larger
than any single sync/parent/gossip batch plus its parked descendants."""


class PreverifiedSet:
    """Bounded set of ``full_digest`` values whose *signatures* were
    already checked by a batch verifier ahead of attach.

    A batch-ingesting node verifies a burst's signatures in one
    random-linear-combination equation, then attaches the transactions
    one by one; this set carries the positive verdicts from the batch
    step to the per-transaction :func:`crypto_validator` run.  Entries
    are consumed on use (each covers exactly one attach) and evicted
    FIFO past *max_size* — an entry evicted early (its transaction
    parked for a long time, or rejected for non-signature reasons)
    just means the signature is re-verified individually, never that
    verification is skipped.

    Only *signature* verdicts live here: PoW is per-instance cheap (one
    double-SHA256) and stays in the validator.
    """

    def __init__(self, max_size: int = DEFAULT_PREVERIFIED_SIZE):
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.max_size = max_size
        self._digests: "OrderedDict[bytes, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._digests)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._digests

    def add(self, digest: bytes) -> None:
        self._digests[digest] = None
        if len(self._digests) > self.max_size:
            self._digests.popitem(last=False)

    def consume(self, digest: bytes) -> bool:
        """True (and the entry is removed) when *digest* was batch-
        verified; False when it must be verified individually."""
        return self._digests.pop(digest, False) is None


def crypto_validator(*, min_difficulty: int = 1,
                     allow_simulated_pow: bool = False,
                     cache: Optional[VerificationCache] = None,
                     backend=None,
                     preverified: Optional[PreverifiedSet] = None) -> Validator:
    """Build a validator enforcing PoW and signature correctness.

    Args:
        min_difficulty: network-wide difficulty floor; transactions
            declaring less are rejected regardless of their nonce.
        allow_simulated_pow: pure-simulation experiments sample attempt
            counts instead of grinding nonces, so their nonces do not
            verify; set True only inside such experiments.
        cache: optional :class:`VerificationCache`; on a hit the
            expensive sig+PoW work is skipped.  Entries are keyed by
            ``tx.full_digest`` (commits to the signature) and tagged
            with whether PoW was enforced, so sharing one cache across
            validators with different ``allow_simulated_pow`` settings
            stays sound.  The difficulty floor and the self-approval
            check still run per call — they are O(1) comparisons and
            the floor is validator-local policy, not a property of the
            transaction.
        backend: optional :class:`~repro.crypto.accel.CryptoBackend`
            used for the signature check; None keeps the node's
            built-in reference path (``tx.verify_signature()``).  All
            registered backends accept exactly the same signatures, so
            this choice never changes a verdict, only its cost.
        preverified: optional :class:`PreverifiedSet` carrying positive
            batch-verification verdicts; a transaction found there
            skips the individual signature check (the entry is consumed).
    """

    def verify_signature(tx: Transaction) -> bool:
        if preverified is not None and preverified.consume(tx.full_digest):
            return True
        if backend is not None:
            return backend.verify(tx.issuer.sign_public, tx.tx_hash,
                                  tx.signature)
        return tx.verify_signature()

    def validate(tangle: Tangle, tx: Transaction) -> None:
        if tx.difficulty < min_difficulty:
            raise InvalidPowError(
                f"{tx.short_hash} declares difficulty {tx.difficulty} "
                f"below the floor {min_difficulty}"
            )
        enforce_pow = not allow_simulated_pow
        if cache is None or not cache.check(tx.full_digest,
                                            require_pow=enforce_pow):
            if enforce_pow and not tx.verify_pow():
                raise InvalidPowError(f"{tx.short_hash} nonce fails difficulty "
                                      f"{tx.difficulty}")
            if not verify_signature(tx):
                raise InvalidSignatureError(f"{tx.short_hash} signature invalid")
            if cache is not None:
                cache.confirm(tx.full_digest, pow_verified=enforce_pow)
        tx_hash = tx.tx_hash
        if tx.branch == tx_hash or tx.trunk == tx_hash:
            raise SelfApprovalError(f"{tx.short_hash} approves itself")

    return validate


def timestamp_validator(*, max_future_skew: float = 5.0) -> Validator:
    """Reject transactions whose timestamp precedes their parents or
    leads the newest known transaction by more than *max_future_skew*.

    DAG clocks are loose (arrival time is authoritative), but a sanity
    window blocks trivially forged histories.
    """

    def validate(tangle: Tangle, tx: Transaction) -> None:
        # O(log n) amortised via the tip-pool index, not an O(tips) scan.
        newest = tangle.newest_tip_arrival()
        if tx.timestamp > newest + max_future_skew:
            raise TimestampError(
                f"{tx.short_hash} timestamp {tx.timestamp:.3f} is more than "
                f"{max_future_skew}s ahead of the tangle ({newest:.3f})"
            )
        for parent in (tx.branch, tx.trunk):
            if parent not in tangle:
                continue  # pruned entry point: no content to compare
            parent_tx = tangle.get(parent)
            if tx.timestamp < parent_tx.timestamp:
                raise TimestampError(
                    f"{tx.short_hash} predates its parent {parent_tx.short_hash}"
                )

    return validate


def detect_lazy_approval(result: AttachResult, *,
                         max_parent_age: float = DEFAULT_MAX_PARENT_AGE) -> bool:
    """Classify one attach as lazy-tips misbehaviour.

    The paper's lazy node "could always verify a fixed pair of very old
    transactions, while not contributing to the verification of more
    recent transactions" — the detector is therefore *age-based*: an
    approval is lazy when an approved parent is older than
    *max_parent_age* seconds at attach time.

    It deliberately does NOT flag approvals of transactions that merely
    stopped being tips moments ago: under concurrent honest traffic two
    devices regularly pick the same fresh tips (the second one's parents
    are no longer tips on arrival), and punishing that would penalise
    honest concurrency.  Freshly approved parents are young, so the age
    test is immune to that race.
    """
    return any(age > max_parent_age for age in result.parent_ages)
