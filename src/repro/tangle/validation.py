"""Transaction validation hooks and misbehaviour detectors.

The tangle itself only enforces structure (known parents, no
duplicates).  Everything else composes in as validators:

* :func:`crypto_validator` — PoW and signature verification plus a
  minimum-difficulty floor (what every full node runs);
* :class:`VerificationCache` — a bounded LRU remembering which
  transaction hashes already passed signature+PoW verification, so a
  full node (or a deployment of full nodes sharing one cache) pays the
  Ed25519 verify and the PoW hash exactly once per transaction instead
  of once per hop/duplicate;
* :func:`timestamp_validator` — reject far-future timestamps;
* :func:`detect_lazy_approval` — classify an attach as lazy-tips
  misbehaviour, the detector feeding the credit mechanism's αl penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..telemetry.registry import coerce_registry
from .errors import (
    InvalidPowError,
    InvalidSignatureError,
    SelfApprovalError,
    TimestampError,
)
from .tangle import AttachResult, Tangle, Validator
from .transaction import Transaction

__all__ = [
    "crypto_validator",
    "timestamp_validator",
    "detect_lazy_approval",
    "VerificationCache",
    "DEFAULT_MAX_PARENT_AGE",
    "DEFAULT_VERIFY_CACHE_SIZE",
]

DEFAULT_MAX_PARENT_AGE = 30.0
"""Parents older than this (seconds) mark an approval as lazy.  Matches
the paper's ΔT=30 s activity window."""

DEFAULT_VERIFY_CACHE_SIZE = 65536
"""Default capacity of a :class:`VerificationCache`: 64k 32-byte hashes
(~4 MiB with LRU bookkeeping) comfortably covers the in-flight window of
a multi-hundred-node deployment."""


class VerificationCache:
    """Bounded LRU of transaction hashes that passed sig+PoW checks.

    Only the *positive* outcome is cached: verification of an immutable
    transaction is deterministic (the hash commits to body, nonce and
    issuer), so a hash that verified once verifies always.  Failures are
    never cached — they raise and the transaction is dropped, so there
    is no repeat cost to save, and caching them would let one hash
    collision poison rejection.

    The cache is safe to share across the full nodes of one simulated
    deployment — that is the intended topology (see
    :meth:`~repro.core.biot.BIoTSystem.build`): the first node to verify
    a gossiped transaction pays, every later hop hits.

    Args:
        max_size: LRU capacity (evicts least-recently confirmed).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_cache_verify_*`` hit/miss counters.
    """

    def __init__(self, max_size: int = DEFAULT_VERIFY_CACHE_SIZE, *,
                 telemetry=None):
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.max_size = max_size
        self._verified: "OrderedDict[bytes, None]" = OrderedDict()
        self.evictions = 0
        telemetry = coerce_registry(telemetry)
        self._m_hit = telemetry.counter(
            "repro_cache_verify_hits_total",
            "Signature+PoW verifications skipped via the verified-set LRU")
        self._m_miss = telemetry.counter(
            "repro_cache_verify_misses_total",
            "Signature+PoW verifications actually performed")

    def __len__(self) -> int:
        return len(self._verified)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._verified

    def check(self, tx_hash: bytes) -> bool:
        """True when *tx_hash* already verified (refreshes its LRU slot
        and counts a hit); False counts a miss."""
        verified = self._verified
        if tx_hash in verified:
            verified.move_to_end(tx_hash)
            self._m_hit.inc()
            return True
        self._m_miss.inc()
        return False

    def confirm(self, tx_hash: bytes) -> None:
        """Record that *tx_hash* passed signature+PoW verification."""
        verified = self._verified
        verified[tx_hash] = None
        verified.move_to_end(tx_hash)
        if len(verified) > self.max_size:
            verified.popitem(last=False)
            self.evictions += 1


def crypto_validator(*, min_difficulty: int = 1,
                     allow_simulated_pow: bool = False,
                     cache: Optional[VerificationCache] = None) -> Validator:
    """Build a validator enforcing PoW and signature correctness.

    Args:
        min_difficulty: network-wide difficulty floor; transactions
            declaring less are rejected regardless of their nonce.
        allow_simulated_pow: pure-simulation experiments sample attempt
            counts instead of grinding nonces, so their nonces do not
            verify; set True only inside such experiments.
        cache: optional :class:`VerificationCache`; on a hit the
            expensive sig+PoW work is skipped.  The difficulty floor and
            the self-approval check still run per call — they are O(1)
            comparisons and the floor is validator-local policy, not a
            property of the transaction.
    """

    def validate(tangle: Tangle, tx: Transaction) -> None:
        if tx.difficulty < min_difficulty:
            raise InvalidPowError(
                f"{tx.short_hash} declares difficulty {tx.difficulty} "
                f"below the floor {min_difficulty}"
            )
        tx_hash = tx.tx_hash
        if cache is None or not cache.check(tx_hash):
            if not allow_simulated_pow and not tx.verify_pow():
                raise InvalidPowError(f"{tx.short_hash} nonce fails difficulty "
                                      f"{tx.difficulty}")
            if not tx.verify_signature():
                raise InvalidSignatureError(f"{tx.short_hash} signature invalid")
            if cache is not None:
                cache.confirm(tx_hash)
        if tx.branch == tx_hash or tx.trunk == tx_hash:
            raise SelfApprovalError(f"{tx.short_hash} approves itself")

    return validate


def timestamp_validator(*, max_future_skew: float = 5.0) -> Validator:
    """Reject transactions whose timestamp precedes their parents or
    leads the newest known transaction by more than *max_future_skew*.

    DAG clocks are loose (arrival time is authoritative), but a sanity
    window blocks trivially forged histories.
    """

    def validate(tangle: Tangle, tx: Transaction) -> None:
        # O(log n) amortised via the tip-pool index, not an O(tips) scan.
        newest = tangle.newest_tip_arrival()
        if tx.timestamp > newest + max_future_skew:
            raise TimestampError(
                f"{tx.short_hash} timestamp {tx.timestamp:.3f} is more than "
                f"{max_future_skew}s ahead of the tangle ({newest:.3f})"
            )
        for parent in (tx.branch, tx.trunk):
            if parent not in tangle:
                continue  # pruned entry point: no content to compare
            parent_tx = tangle.get(parent)
            if tx.timestamp < parent_tx.timestamp:
                raise TimestampError(
                    f"{tx.short_hash} predates its parent {parent_tx.short_hash}"
                )

    return validate


def detect_lazy_approval(result: AttachResult, *,
                         max_parent_age: float = DEFAULT_MAX_PARENT_AGE) -> bool:
    """Classify one attach as lazy-tips misbehaviour.

    The paper's lazy node "could always verify a fixed pair of very old
    transactions, while not contributing to the verification of more
    recent transactions" — the detector is therefore *age-based*: an
    approval is lazy when an approved parent is older than
    *max_parent_age* seconds at attach time.

    It deliberately does NOT flag approvals of transactions that merely
    stopped being tips moments ago: under concurrent honest traffic two
    devices regularly pick the same fresh tips (the second one's parents
    are no longer tips on arrival), and punishing that would penalise
    honest concurrency.  Freshly approved parents are young, so the age
    test is immune to that race.
    """
    return any(age > max_parent_age for age in result.parent_ages)
