"""Transaction validation hooks and misbehaviour detectors.

The tangle itself only enforces structure (known parents, no
duplicates).  Everything else composes in as validators:

* :func:`crypto_validator` — PoW and signature verification plus a
  minimum-difficulty floor (what every full node runs);
* :func:`timestamp_validator` — reject far-future timestamps;
* :func:`detect_lazy_approval` — classify an attach as lazy-tips
  misbehaviour, the detector feeding the credit mechanism's αl penalty.
"""

from __future__ import annotations

from .errors import (
    InvalidPowError,
    InvalidSignatureError,
    SelfApprovalError,
    TimestampError,
)
from .tangle import AttachResult, Tangle, Validator
from .transaction import Transaction

__all__ = [
    "crypto_validator",
    "timestamp_validator",
    "detect_lazy_approval",
    "DEFAULT_MAX_PARENT_AGE",
]

DEFAULT_MAX_PARENT_AGE = 30.0
"""Parents older than this (seconds) mark an approval as lazy.  Matches
the paper's ΔT=30 s activity window."""


def crypto_validator(*, min_difficulty: int = 1,
                     allow_simulated_pow: bool = False) -> Validator:
    """Build a validator enforcing PoW and signature correctness.

    Args:
        min_difficulty: network-wide difficulty floor; transactions
            declaring less are rejected regardless of their nonce.
        allow_simulated_pow: pure-simulation experiments sample attempt
            counts instead of grinding nonces, so their nonces do not
            verify; set True only inside such experiments.
    """

    def validate(tangle: Tangle, tx: Transaction) -> None:
        if tx.difficulty < min_difficulty:
            raise InvalidPowError(
                f"{tx.short_hash} declares difficulty {tx.difficulty} "
                f"below the floor {min_difficulty}"
            )
        if not allow_simulated_pow and not tx.verify_pow():
            raise InvalidPowError(f"{tx.short_hash} nonce fails difficulty "
                                  f"{tx.difficulty}")
        if not tx.verify_signature():
            raise InvalidSignatureError(f"{tx.short_hash} signature invalid")
        if tx.branch == tx.tx_hash or tx.trunk == tx.tx_hash:
            raise SelfApprovalError(f"{tx.short_hash} approves itself")

    return validate


def timestamp_validator(*, max_future_skew: float = 5.0) -> Validator:
    """Reject transactions whose timestamp precedes their parents or
    leads the newest known transaction by more than *max_future_skew*.

    DAG clocks are loose (arrival time is authoritative), but a sanity
    window blocks trivially forged histories.
    """

    def validate(tangle: Tangle, tx: Transaction) -> None:
        # O(log n) amortised via the tip-pool index, not an O(tips) scan.
        newest = tangle.newest_tip_arrival()
        if tx.timestamp > newest + max_future_skew:
            raise TimestampError(
                f"{tx.short_hash} timestamp {tx.timestamp:.3f} is more than "
                f"{max_future_skew}s ahead of the tangle ({newest:.3f})"
            )
        for parent in (tx.branch, tx.trunk):
            if parent not in tangle:
                continue  # pruned entry point: no content to compare
            parent_tx = tangle.get(parent)
            if tx.timestamp < parent_tx.timestamp:
                raise TimestampError(
                    f"{tx.short_hash} predates its parent {parent_tx.short_hash}"
                )

    return validate


def detect_lazy_approval(result: AttachResult, *,
                         max_parent_age: float = DEFAULT_MAX_PARENT_AGE) -> bool:
    """Classify one attach as lazy-tips misbehaviour.

    The paper's lazy node "could always verify a fixed pair of very old
    transactions, while not contributing to the verification of more
    recent transactions" — the detector is therefore *age-based*: an
    approval is lazy when an approved parent is older than
    *max_parent_age* seconds at attach time.

    It deliberately does NOT flag approvals of transactions that merely
    stopped being tips moments ago: under concurrent honest traffic two
    devices regularly pick the same fresh tips (the second one's parents
    are no longer tips on arrival), and punishing that would penalise
    honest concurrency.  Freshly approved parents are young, so the age
    test is immune to that race.
    """
    return any(age > max_parent_age for age in result.parent_ages)
