"""Credit-based PoW consensus — the paper's central mechanism.

The paper defines ``Cr ∝ 1/D``: the lower a node's credit, the longer
its PoW.  This module supplies:

* difficulty policies mapping a credit value to a PoW difficulty —
  :class:`InverseDifficultyPolicy` (the literal ``Cr ∝ 1/D`` law) and
  :class:`LinearDifficultyPolicy` (a clamped linear ablation), plus the
  :class:`FixedDifficultyPolicy` baseline that *is* the original PoW;
* :class:`CreditBasedConsensus`, which wires a
  :class:`~repro.core.credit.CreditRegistry` to a policy, observes
  tangle attaches (detecting lazy tips), ingests double-spend reports,
  and — as a tangle validator — rejects transactions whose declared
  difficulty undercuts what the issuer's credit requires.

Evaluation defaults follow Section VI-A: initial difficulty 11 on a
range of [1, 24].
"""

from __future__ import annotations

import math
from typing import Optional

from ..pow import hashcash
from ..tangle.errors import InvalidPowError
from ..tangle.tangle import AttachResult, Tangle
from ..tangle.transaction import Transaction
from ..tangle.validation import DEFAULT_MAX_PARENT_AGE, detect_lazy_approval
from ..telemetry.registry import DIFFICULTY_BUCKETS
from .credit import CreditRegistry, MaliciousBehaviour

__all__ = [
    "DEFAULT_INITIAL_DIFFICULTY",
    "DEFAULT_MIN_DIFFICULTY",
    "DEFAULT_MAX_DIFFICULTY",
    "DifficultyPolicy",
    "FixedDifficultyPolicy",
    "LinearDifficultyPolicy",
    "InverseDifficultyPolicy",
    "CreditBasedConsensus",
]

DEFAULT_INITIAL_DIFFICULTY = 11
"""Paper: "We set 11 as the initial difficulty of PoW"."""

DEFAULT_MIN_DIFFICULTY = 1
"""Paper: "The minimum difficulty of PoW is 1"."""

DEFAULT_MAX_DIFFICULTY = 24
"""Cap on punished difficulty; 2^24 attempts ≈ 90 minutes on the
modelled Raspberry Pi — effectively a ban, without unbounded integers."""


class DifficultyPolicy:
    """Maps a credit value to the PoW difficulty a node must meet."""

    def difficulty_for(self, credit: float) -> int:
        raise NotImplementedError


class FixedDifficultyPolicy(DifficultyPolicy):
    """The original PoW: everyone digs at the same difficulty."""

    def __init__(self, difficulty: int = DEFAULT_INITIAL_DIFFICULTY):
        if difficulty < hashcash.MIN_DIFFICULTY:
            raise ValueError("difficulty below minimum")
        self.difficulty = difficulty

    def difficulty_for(self, credit: float) -> int:
        return self.difficulty


class _ClampedPolicy(DifficultyPolicy):
    """Shared clamping behaviour for adaptive policies."""

    def __init__(self, *, initial_difficulty: int = DEFAULT_INITIAL_DIFFICULTY,
                 min_difficulty: int = DEFAULT_MIN_DIFFICULTY,
                 max_difficulty: int = DEFAULT_MAX_DIFFICULTY):
        if not (hashcash.MIN_DIFFICULTY <= min_difficulty
                <= initial_difficulty <= max_difficulty <= hashcash.MAX_DIFFICULTY):
            raise ValueError(
                "require MIN <= min_difficulty <= initial <= max <= MAX"
            )
        self.initial_difficulty = initial_difficulty
        self.min_difficulty = min_difficulty
        self.max_difficulty = max_difficulty

    def _clamp(self, difficulty: float) -> int:
        return int(round(
            min(self.max_difficulty, max(self.min_difficulty, difficulty))
        ))


class LinearDifficultyPolicy(_ClampedPolicy):
    """Clamped linear map: an ablation against the inverse law.

    ``D = D0 - reward_gain·Cr`` for positive credit and
    ``D = D0 + punish_gain·|Cr|`` for negative credit.
    """

    def __init__(self, *, reward_gain: float = 2.0, punish_gain: float = 0.5,
                 **kwargs):
        super().__init__(**kwargs)
        if reward_gain < 0 or punish_gain < 0:
            raise ValueError("gains must be non-negative")
        self.reward_gain = reward_gain
        self.punish_gain = punish_gain

    def difficulty_for(self, credit: float) -> int:
        if credit >= 0:
            return self._clamp(self.initial_difficulty - self.reward_gain * credit)
        return self._clamp(self.initial_difficulty + self.punish_gain * -credit)


class InverseDifficultyPolicy(_ClampedPolicy):
    """The paper's ``Cr ∝ 1/D`` law, with a calibrated negative branch.

    With a scale constant ``c`` (the credit that halves the difficulty):

    * ``Cr >= 0``:  ``D = D0 · c / (c + Cr)`` — the literal inverse law;
      difficulty decays toward ``min_difficulty`` as credit accumulates.
    * ``Cr < 0``, ``negative_mode="log-time"`` (default):
      ``D = D0 + punish_bits · log2(1 + |Cr| / c)``.  PoW *time* is
      exponential in D, so interpreting the penalty as a multiplier on
      expected solve time (one doubling per ``1/punish_bits`` of
      log-credit) reproduces the paper's own dynamics: Fig. 8 shows a
      punished node recovering after ~37 s, which corresponds to a
      difficulty of roughly D0+6, not the effectively-infinite value the
      literal hyperbola would assign.  The default ``punish_bits = 1.2``
      is calibrated so a fresh double-spend (Cr ≈ −30 under the paper's
      parameters) yields D0+6 ≈ a ~40 s punished solve on the Raspberry
      Pi profile — the paper's observed 37 s gap.
    * ``Cr < 0``, ``negative_mode="inverse"`` (ablation):
      ``D = D0 · (c + |Cr|) / c`` — the mirrored hyperbola, which
      saturates at ``max_difficulty`` after the mildest punishment.

    The ablation bench (Ext-3) contrasts both modes.
    """

    def __init__(self, *, credit_scale: float = 1.0,
                 negative_mode: str = "log-time",
                 punish_bits: float = 1.2, **kwargs):
        super().__init__(**kwargs)
        if credit_scale <= 0:
            raise ValueError("credit_scale must be positive")
        if negative_mode not in ("log-time", "inverse"):
            raise ValueError(f"unknown negative_mode {negative_mode!r}")
        if punish_bits <= 0:
            raise ValueError("punish_bits must be positive")
        self.credit_scale = credit_scale
        self.negative_mode = negative_mode
        self.punish_bits = punish_bits

    def difficulty_for(self, credit: float) -> int:
        c = self.credit_scale
        if credit >= 0:
            return self._clamp(self.initial_difficulty * c / (c + credit))
        if self.negative_mode == "inverse":
            return self._clamp(self.initial_difficulty * (c - credit) / c)
        return self._clamp(
            self.initial_difficulty
            + self.punish_bits * math.log2(1.0 - credit / c)
        )


class CreditBasedConsensus:
    """The credit-based PoW mechanism, end to end.

    Wires together behaviour tracking, credit evaluation and difficulty
    assignment; exposes the pieces each role needs:

    * light nodes ask :meth:`required_difficulty` before grinding;
    * full nodes install :meth:`validator` on their tangle and feed
      every successful attach to :meth:`observe_attach` (which performs
      lazy-tips detection) and every ledger conflict to
      :meth:`report_double_spend`.

    Args:
        registry: the behaviour/credit store (one per full node replica).
        policy: credit→difficulty map; defaults to the paper's inverse law.
        max_parent_age: lazy-tips age threshold (defaults to ΔT).
        difficulty_tolerance: validators accept a declared difficulty
            this many bits below the locally computed requirement, since
            issuer and validator evaluate credit at slightly different
            times (network latency).
    """

    def __init__(self, registry: Optional[CreditRegistry] = None, *,
                 policy: Optional[DifficultyPolicy] = None,
                 max_parent_age: float = DEFAULT_MAX_PARENT_AGE,
                 difficulty_tolerance: int = 1):
        self.registry = registry if registry is not None else CreditRegistry()
        self.policy = policy if policy is not None else InverseDifficultyPolicy()
        if max_parent_age <= 0:
            raise ValueError("max_parent_age must be positive")
        if difficulty_tolerance < 0:
            raise ValueError("difficulty_tolerance must be non-negative")
        self.max_parent_age = max_parent_age
        self.difficulty_tolerance = difficulty_tolerance
        self.lazy_detections = 0
        self.double_spend_reports = 0
        telemetry = self.registry.telemetry
        self._m_difficulty = telemetry.histogram(
            "repro_credit_required_difficulty",
            "Credit-assigned PoW difficulty handed to issuers",
            buckets=DIFFICULTY_BUCKETS)
        self._m_tier = telemetry.counter(
            "repro_credit_difficulty_tier_total",
            "Difficulty assignments by credit tier "
            "(rewarded/neutral/punished vs the initial difficulty)")
        self._baseline_difficulty = getattr(
            self.policy, "initial_difficulty",
            getattr(self.policy, "difficulty", None))

    # -- wiring ----------------------------------------------------------

    def bind_tangle(self, tangle: Tangle) -> None:
        """Wire this consensus' credit registry to *tangle*'s weight
        engine, in one call:

        * the registry resolves transaction weights through
          ``tangle.weight`` (O(1) for freshly attached transactions via
          the no-approvers fast path);
        * the tangle's flush listener pushes changed cumulative weights
          into the registry's record cache
          (:meth:`~repro.core.credit.CreditRegistry.refresh_weight_values`);
        * the registry flushes pending batched contributions before
          every evaluation (:meth:`~repro.core.credit.CreditRegistry.
          set_refresh_hook`), so evaluations observe exactly the weights
          a from-scratch rescan would.
        """
        self.registry.set_weight_provider(tangle.weight)
        tangle.add_weight_listener(self.registry.refresh_weight_values)
        self.registry.set_refresh_hook(tangle.flush_weights)

    # -- difficulty ------------------------------------------------------

    def credit(self, node_id: bytes, now: float) -> float:
        return self.registry.credit(node_id, now)

    def required_difficulty(self, node_id: bytes, now: float) -> int:
        """The PoW difficulty *node_id* must meet right now."""
        difficulty = self.policy.difficulty_for(
            self.registry.credit(node_id, now))
        self._m_difficulty.observe(difficulty)
        baseline = self._baseline_difficulty
        if baseline is not None:
            if difficulty < baseline:
                tier = "rewarded"
            elif difficulty > baseline:
                tier = "punished"
            else:
                tier = "neutral"
            self._m_tier.inc(tier=tier)
        return difficulty

    # -- observation -----------------------------------------------------

    def observe_attach(self, result: AttachResult) -> bool:
        """Ingest a successful attach; returns True when it was lazy.

        Valid transactions raise CrP; a lazy approval is recorded as
        malicious behaviour (αl).  A lazy transaction still *attaches* —
        the tangle cannot refuse structurally valid approvals — but its
        issuer pays for it on every subsequent PoW.
        """
        tx = result.transaction
        node_id = tx.issuer.node_id
        lazy = detect_lazy_approval(result, max_parent_age=self.max_parent_age)
        # Record against the *ledger* timestamp, not the local arrival
        # time: every replica must derive the same credit for the same
        # history, or they would disagree on required difficulties and
        # reject each other's gossip.
        if lazy:
            self.lazy_detections += 1
            self.registry.record_malicious(
                node_id, MaliciousBehaviour.LAZY_TIPS, tx.timestamp
            )
        else:
            self.registry.record_transaction(
                node_id, tx.tx_hash, tx.timestamp
            )
        return lazy

    def report_double_spend(self, node_id: bytes, timestamp: float) -> None:
        """Ingest a ledger conflict attributed to *node_id* (αd)."""
        self.double_spend_reports += 1
        self.registry.record_malicious(
            node_id, MaliciousBehaviour.DOUBLE_SPENDING, timestamp
        )

    # -- enforcement -----------------------------------------------------

    def validator(self, tangle: Tangle, tx: Transaction) -> None:
        """Tangle validator: the declared difficulty must cover the
        issuer's credit-assigned requirement (within tolerance)."""
        now = tx.timestamp
        required = self.required_difficulty(tx.issuer.node_id, now)
        if tx.difficulty + self.difficulty_tolerance < required:
            raise InvalidPowError(
                f"{tx.short_hash}: declared difficulty {tx.difficulty} "
                f"below credit-required {required} for issuer "
                f"{tx.issuer.short_id}"
            )
