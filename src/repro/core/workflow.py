"""The Fig. 6 workflow, executed step by step with a verifiable report.

The paper describes the system's operation as five interaction steps
between manager, gateways and IoT devices.  :func:`run_workflow` drives
a :class:`~repro.core.biot.BIoTSystem` through all of them and returns
a :class:`WorkflowReport` whose per-step records assert the observable
postconditions (gateway registered on ledger, devices authorised, keys
installed, transactions attached and replicated).  The integration test
suite and the ``smart_factory`` example are both built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .biot import BIoTSystem

__all__ = ["WorkflowStep", "WorkflowReport", "run_workflow"]


@dataclass(frozen=True)
class WorkflowStep:
    """One executed workflow step and its observed outcome."""

    number: int
    title: str
    ok: bool
    details: Dict[str, object]


@dataclass
class WorkflowReport:
    """The full Fig. 6 run."""

    steps: List[WorkflowStep] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(step.ok for step in self.steps)

    def add(self, number: int, title: str, ok: bool, **details) -> None:
        self.steps.append(WorkflowStep(number=number, title=title, ok=ok,
                                       details=dict(details)))

    def format(self) -> str:
        lines = ["B-IoT workflow (paper Fig. 6)", "=" * 34]
        for step in self.steps:
            status = "ok" if step.ok else "FAILED"
            lines.append(f"step {step.number}: {step.title} [{status}]")
            for key, value in step.details.items():
                lines.append(f"    {key} = {value}")
        return "\n".join(lines)


def run_workflow(system: BIoTSystem, *, report_seconds: float = 30.0,
                 settle_seconds: float = 2.0) -> WorkflowReport:
    """Drive *system* through workflow steps 1–5 and verify each one.

    Args:
        system: a freshly built (not yet initialised) system.
        report_seconds: how long to let devices report in steps 4–5.
        settle_seconds: gossip settling time after control-plane steps.
    """
    report = WorkflowReport()
    manager = system.manager
    scheduler = system.scheduler

    # Step 1: the manager initialises gateways — records their
    # identifiers in the blockchain.
    manager.register_gateways(
        [keys.public for keys in system.gateway_keys.values()]
    )
    scheduler.run_until(scheduler.clock.now() + settle_seconds)
    gateways_registered = all(
        gateway.acl.is_registered_gateway(keys.node_id)
        for gateway in system.gateways
        for keys in system.gateway_keys.values()
    )
    report.add(1, "initialize gateways / set up manager", gateways_registered,
               registered=len(manager.acl.registered_gateways()))

    # Step 2: authorise IoT devices via an ACL transaction (Eqn. 1).
    manager.authorize_devices(
        [keys.public for keys in system.device_keys.values()]
    )
    scheduler.run_until(scheduler.clock.now() + settle_seconds)
    devices_authorized = all(
        gateway.acl.is_authorized_device(keys.node_id)
        for gateway in system.gateways
        for keys in system.device_keys.values()
    )
    report.add(2, "authorize IoT devices", devices_authorized,
               authorized=len(manager.acl.authorized_devices()))

    # Step 3: distribute the symmetric secret key — only to devices
    # which collect sensitive data.
    sensitive = [d for d in system.devices if d.sensor.sensitive]
    for device in sensitive:
        manager.distribute_key(device.address, device.keypair.public)
    scheduler.run_until(scheduler.clock.now() + settle_seconds)
    keys_installed = all(
        device.protector.has_key() for device in sensitive
    )
    report.add(3, "distribute secret keys to sensitive-data devices",
               keys_installed,
               sensitive_devices=len(sensitive),
               completed=manager.distributor.completed_distributions)

    # Steps 4-5: devices fetch tips, run PoW, submit — repeatedly.
    system.start_devices()
    scheduler.run_until(scheduler.clock.now() + report_seconds)
    accepted = sum(d.stats.submissions_accepted for d in system.devices)
    every_device_reported = all(
        d.stats.submissions_accepted > 0 for d in system.devices
    )
    report.add(4, "devices validate two tips and bundle via PoW",
               every_device_reported,
               pow_solves=sum(d.stats.pow_solves for d in system.devices))
    replicas = {n.address: n.tangle_size
                for n in [system.manager] + system.gateways}
    converged = len(set(replicas.values())) == 1
    report.add(5, "submit transactions; gateways verify and broadcast",
               accepted > 0,
               accepted=accepted, replicas=replicas, converged=converged)
    system.initialized = True
    return report
