"""Sensor data quality control — the paper's named future work.

Section VIII: "In future directions, we can explore sensor data quality
control schemes in blockchain-based systems."  This module implements
the natural design inside B-IoT's own machinery: gateways screen
plaintext sensor readings with a per-stream statistical detector, and
verdicts feed the *existing* credit mechanism as a third behaviour kind
(``bad-data``, with its own punishment coefficient α) — a device that
keeps posting implausible data pays for it in PoW difficulty exactly
like a lazy or double-spending node.

Detection is two-layered:

* **absolute limits** — physically impossible values for the sensor
  class (a temperature of 500 °C, negative vibration RMS);
* **statistical outliers** — a rolling z-score over the stream's recent
  window; readings many standard deviations from the stream's own
  recent behaviour are flagged once enough history exists.

Only plaintext readings are screened: encrypted payloads are opaque to
gateways by design (that is the data-authority method working), so
quality control for sensitive streams is the key holder's job.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..devices.sensors import SensorReading

__all__ = [
    "BAD_DATA_BEHAVIOUR",
    "QualityVerdict",
    "ReadingQualityMonitor",
    "DEFAULT_ABSOLUTE_LIMITS",
]

BAD_DATA_BEHAVIOUR = "bad-data"
"""The behaviour label recorded against the credit registry."""

DEFAULT_ABSOLUTE_LIMITS: Dict[str, Tuple[float, float]] = {
    "temperature": (-60.0, 150.0),
    "humidity": (0.0, 100.0),
    "vibration": (0.0, 500.0),
    "power": (0.0, 1_000_000.0),
    "machine-status": (0.0, 3.0),
}
"""Physically plausible ranges per built-in sensor type."""


@dataclass(frozen=True)
class QualityVerdict:
    """The monitor's judgement of one reading."""

    ok: bool
    reason: str = ""
    z_score: Optional[float] = None


class _StreamWindow:
    """Rolling statistics for one (issuer, sensor_type) stream."""

    def __init__(self, window: int):
        self.values: Deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        self.values.append(value)

    def statistics(self) -> Tuple[float, float]:
        n = len(self.values)
        mean = sum(self.values) / n
        variance = sum((v - mean) ** 2 for v in self.values) / n
        return mean, math.sqrt(variance)


class ReadingQualityMonitor:
    """Screens a population of sensor streams for implausible data.

    Args:
        window: how many recent readings per stream feed the rolling
            statistics.
        z_threshold: |z| above which a reading is an outlier.
        min_samples: history required before statistical screening
            activates (absolute limits always apply).
        absolute_limits: per-sensor-type (lo, hi) plausibility bounds;
            unknown types get no absolute screening.
    """

    def __init__(self, *, window: int = 30, z_threshold: float = 5.0,
                 min_samples: int = 8,
                 absolute_limits: Optional[Dict[str, Tuple[float, float]]] = None):
        if window < 2:
            raise ValueError("window must be >= 2")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.window = window
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self.absolute_limits = (
            dict(DEFAULT_ABSOLUTE_LIMITS) if absolute_limits is None
            else dict(absolute_limits)
        )
        self._streams: Dict[Tuple[bytes, str], _StreamWindow] = {}
        self.readings_screened = 0
        self.readings_flagged = 0

    def assess(self, issuer: bytes, reading: SensorReading) -> QualityVerdict:
        """Judge *reading* from *issuer* and update the stream window.

        Flagged readings do **not** enter the rolling window, so an
        attacker cannot walk the statistics toward its target by
        escalating gradually past each accepted outlier.
        """
        self.readings_screened += 1
        value = reading.value

        limits = self.absolute_limits.get(reading.sensor_type)
        if limits is not None and not limits[0] <= value <= limits[1]:
            self.readings_flagged += 1
            return QualityVerdict(
                ok=False,
                reason=(f"{reading.sensor_type} value {value:.3g} outside "
                        f"plausible range [{limits[0]:.3g}, {limits[1]:.3g}]"),
            )

        key = (issuer, reading.sensor_type)
        stream = self._streams.get(key)
        if stream is None:
            stream = _StreamWindow(self.window)
            self._streams[key] = stream

        if len(stream.values) >= self.min_samples:
            mean, std = stream.statistics()
            if std > 0:
                z_score = (value - mean) / std
                if abs(z_score) > self.z_threshold:
                    self.readings_flagged += 1
                    return QualityVerdict(
                        ok=False,
                        reason=(f"{reading.sensor_type} outlier: "
                                f"z={z_score:.1f} beyond ±{self.z_threshold}"),
                        z_score=z_score,
                    )
            elif value != mean:
                # A perfectly constant stream that suddenly moves is
                # suspicious but statistically degenerate: flag only
                # clearly discontinuous jumps.
                if mean == 0 or abs(value - mean) > abs(mean):
                    self.readings_flagged += 1
                    return QualityVerdict(
                        ok=False,
                        reason=(f"{reading.sensor_type} jump on constant "
                                f"stream: {mean:.3g} -> {value:.3g}"),
                    )

        stream.add(value)
        return QualityVerdict(ok=True)

    def stream_sample_count(self, issuer: bytes, sensor_type: str) -> int:
        """How much history the monitor holds for one stream."""
        stream = self._streams.get((issuer, sensor_type))
        return len(stream.values) if stream else 0
