"""The credit model — Eqns. 2–5 of the paper.

Every node ``i`` carries a credit value::

    Cr_i = λ1 · CrP_i + λ2 · CrN_i                                (Eqn. 2)

    CrP_i = Σ_{k=1..n_i} w_k / ΔT                                 (Eqn. 3)
        — the *positive* part: the summed weights of node i's valid
        transactions inside the most recent unit of time ΔT.  An
        inactive node has CrP = 0: the system "will not decrease the
        difficulty of PoW for it at the beginning".

    CrN_i = - Σ_{k=1..m_i} α(B) · ΔT / (t - t_k)                  (Eqn. 4)
        — the *negative* part: every malicious behaviour at time t_k
        contributes a penalty that decays hyperbolically but never
        fully disappears.

    α(B) = αl for lazy tips, αd for double spending                (Eqn. 5)

Section VI-A fixes the evaluation parameters: λ1 = 1, λ2 = 0.5,
ΔT = 30 s, αl = 0.5, αd = 1 — these are the defaults here.

The weight ``w_k`` of a transaction is its tangle weight ("the number
of validation[s] to this transaction"), so the registry takes a
*weight provider* callback and re-reads weights at evaluation time:
credit genuinely rises as the network approves your transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry.registry import coerce_registry

__all__ = [
    "MaliciousBehaviour",
    "CreditParameters",
    "CreditBreakdown",
    "CreditRegistry",
]


class MaliciousBehaviour:
    """Behaviour kinds the mechanism punishes.

    ``LAZY_TIPS`` and ``DOUBLE_SPENDING`` are the paper's Eqn. 5 kinds;
    ``BAD_DATA`` is the data-quality extension (Section VIII future
    work, :mod:`repro.core.quality`).
    """

    LAZY_TIPS = "lazy-tips"
    DOUBLE_SPENDING = "double-spending"
    BAD_DATA = "bad-data"


@dataclass(frozen=True)
class CreditParameters:
    """Tunable knobs of the credit mechanism.

    Attributes:
        lambda1: weight of the positive component.
        lambda2: weight of the negative component ("if we want to adopt
            strict punishment strategy ... set λ2 larger").
        delta_t: the unit of time ΔT in seconds.
        alpha: punishment coefficient per behaviour kind (Eqn. 5).
        min_elapsed: clamp on (t - t_k) so a just-committed attack has a
            very large but finite penalty.
        max_transaction_weight: cap on each w_k entering Eqn. 3.  The
            paper's Fig. 8 weight bars stay in the single digits; an
            uncapped cumulative weight on a busy tangle grows linearly
            with age and would let a high-traffic node bank enough CrP
            to shrug off penalties entirely.
    """

    lambda1: float = 1.0
    lambda2: float = 0.5
    delta_t: float = 30.0
    alpha: Tuple[Tuple[str, float], ...] = (
        (MaliciousBehaviour.LAZY_TIPS, 0.5),
        (MaliciousBehaviour.DOUBLE_SPENDING, 1.0),
        (MaliciousBehaviour.BAD_DATA, 0.25),
    )
    min_elapsed: float = 0.5
    max_transaction_weight: float = 5.0

    def __post_init__(self):
        if self.lambda1 < 0 or self.lambda2 < 0:
            raise ValueError("lambda coefficients must be non-negative")
        if self.delta_t <= 0:
            raise ValueError("delta_t must be positive")
        if self.min_elapsed <= 0:
            raise ValueError("min_elapsed must be positive")
        if self.max_transaction_weight <= 0:
            raise ValueError("max_transaction_weight must be positive")
        for _, coefficient in self.alpha:
            if coefficient < 0:
                raise ValueError("punishment coefficients must be non-negative")

    def punishment_coefficient(self, behaviour: str) -> float:
        """α(B) for *behaviour*; unknown kinds get the harshest α."""
        table = dict(self.alpha)
        if behaviour in table:
            return table[behaviour]
        return max(table.values()) if table else 1.0


@dataclass(frozen=True)
class CreditBreakdown:
    """A credit evaluation with its components (what Fig. 8 plots)."""

    credit: float
    positive: float
    negative: float
    active_transactions: int
    malicious_events: int


@dataclass
class _NodeHistory:
    transactions: List[Tuple[float, bytes]] = field(default_factory=list)
    malicious: List[Tuple[float, str]] = field(default_factory=list)


class CreditRegistry:
    """Tracks behaviour and evaluates credit for every node.

    Args:
        params: the :class:`CreditParameters` in force.
        weight_provider: callable mapping a transaction hash to its
            current tangle weight; defaults to weight 1 per transaction
            (pure activity counting).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_credit_*`` metrics (recorded transactions, penalty
            events by behaviour, evaluation counts).
    """

    def __init__(self, params: Optional[CreditParameters] = None, *,
                 weight_provider: Optional[Callable[[bytes], int]] = None,
                 telemetry=None):
        self.params = params if params is not None else CreditParameters()
        self._weight_provider = weight_provider
        self._history: Dict[bytes, _NodeHistory] = {}
        # Weights frozen at snapshot time for records whose transaction
        # is no longer resolvable (pruned) — see import_state.
        self._weight_overrides: Dict[bytes, float] = {}
        self.telemetry = coerce_registry(telemetry)
        self._m_transactions = self.telemetry.counter(
            "repro_credit_transactions_total",
            "Valid transactions recorded into credit histories")
        self._m_penalties = self.telemetry.counter(
            "repro_credit_penalties_total",
            "Malicious-behaviour penalty events, by behaviour kind")
        self._m_evaluations = self.telemetry.counter(
            "repro_credit_evaluations_total",
            "Credit evaluations (Eqn. 2 reads)")

    def set_weight_provider(self,
                            weight_provider: Callable[[bytes], int]) -> None:
        """Install the tangle-weight lookup after construction.

        Full nodes build their credit registry before their tangle
        replica exists; this closes the loop once the tangle is up.
        """
        self._weight_provider = weight_provider

    # -- recording -------------------------------------------------------

    def _node(self, node_id: bytes) -> _NodeHistory:
        history = self._history.get(node_id)
        if history is None:
            history = _NodeHistory()
            self._history[node_id] = history
        return history

    def record_transaction(self, node_id: bytes, tx_hash: bytes,
                           timestamp: float) -> None:
        """Record a *valid* transaction issued by *node_id*."""
        self._node(node_id).transactions.append((timestamp, tx_hash))
        self._m_transactions.inc()

    def record_malicious(self, node_id: bytes, behaviour: str,
                         timestamp: float) -> None:
        """Record a detected malicious behaviour (Eqn. 5 kinds)."""
        self._node(node_id).malicious.append((timestamp, behaviour))
        self._m_penalties.inc(behaviour=behaviour)

    def known_nodes(self) -> List[bytes]:
        return sorted(self._history)

    def transaction_count(self, node_id: bytes) -> int:
        history = self._history.get(node_id)
        return len(history.transactions) if history else 0

    def malicious_count(self, node_id: bytes) -> int:
        history = self._history.get(node_id)
        return len(history.malicious) if history else 0

    # -- evaluation ------------------------------------------------------

    def _transaction_weight(self, tx_hash: bytes) -> float:
        if self._weight_provider is None:
            weight = self._weight_overrides.get(tx_hash, 1.0)
            return min(weight, self.params.max_transaction_weight)
        try:
            weight = float(self._weight_provider(tx_hash))
        except KeyError:
            # The transaction fell out of the provider's view (pruned);
            # use the weight frozen at snapshot time if one was imported.
            weight = self._weight_overrides.get(tx_hash, 1.0)
        return min(weight, self.params.max_transaction_weight)

    def positive_credit(self, node_id: bytes, now: float) -> float:
        """CrP_i (Eqn. 3): weighted activity over the last ΔT seconds."""
        history = self._history.get(node_id)
        if history is None:
            return 0.0
        window_start = now - self.params.delta_t
        total_weight = sum(
            self._transaction_weight(tx_hash)
            for timestamp, tx_hash in history.transactions
            if window_start <= timestamp <= now
        )
        return total_weight / self.params.delta_t

    def negative_credit(self, node_id: bytes, now: float) -> float:
        """CrN_i (Eqn. 4): decaying, never-vanishing penalties."""
        history = self._history.get(node_id)
        if history is None:
            return 0.0
        penalty = 0.0
        for timestamp, behaviour in history.malicious:
            if timestamp > now:
                continue
            elapsed = max(now - timestamp, self.params.min_elapsed)
            penalty += (
                self.params.punishment_coefficient(behaviour)
                * self.params.delta_t / elapsed
            )
        return -penalty

    def credit(self, node_id: bytes, now: float) -> float:
        """Cr_i (Eqn. 2)."""
        self._m_evaluations.inc()
        return (
            self.params.lambda1 * self.positive_credit(node_id, now)
            + self.params.lambda2 * self.negative_credit(node_id, now)
        )

    def breakdown(self, node_id: bytes, now: float) -> CreditBreakdown:
        """Full evaluation with components, for traces and Fig. 8."""
        positive = self.positive_credit(node_id, now)
        negative = self.negative_credit(node_id, now)
        history = self._history.get(node_id)
        window_start = now - self.params.delta_t
        active = 0
        malicious = 0
        if history is not None:
            active = sum(
                1 for timestamp, _ in history.transactions
                if window_start <= timestamp <= now
            )
            malicious = sum(1 for timestamp, _ in history.malicious if timestamp <= now)
        return CreditBreakdown(
            credit=self.params.lambda1 * positive + self.params.lambda2 * negative,
            positive=positive,
            negative=negative,
            active_transactions=active,
            malicious_events=malicious,
        )

    # -- state transfer ----------------------------------------------------

    def export_state(self, *, now: float) -> Dict[str, object]:
        """Serialisable behaviour histories, for node snapshots.

        Transaction records older than ΔT before *now* are dropped
        (they can never re-enter the CrP window); malicious records are
        exported in full — Eqn. 4 never forgets.
        """
        cutoff = now - self.params.delta_t
        return {
            "now": now,
            "nodes": {
                node_id.hex(): {
                    # Each record carries its weight *resolved now*: the
                    # importer may not hold the transaction any more
                    # (pruned), and replicas must still agree on CrP.
                    "transactions": [
                        [timestamp, tx_hash.hex(),
                         self._transaction_weight(tx_hash)]
                        for timestamp, tx_hash in history.transactions
                        if timestamp >= cutoff
                    ],
                    "malicious": [
                        [timestamp, behaviour]
                        for timestamp, behaviour in history.malicious
                    ],
                }
                for node_id, history in self._history.items()
            },
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`export_state` output (replaces all histories)."""
        try:
            histories: Dict[bytes, _NodeHistory] = {}
            overrides: Dict[bytes, float] = {}
            for node_hex, entry in state["nodes"].items():
                transactions = []
                for record in entry["transactions"]:
                    timestamp, tx_hash_hex, weight = record
                    tx_hash = bytes.fromhex(tx_hash_hex)
                    transactions.append((float(timestamp), tx_hash))
                    overrides[tx_hash] = float(weight)
                history = _NodeHistory(
                    transactions=transactions,
                    malicious=[
                        (float(timestamp), str(behaviour))
                        for timestamp, behaviour in entry["malicious"]
                    ],
                )
                histories[bytes.fromhex(node_hex)] = history
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad credit state: {exc}") from exc
        self._history = histories
        self._weight_overrides = overrides

    def forget_before(self, node_id: bytes, cutoff: float) -> int:
        """Prune transaction records older than *cutoff* (they can no
        longer enter the CrP window).  Malicious records are *never*
        pruned — Eqn. 4's penalties decay but "cannot be eliminated over
        time".  Returns how many records were dropped."""
        history = self._history.get(node_id)
        if history is None:
            return 0
        before = len(history.transactions)
        history.transactions = [
            (timestamp, tx_hash)
            for timestamp, tx_hash in history.transactions
            if timestamp >= cutoff
        ]
        return before - len(history.transactions)
