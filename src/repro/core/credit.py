"""The credit model — Eqns. 2–5 of the paper.

Every node ``i`` carries a credit value::

    Cr_i = λ1 · CrP_i + λ2 · CrN_i                                (Eqn. 2)

    CrP_i = Σ_{k=1..n_i} w_k / ΔT                                 (Eqn. 3)
        — the *positive* part: the summed weights of node i's valid
        transactions inside the most recent unit of time ΔT.  An
        inactive node has CrP = 0: the system "will not decrease the
        difficulty of PoW for it at the beginning".

    CrN_i = - Σ_{k=1..m_i} α(B) · ΔT / (t - t_k)                  (Eqn. 4)
        — the *negative* part: every malicious behaviour at time t_k
        contributes a penalty that decays hyperbolically but never
        fully disappears.

    α(B) = αl for lazy tips, αd for double spending                (Eqn. 5)

Section VI-A fixes the evaluation parameters: λ1 = 1, λ2 = 0.5,
ΔT = 30 s, αl = 0.5, αd = 1 — these are the defaults here.

The weight ``w_k`` of a transaction is its tangle weight ("the number
of validation[s] to this transaction"), so the registry takes a
*weight provider* callback: credit genuinely rises as the network
approves your transactions.

Scale notes
-----------

Eqn. 3 sits on the per-transaction hot path: every
``required_difficulty`` call (tip requests, admission validation)
evaluates CrP.  The seed implementation rescanned the node's whole
transaction history per evaluation — O(history) — which dominates once
histories reach tens of thousands of records.  The registry now keeps,
per node, a timestamp-sorted record list with a **rolling window
aggregate**: a running sum over exactly the records inside
``[now − ΔT, now]``, advanced by monotonic eviction/admission as
``now`` moves forward (amortised O(1) per evaluation) and rebuilt by
bisection when ``now`` jumps backwards (O(log n + active)).

Weights are *cached at record time* instead of re-read from the
provider on every evaluation.  Two hooks keep the cache exact:

* :meth:`CreditRegistry.refresh_weight_values` — push updated weights
  in (the tangle's batched weight engine calls this from its flush
  listener, see :meth:`~repro.tangle.tangle.Tangle.add_weight_listener`);
* :meth:`CreditRegistry.set_refresh_hook` — a callable invoked before
  every evaluation (wired to ``tangle.flush_weights`` so pending
  batched contributions land before CrP is read).

With both wired (``CreditBasedConsensus.bind_tangle`` does it in one
call) every evaluation observes exactly the weights the naive rescan
would have observed.  Exactness is proven differentially in
``tests/core/test_credit_differential.py`` against the kept naive
reference (``tests/core/credit_reference.py``).

All weights in the system are small integers clamped to
``max_transaction_weight`` (≤ 5 by default), so the running-sum
arithmetic below is exact: every partial sum is an integer multiple of
the clamp granularity, far below 2**53.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..telemetry.registry import coerce_registry

__all__ = [
    "MaliciousBehaviour",
    "CreditParameters",
    "CreditBreakdown",
    "CreditRegistry",
]


class MaliciousBehaviour:
    """Behaviour kinds the mechanism punishes.

    ``LAZY_TIPS`` and ``DOUBLE_SPENDING`` are the paper's Eqn. 5 kinds;
    ``BAD_DATA`` is the data-quality extension (Section VIII future
    work, :mod:`repro.core.quality`).
    """

    LAZY_TIPS = "lazy-tips"
    DOUBLE_SPENDING = "double-spending"
    BAD_DATA = "bad-data"


@dataclass(frozen=True)
class CreditParameters:
    """Tunable knobs of the credit mechanism.

    Attributes:
        lambda1: weight of the positive component.
        lambda2: weight of the negative component ("if we want to adopt
            strict punishment strategy ... set λ2 larger").
        delta_t: the unit of time ΔT in seconds.
        alpha: punishment coefficient per behaviour kind (Eqn. 5).
        min_elapsed: clamp on (t - t_k) so a just-committed attack has a
            very large but finite penalty.
        max_transaction_weight: cap on each w_k entering Eqn. 3.  The
            paper's Fig. 8 weight bars stay in the single digits; an
            uncapped cumulative weight on a busy tangle grows linearly
            with age and would let a high-traffic node bank enough CrP
            to shrug off penalties entirely.
    """

    lambda1: float = 1.0
    lambda2: float = 0.5
    delta_t: float = 30.0
    alpha: Tuple[Tuple[str, float], ...] = (
        (MaliciousBehaviour.LAZY_TIPS, 0.5),
        (MaliciousBehaviour.DOUBLE_SPENDING, 1.0),
        (MaliciousBehaviour.BAD_DATA, 0.25),
    )
    min_elapsed: float = 0.5
    max_transaction_weight: float = 5.0

    def __post_init__(self):
        if self.lambda1 < 0 or self.lambda2 < 0:
            raise ValueError("lambda coefficients must be non-negative")
        if self.delta_t <= 0:
            raise ValueError("delta_t must be positive")
        if self.min_elapsed <= 0:
            raise ValueError("min_elapsed must be positive")
        if self.max_transaction_weight <= 0:
            raise ValueError("max_transaction_weight must be positive")
        for _, coefficient in self.alpha:
            if coefficient < 0:
                raise ValueError("punishment coefficients must be non-negative")

    def punishment_coefficient(self, behaviour: str) -> float:
        """α(B) for *behaviour*; unknown kinds get the harshest α."""
        table = dict(self.alpha)
        if behaviour in table:
            return table[behaviour]
        return max(table.values()) if table else 1.0


@dataclass(frozen=True)
class CreditBreakdown:
    """A credit evaluation with its components (what Fig. 8 plots)."""

    credit: float
    positive: float
    negative: float
    active_transactions: int
    malicious_events: int


class _Record:
    """One recorded transaction: timestamp, hash, cached capped weight.

    ``seq`` is a registry-global insertion sequence used as the sort
    tie-break for equal timestamps, so summation order is deterministic
    regardless of arrival order.
    """

    __slots__ = ("timestamp", "tx_hash", "weight", "seq", "owner")

    def __init__(self, timestamp: float, tx_hash: bytes, weight: float,
                 seq: int, owner: "_NodeHistory"):
        self.timestamp = timestamp
        self.tx_hash = tx_hash
        self.weight = weight
        self.seq = seq
        self.owner = owner

    def __lt__(self, other: "_Record") -> bool:
        return (self.timestamp, self.seq) < (other.timestamp, other.seq)


class _NodeHistory:
    """Per-node behaviour history with the rolling CrP window.

    ``records``/``timestamps`` are parallel arrays kept sorted by
    ``(timestamp, seq)`` — ``timestamps`` exists so window bounds are a
    bisect away.  The window state caches the sum of record weights
    inside ``[w_now − ΔT, w_now]``; ``w_now is None`` marks it dirty
    (out-of-order insert, prune, import), forcing a bisect rebuild on
    the next evaluation.
    """

    __slots__ = ("records", "timestamps", "malicious",
                 "w_lo", "w_hi", "w_sum", "w_now")

    def __init__(self):
        self.records: List[_Record] = []
        self.timestamps: List[float] = []
        self.malicious: List[Tuple[float, str]] = []
        self.w_lo = 0
        self.w_hi = 0
        self.w_sum = 0.0
        self.w_now: Optional[float] = None

    @property
    def transactions(self) -> List[Tuple[float, bytes]]:
        """Legacy tuple view of the records (tests, debugging)."""
        return [(r.timestamp, r.tx_hash) for r in self.records]

    def window_sum(self, now: float, delta_t: float) -> float:
        """Sum of cached weights for records in ``[now − ΔT, now]``.

        Amortised O(1) while ``now`` is non-decreasing (each record is
        admitted once and evicted once); O(log n + active) rebuild when
        ``now`` moves backwards or the window was invalidated.
        """
        start = now - delta_t
        timestamps = self.timestamps
        if self.w_now is None or now < self.w_now:
            lo = bisect_left(timestamps, start)
            hi = bisect_right(timestamps, now)
            self.w_lo, self.w_hi = lo, hi
            self.w_sum = sum(r.weight for r in self.records[lo:hi])
        else:
            hi = self.w_hi
            n = len(timestamps)
            total = self.w_sum
            records = self.records
            while hi < n and timestamps[hi] <= now:
                total += records[hi].weight
                hi += 1
            lo = self.w_lo
            while lo < hi and timestamps[lo] < start:
                total -= records[lo].weight
                lo += 1
            if lo == hi:
                total = 0.0  # exact reset: no drift survives an empty window
            self.w_lo, self.w_hi, self.w_sum = lo, hi, total
        self.w_now = now
        return self.w_sum

    def active_count(self, now: float, delta_t: float) -> int:
        """How many records fall inside ``[now − ΔT, now]``."""
        return (bisect_right(self.timestamps, now)
                - bisect_left(self.timestamps, now - delta_t))

    def invalidate_window(self) -> None:
        self.w_now = None


class CreditRegistry:
    """Tracks behaviour and evaluates credit for every node.

    Args:
        params: the :class:`CreditParameters` in force.
        weight_provider: callable mapping a transaction hash to its
            current tangle weight; defaults to weight 1 per transaction
            (pure activity counting).  The provider is consulted when a
            record is created (and by :meth:`refresh_weight` /
            :meth:`export_state`), not on every evaluation — push
            weight changes in via :meth:`refresh_weight_values`.
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_credit_*`` metrics (recorded transactions, penalty
            events by behaviour, evaluation counts).
    """

    def __init__(self, params: Optional[CreditParameters] = None, *,
                 weight_provider: Optional[Callable[[bytes], int]] = None,
                 telemetry=None):
        self.params = params if params is not None else CreditParameters()
        self._weight_provider = weight_provider
        self._history: Dict[bytes, _NodeHistory] = {}
        # tx hash -> records carrying it (same hash may be recorded more
        # than once, even across nodes) — the refresh-hook fan-in.
        self._records_by_hash: Dict[bytes, List[_Record]] = {}
        self._seq = 0
        # Weights frozen at snapshot time for records whose transaction
        # is no longer resolvable (pruned) — see import_state.
        self._weight_overrides: Dict[bytes, float] = {}
        # Invoked before every evaluation; full nodes wire this to
        # ``tangle.flush_weights`` so batched weight contributions land
        # (and flow back in through the flush listener) first.
        self._refresh_hook: Optional[Callable[[], object]] = None
        self.telemetry = coerce_registry(telemetry)
        self._m_transactions = self.telemetry.counter(
            "repro_credit_transactions_total",
            "Valid transactions recorded into credit histories")
        self._m_penalties = self.telemetry.counter(
            "repro_credit_penalties_total",
            "Malicious-behaviour penalty events, by behaviour kind")
        self._m_evaluations = self.telemetry.counter(
            "repro_credit_evaluations_total",
            "Credit evaluations (Eqn. 2 reads)")

    def set_weight_provider(self,
                            weight_provider: Callable[[bytes], int]) -> None:
        """Install the tangle-weight lookup after construction.

        Full nodes build their credit registry before their tangle
        replica exists; this closes the loop once the tangle is up.
        Every cached record weight is re-resolved through the new
        provider so evaluations reflect it immediately.
        """
        self._weight_provider = weight_provider
        for history in self._history.values():
            for record in history.records:
                record.weight = self._transaction_weight(record.tx_hash)
            history.invalidate_window()

    def set_refresh_hook(self, hook: Optional[Callable[[], object]]) -> None:
        """Install a callable invoked before every evaluation.

        Full nodes pass ``tangle.flush_weights``: flushing propagates
        pending batched weight contributions, whose new values reach
        this registry through the tangle's weight listener — so the
        cached window observes exactly what a from-scratch provider
        rescan would.
        """
        self._refresh_hook = hook

    # -- recording -------------------------------------------------------

    def _node(self, node_id: bytes) -> _NodeHistory:
        history = self._history.get(node_id)
        if history is None:
            history = _NodeHistory()
            self._history[node_id] = history
        return history

    def record_transaction(self, node_id: bytes, tx_hash: bytes,
                           timestamp: float) -> None:
        """Record a *valid* transaction issued by *node_id*.

        The transaction's weight is resolved (and cached) now; weight
        growth is pushed in later via :meth:`refresh_weight_values`.
        Appends are O(1); an out-of-order timestamp pays an O(n) insort
        and invalidates the rolling window.
        """
        history = self._node(node_id)
        record = _Record(timestamp, tx_hash,
                         self._transaction_weight(tx_hash),
                         self._seq, history)
        self._seq += 1
        if not history.timestamps or timestamp >= history.timestamps[-1]:
            history.records.append(record)
            history.timestamps.append(timestamp)
            # Eagerly admit appends that land inside the current valid
            # window: weight pushes arriving before the next evaluation
            # must only ever adjust records the sum actually counts.
            # Admission is only sound when the append lands exactly at
            # w_hi — an in-order record that is nevertheless older than
            # the window start leaves w_hi short of the list end, and
            # blindly bumping w_hi on the *next* in-window append would
            # count the wrong record.  Any other append at/below w_now
            # invalidates instead.
            w_now = history.w_now
            if w_now is not None and timestamp <= w_now:
                if (timestamp >= w_now - self.params.delta_t
                        and history.w_hi == len(history.timestamps) - 1):
                    history.w_sum += record.weight
                    history.w_hi += 1
                else:
                    history.invalidate_window()
        else:
            index = bisect_right(history.timestamps, timestamp)
            history.records.insert(index, record)
            history.timestamps.insert(index, timestamp)
            history.invalidate_window()
        self._records_by_hash.setdefault(tx_hash, []).append(record)
        self._m_transactions.inc()

    def record_malicious(self, node_id: bytes, behaviour: str,
                         timestamp: float) -> None:
        """Record a detected malicious behaviour (Eqn. 5 kinds)."""
        self._node(node_id).malicious.append((timestamp, behaviour))
        self._m_penalties.inc(behaviour=behaviour)

    def known_nodes(self) -> List[bytes]:
        return sorted(self._history)

    def transaction_count(self, node_id: bytes) -> int:
        history = self._history.get(node_id)
        return len(history.records) if history else 0

    def malicious_count(self, node_id: bytes) -> int:
        history = self._history.get(node_id)
        return len(history.malicious) if history else 0

    # -- weight cache maintenance ----------------------------------------

    def _apply_weight(self, record: _Record, weight: float) -> None:
        if weight == record.weight:
            return
        history = record.owner
        w_now = history.w_now
        if (w_now is not None
                and w_now - self.params.delta_t <= record.timestamp <= w_now):
            history.w_sum += weight - record.weight
        record.weight = weight
        # Records outside the current window (or under a dirty window)
        # need no sum adjustment: they enter with their new weight when
        # the window reaches them.

    def refresh_weight(self, tx_hash: bytes) -> int:
        """Re-resolve *tx_hash*'s weight through the provider; returns
        how many records were updated."""
        records = self._records_by_hash.get(tx_hash)
        if not records:
            return 0
        weight = self._transaction_weight(tx_hash)
        for record in records:
            self._apply_weight(record, weight)
        return len(records)

    def refresh_weight_values(self, updates: Mapping[bytes, float]) -> int:
        """Push externally computed weight updates into the cache.

        *updates* maps transaction hashes to their new **raw** weights
        (the clamp is applied here); hashes this registry never
        recorded are ignored.  This is the tangle flush listener's
        entry point — see
        :meth:`~repro.tangle.tangle.Tangle.add_weight_listener`.
        Returns how many records changed.
        """
        cap = self.params.max_transaction_weight
        records_by_hash = self._records_by_hash
        changed = 0
        for tx_hash, raw in updates.items():
            records = records_by_hash.get(tx_hash)
            if not records:
                continue
            weight = min(float(raw), cap)
            for record in records:
                if record.weight != weight:
                    self._apply_weight(record, weight)
                    changed += 1
        return changed

    # -- evaluation ------------------------------------------------------

    def _transaction_weight(self, tx_hash: bytes) -> float:
        if self._weight_provider is None:
            weight = self._weight_overrides.get(tx_hash, 1.0)
            return min(weight, self.params.max_transaction_weight)
        try:
            weight = float(self._weight_provider(tx_hash))
        except KeyError:
            # The transaction fell out of the provider's view (pruned);
            # use the weight frozen at snapshot time if one was imported.
            weight = self._weight_overrides.get(tx_hash, 1.0)
        return min(weight, self.params.max_transaction_weight)

    def _pre_evaluate(self) -> None:
        if self._refresh_hook is not None:
            self._refresh_hook()

    def positive_credit(self, node_id: bytes, now: float) -> float:
        """CrP_i (Eqn. 3): weighted activity over the last ΔT seconds.

        Served from the per-node rolling window — amortised O(1) for
        monotone ``now``, never O(history).
        """
        self._pre_evaluate()
        history = self._history.get(node_id)
        if history is None:
            return 0.0
        return (history.window_sum(now, self.params.delta_t)
                / self.params.delta_t)

    def negative_credit(self, node_id: bytes, now: float) -> float:
        """CrN_i (Eqn. 4): decaying, never-vanishing penalties."""
        history = self._history.get(node_id)
        if history is None:
            return 0.0
        penalty = 0.0
        for timestamp, behaviour in history.malicious:
            if timestamp > now:
                continue
            elapsed = max(now - timestamp, self.params.min_elapsed)
            penalty += (
                self.params.punishment_coefficient(behaviour)
                * self.params.delta_t / elapsed
            )
        return -penalty

    def credit(self, node_id: bytes, now: float) -> float:
        """Cr_i (Eqn. 2)."""
        self._m_evaluations.inc()
        return (
            self.params.lambda1 * self.positive_credit(node_id, now)
            + self.params.lambda2 * self.negative_credit(node_id, now)
        )

    def breakdown(self, node_id: bytes, now: float) -> CreditBreakdown:
        """Full evaluation with components, for traces and Fig. 8."""
        positive = self.positive_credit(node_id, now)
        negative = self.negative_credit(node_id, now)
        history = self._history.get(node_id)
        active = 0
        malicious = 0
        if history is not None:
            active = history.active_count(now, self.params.delta_t)
            malicious = sum(
                1 for timestamp, _ in history.malicious if timestamp <= now)
        return CreditBreakdown(
            credit=self.params.lambda1 * positive + self.params.lambda2 * negative,
            positive=positive,
            negative=negative,
            active_transactions=active,
            malicious_events=malicious,
        )

    # -- state transfer ----------------------------------------------------

    def export_state(self, *, now: float) -> Dict[str, object]:
        """Serialisable behaviour histories, for node snapshots.

        Transaction records older than ΔT before *now* are dropped
        (they can never re-enter the CrP window); malicious records are
        exported in full — Eqn. 4 never forgets.  Each node's export is
        O(active), found by bisection, not an O(history) filter.
        """
        self._pre_evaluate()
        cutoff = now - self.params.delta_t
        nodes: Dict[str, object] = {}
        for node_id, history in self._history.items():
            keep = bisect_left(history.timestamps, cutoff)
            nodes[node_id.hex()] = {
                # Each record carries its weight *resolved now*: the
                # importer may not hold the transaction any more
                # (pruned), and replicas must still agree on CrP.
                "transactions": [
                    [record.timestamp, record.tx_hash.hex(),
                     self._transaction_weight(record.tx_hash)]
                    for record in history.records[keep:]
                ],
                "malicious": [
                    [timestamp, behaviour]
                    for timestamp, behaviour in history.malicious
                ],
            }
        return {"now": now, "nodes": nodes}

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`export_state` output (replaces all histories)."""
        try:
            histories: Dict[bytes, _NodeHistory] = {}
            overrides: Dict[bytes, float] = {}
            records_by_hash: Dict[bytes, List[_Record]] = {}
            seq = self._seq
            for node_hex, entry in state["nodes"].items():
                history = _NodeHistory()
                for record_entry in entry["transactions"]:
                    timestamp, tx_hash_hex, weight = record_entry
                    tx_hash = bytes.fromhex(tx_hash_hex)
                    overrides[tx_hash] = float(weight)
                    record = _Record(float(timestamp), tx_hash,
                                     float(weight), seq, history)
                    seq += 1
                    insort(history.records, record)
                    records_by_hash.setdefault(tx_hash, []).append(record)
                history.timestamps = [r.timestamp for r in history.records]
                history.malicious = [
                    (float(timestamp), str(behaviour))
                    for timestamp, behaviour in entry["malicious"]
                ]
                histories[bytes.fromhex(node_hex)] = history
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad credit state: {exc}") from exc
        self._seq = seq
        self._history = histories
        self._records_by_hash = records_by_hash
        self._weight_overrides = overrides
        # Re-resolve against the live provider where possible: imported
        # weights are the frozen fallback for pruned transactions only.
        for history in histories.values():
            for record in history.records:
                record.weight = self._transaction_weight(record.tx_hash)

    def forget_before(self, node_id: bytes, cutoff: float) -> int:
        """Prune transaction records older than *cutoff* (they can no
        longer enter the CrP window).  Malicious records are *never*
        pruned — Eqn. 4's penalties decay but "cannot be eliminated over
        time".  Returns how many records were dropped.

        O(log n + dropped): the prune point is found by bisection and
        only the dropped prefix is touched, never the retained suffix.
        """
        history = self._history.get(node_id)
        if history is None:
            return 0
        keep = bisect_left(history.timestamps, cutoff)
        if keep == 0:
            return 0
        for record in history.records[:keep]:
            siblings = self._records_by_hash.get(record.tx_hash)
            if siblings is not None:
                siblings.remove(record)
                if not siblings:
                    del self._records_by_hash[record.tx_hash]
        del history.records[:keep]
        del history.timestamps[:keep]
        history.invalidate_window()
        return keep
