"""The B-IoT system facade: build and run a smart-factory deployment.

Wires the whole architecture of Fig. 3 together — one manager, a set of
gateway full nodes, and wireless-sensor light nodes — over the
discrete-event network, with the credit-based consensus and data
authority management active end to end.

Typical use (see ``examples/smart_factory.py``)::

    system = BIoTSystem.build(BIoTConfig(device_count=6, seed=7))
    system.initialize()           # workflow steps 1-3
    system.start_devices()        # steps 4-5, repeating
    system.run_for(90.0)
    print(system.summary())
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.consensus import (
    CreditBasedConsensus,
    DEFAULT_INITIAL_DIFFICULTY,
    DifficultyPolicy,
    InverseDifficultyPolicy,
)
from ..core.credit import CreditParameters, CreditRegistry
from ..crypto.keys import KeyPair
from ..devices.sensors import SENSOR_TYPES, make_sensor
from ..faults.backoff import BackoffPolicy
from ..network.aio import AsyncioScheduler, AsyncioTransport, NodeRunner
from ..network.network import Network
from ..network.simulator import EventScheduler
from ..network.transport import BACKBONE_LINK, WIRELESS_SENSOR_LINK, LatencyModel
from ..tangle.tip_selection import TipSelector, WeightedRandomWalkSelector
from ..telemetry.lifecycle import NULL_LIFECYCLE, LifecycleTracker
from ..telemetry.registry import NULL_REGISTRY, MetricsRegistry
from ..telemetry.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..nodes.full_node import FullNode
    from ..nodes.light_node import LightNode
    from ..nodes.manager import ManagerNode

__all__ = ["BIoTConfig", "BIoTSystem"]


@dataclass(frozen=True)
class BIoTConfig:
    """Deployment parameters for a simulated smart factory.

    Attributes:
        gateway_count: full nodes besides the manager.
        device_count: wireless sensors (light nodes).
        sensor_cycle: sensor types assigned round-robin to devices.
        report_interval: seconds between a device's submissions.
        initial_difficulty: the PoW difficulty a neutral node gets.
        credit_params: the Eqn. 2–5 parameters.
        tip_alpha: weight bias of the gateways' MCMC tip selection
            (None selects uniform-random tips, the paper's baseline).
        seed: master seed; every stochastic component derives from it.
        wireless_link / backbone_link: latency models.
        enforce_pow: cryptographically verify PoW nonces at gateways.
        token_allocation: initial token balance minted per device.
        retry_policy: the :class:`~repro.faults.backoff.BackoffPolicy`
            full nodes use for recovery loops (key-distribution
            retransmits, parent re-requests).  None = the library
            default.
        telemetry: collect metrics and spans into a shared
            :class:`~repro.telemetry.MetricsRegistry` /
            :class:`~repro.telemetry.Tracer` pair (sim-clock
            timestamps).  Off by default: the null registry keeps the
            hot paths at zero measurable overhead.
        storage_backend: durable store behind each full node —
            ``"memory"`` (default; identical to the pre-storage
            behaviour), ``"file"`` (append-only JSONL log) or
            ``"sqlite"``.  Durable backends journal every attached
            transaction and enable crash/restart recovery from disk.
        storage_dir: directory the durable backends lay per-node
            stores under; required when *storage_backend* is not
            ``"memory"``, and must be empty for a fresh deployment
            (restores go through :meth:`~repro.nodes.full_node.
            FullNode.cold_restore`, never through ``build``).
        crypto_backend: Ed25519 implementation every full node verifies
            with — ``"reference"`` (default; the from-scratch module)
            or ``"accel"`` (precomputed tables, wNAF double-scalar and
            batch verification; see :mod:`repro.crypto.accel`).  Both
            accept exactly the same signatures, so simulation results
            are bit-identical either way.
        pow_workers: worker processes in the deployment-shared
            :class:`~repro.crypto.accel.CryptoPool`.  0 (default)
            creates no pool; with N >= 1, real PoW grinding and batch
            signature checks fan out across N processes with results
            identical to sequential execution (the pool lives at
            deployment level, never inside event handlers, so the
            discrete-event schedule is untouched).
        gossip_batch_size: max transactions a full node coalesces into
            one ``gossip_batch`` message when a burst ingests together;
            1 (default) keeps the classic one-flood-per-transaction
            wire behaviour.
        transport: ``"sim"`` (default) runs the deployment on the
            discrete-event simulator — bit-deterministic, driven by
            :meth:`BIoTSystem.initialize` / :meth:`BIoTSystem.run_for`.
            ``"asyncio"`` hosts every node on its own
            :class:`~repro.network.aio.AsyncioTransport` over real
            localhost TCP — convergence-deterministic, driven from a
            running event loop by :meth:`BIoTSystem.start_fleet` /
            :meth:`BIoTSystem.initialize_async` /
            :meth:`BIoTSystem.run_for_async`.
        listen_host: interface full nodes bind their TCP listeners to
            (asyncio transport only).
        listen_base_port: first listen port; full node *i* binds
            ``listen_base_port + i``.  0 (default) binds ephemeral
            ports, published through the fleet's shared directory —
            the right choice for tests running in parallel.
        time_scale: simulated seconds per wall-clock second on the
            asyncio transport (the :class:`~repro.network.aio.
            AsyncClock` ratio); >1 compresses protocol timers so wire
            tests finish quickly.  Ignored by the simulator, whose
            virtual clock needs no scaling.
        advertise_host: the host peers should dial to reach this
            deployment's nodes (asyncio transport only).  Defaults to
            the listen host; set it when listening on a wildcard
            address (``0.0.0.0``) or behind NAT.
        discovery_seeds: ``address=host:port`` seed-node specs
            (asyncio transport only).  When non-empty, every full node
            runs a :class:`~repro.network.discovery.DiscoveryService`
            and bootstraps into the *external* fleet those seeds
            anchor — the multi-process deployment path, where no
            shared in-process directory exists.  Empty (default) keeps
            the single-process behaviour: peers resolve through the
            deployment's shared directory.
    """

    gateway_count: int = 2
    device_count: int = 4
    sensor_cycle: Tuple[str, ...] = (
        "temperature", "power", "vibration", "machine-status", "humidity",
    )
    report_interval: float = 3.0
    initial_difficulty: int = DEFAULT_INITIAL_DIFFICULTY
    credit_params: CreditParameters = field(default_factory=CreditParameters)
    tip_alpha: Optional[float] = None
    seed: int = 42
    wireless_link: LatencyModel = WIRELESS_SENSOR_LINK
    backbone_link: LatencyModel = BACKBONE_LINK
    enforce_pow: bool = True
    token_allocation: int = 1000
    retry_policy: Optional[BackoffPolicy] = None
    telemetry: bool = False
    trace_sample_every: int = 1
    storage_backend: str = "memory"
    storage_dir: Optional[str] = None
    crypto_backend: str = "reference"
    pow_workers: int = 0
    gossip_batch_size: int = 1
    transport: str = "sim"
    listen_host: str = "127.0.0.1"
    listen_base_port: int = 0
    time_scale: float = 1.0
    advertise_host: Optional[str] = None
    discovery_seeds: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.gateway_count < 1:
            raise ValueError("need at least one gateway")
        if self.device_count < 1:
            raise ValueError("need at least one device")
        if self.trace_sample_every < 1:
            raise ValueError("trace_sample_every must be >= 1")
        for sensor_type in self.sensor_cycle:
            if sensor_type not in SENSOR_TYPES:
                raise ValueError(f"unknown sensor type {sensor_type!r}")
        if self.storage_backend not in ("memory", "file", "sqlite"):
            raise ValueError(
                f"unknown storage backend {self.storage_backend!r} "
                f"(known: memory, file, sqlite)")
        from ..crypto.accel import CRYPTO_BACKENDS
        if self.crypto_backend not in CRYPTO_BACKENDS:
            raise ValueError(
                f"unknown crypto backend {self.crypto_backend!r} "
                f"(known: {', '.join(CRYPTO_BACKENDS)})")
        if self.pow_workers < 0:
            raise ValueError("pow_workers must be >= 0")
        if self.gossip_batch_size < 1:
            raise ValueError("gossip_batch_size must be >= 1")
        if self.transport not in ("sim", "asyncio"):
            raise ValueError(
                f"unknown transport {self.transport!r} "
                f"(known: sim, asyncio)")
        if not (0 <= self.listen_base_port <= 65535):
            raise ValueError("listen_base_port must be in [0, 65535]")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.discovery_seeds and self.transport != "asyncio":
            raise ValueError(
                "discovery_seeds requires transport='asyncio' — the "
                "simulator resolves peers through its own directory")
        from ..network.discovery import parse_seed
        for spec in self.discovery_seeds:
            parse_seed(spec)  # raises ValueError on malformed specs


class BIoTSystem:
    """A fully wired smart-factory simulation."""

    def __init__(self, *, config: BIoTConfig, scheduler,
                 network: Optional[Network], manager: ManagerNode,
                 gateways: List[FullNode], devices: List[LightNode],
                 device_keys: Dict[str, KeyPair],
                 gateway_keys: Dict[str, KeyPair],
                 crypto_pool=None,
                 runners: Optional[List[NodeRunner]] = None,
                 directory: Optional[Dict[str, Tuple[str, int]]] = None,
                 discovery: Optional[List[object]] = None,
                 telemetry=NULL_REGISTRY, tracer=NULL_TRACER,
                 lifecycle=NULL_LIFECYCLE):
        self.config = config
        self.scheduler = scheduler
        self.network = network
        self.runners = runners
        self.directory = directory
        self.discovery = discovery if discovery is not None else []
        self.manager = manager
        self.gateways = gateways
        self.devices = devices
        self.device_keys = device_keys
        self.gateway_keys = gateway_keys
        self.telemetry = telemetry
        self.tracer = tracer
        self.lifecycle = lifecycle
        self.crypto_pool = crypto_pool
        self.initialized = False

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, config: BIoTConfig = BIoTConfig()) -> "BIoTSystem":
        """Construct every node, link and identity for *config*."""
        # Imported here (not at module top) because the node classes
        # themselves import repro.core — a lazy import breaks the cycle.
        from ..nodes.full_node import FullNode
        from ..nodes.light_node import LightNode
        from ..nodes.manager import ManagerNode

        master = random.Random(config.seed)
        asyncio_mode = config.transport == "asyncio"
        scheduler = (AsyncioScheduler(time_scale=config.time_scale)
                     if asyncio_mode else EventScheduler())
        if config.telemetry:
            telemetry = MetricsRegistry(scheduler.clock)
            tracer = Tracer(scheduler.clock)
            lifecycle = LifecycleTracker(
                scheduler.clock, tracer=tracer, registry=telemetry,
                sample_every=config.trace_sample_every)
            # Causal propagation across deferred callbacks: the
            # scheduler captures the ambient trace context at schedule
            # time and restores it around execution.  With telemetry
            # off the binder stays None and step() takes the bare path.
            scheduler.trace_binder = tracer
        else:
            telemetry = NULL_REGISTRY
            tracer = NULL_TRACER
            lifecycle = NULL_LIFECYCLE
        network: Optional[Network] = None
        directory: Optional[Dict[str, Tuple[str, int]]] = None
        runners: Optional[List[NodeRunner]] = None
        if asyncio_mode:
            directory = {}
            runners = []
        else:
            network = Network(
                scheduler,
                rng=random.Random(master.randrange(2 ** 63)),
                telemetry=telemetry,
                tracer=tracer,
            )

        def attach(node, *, listen_index: Optional[int] = None) -> None:
            """Sim mode: attach to the shared Network.  Asyncio mode:
            give the node its own TCP transport (full nodes listen,
            devices stay connect-only) sharing one directory."""
            if not asyncio_mode:
                network.attach(node)
                return
            transport = AsyncioTransport(
                scheduler,
                directory=directory,
                rng=random.Random(master.randrange(2 ** 63)),
                reconnect_policy=config.retry_policy,
                telemetry=telemetry,
                tracer=tracer,
            )
            listen = None
            if listen_index is not None:
                port = (0 if config.listen_base_port == 0
                        else config.listen_base_port + listen_index)
                listen = (config.listen_host, port)
            runners.append(NodeRunner(node, transport, listen=listen,
                                      advertise_host=config.advertise_host))

        # One verification cache and one decode cache for the whole
        # deployment: verification of an immutable transaction is
        # deterministic, so the first full node to verify (or decode) a
        # flooded transaction pays and every later hop hits.  These are
        # simulation-level shortcuts — each node still *logically*
        # verifies; the caches only deduplicate the identical crypto.
        from ..tangle.transaction import TransactionDecodeCache
        from ..tangle.validation import VerificationCache

        verification_cache = VerificationCache(telemetry=telemetry)
        decode_cache = TransactionDecodeCache(telemetry=telemetry)

        # One worker pool for the whole deployment (or none): pooling
        # at node level would fork per node and, worse, tempt event
        # handlers into non-deterministic completion ordering.
        crypto_pool = None
        if config.pow_workers > 0:
            from ..crypto.accel import CryptoPool
            crypto_pool = CryptoPool(config.pow_workers)

        manager_keys = KeyPair.generate(seed=f"manager:{config.seed}".encode())
        device_keys = {
            f"device-{i}": KeyPair.generate(seed=f"device:{config.seed}:{i}".encode())
            for i in range(config.device_count)
        }
        genesis = ManagerNode.create_genesis(
            manager_keys,
            network_name=f"smart-factory-{config.seed}",
            token_allocations=[
                (keys.node_id, config.token_allocation)
                for keys in device_keys.values()
            ],
        )

        def new_consensus() -> CreditBasedConsensus:
            registry = CreditRegistry(config.credit_params,
                                      telemetry=telemetry)
            policy: DifficultyPolicy = InverseDifficultyPolicy(
                initial_difficulty=config.initial_difficulty,
            )
            return CreditBasedConsensus(
                registry, policy=policy,
                max_parent_age=config.credit_params.delta_t,
            )

        def new_tip_selector() -> TipSelector:
            if config.tip_alpha is None:
                from ..tangle.tip_selection import UniformRandomTipSelector
                return UniformRandomTipSelector()
            return WeightedRandomWalkSelector(alpha=config.tip_alpha)

        manager = ManagerNode(
            "manager", manager_keys, genesis,
            consensus=new_consensus(),
            tip_selector=new_tip_selector(),
            rng=random.Random(master.randrange(2 ** 63)),
            enforce_pow=config.enforce_pow,
            retry_policy=config.retry_policy,
            verification_cache=verification_cache,
            decode_cache=decode_cache,
            crypto_backend=config.crypto_backend,
            crypto_pool=crypto_pool,
            gossip_batch_size=config.gossip_batch_size,
            telemetry=telemetry,
            lifecycle=lifecycle,
        )
        attach(manager, listen_index=0)

        gateways: List[FullNode] = []
        gateway_keys = {
            f"gateway-{i}": KeyPair.generate(
                seed=f"gateway:{config.seed}:{i}".encode()
            )
            for i in range(config.gateway_count)
        }
        for i in range(config.gateway_count):
            gateway = FullNode(
                f"gateway-{i}", genesis,
                consensus=new_consensus(),
                tip_selector=new_tip_selector(),
                rng=random.Random(master.randrange(2 ** 63)),
                enforce_pow=config.enforce_pow,
                retry_policy=config.retry_policy,
                verification_cache=verification_cache,
                decode_cache=decode_cache,
                crypto_backend=config.crypto_backend,
                crypto_pool=crypto_pool,
                gossip_batch_size=config.gossip_batch_size,
                telemetry=telemetry,
                lifecycle=lifecycle,
            )
            attach(gateway, listen_index=i + 1)
            gateways.append(gateway)

        # Full mesh among full nodes over the backbone.
        full_nodes: List[FullNode] = [manager] + gateways
        for a in full_nodes:
            for b in full_nodes:
                if a.address != b.address:
                    a.add_peer(b.address)
                    if network is not None:
                        network.set_link(a.address, b.address,
                                         config.backbone_link)

        if config.storage_backend != "memory":
            # Imported lazily: repro.storage is optional plumbing the
            # default in-memory deployment never touches.
            from ..storage.errors import StorageError
            from ..storage.persistence import NodePersistence
            from ..storage.store import open_store

            if config.storage_dir is None:
                raise StorageError(
                    f"storage_backend={config.storage_backend!r} needs "
                    f"storage_dir")
            for node in full_nodes:
                store = open_store(config.storage_backend,
                                   config.storage_dir, node=node.address,
                                   telemetry=telemetry)
                if len(store):
                    raise StorageError(
                        f"storage_dir already holds a log for "
                        f"{node.address}: a fresh deployment needs an "
                        f"empty storage_dir; restoring an existing one "
                        f"goes through FullNode.cold_restore")
                node.attach_persistence(
                    NodePersistence(store, telemetry=telemetry))

        # Multi-process deployments: every full node bootstraps into
        # the external fleet through the configured seed nodes; the
        # in-process directory still short-circuits local lookups.
        discovery: List[object] = []
        if asyncio_mode and config.discovery_seeds:
            from ..network.discovery import DiscoveryService, parse_seed
            seeds = [parse_seed(spec) for spec in config.discovery_seeds]
            for runner, node in zip(runners, full_nodes):
                discovery.append(DiscoveryService(
                    runner.transport, address=node.address, role="full",
                    seeds=seeds, policy=config.retry_policy,
                    on_full_peer=node.add_peer, telemetry=telemetry))

        devices: List[LightNode] = []
        for i, (address, keys) in enumerate(sorted(device_keys.items())):
            sensor_type = config.sensor_cycle[i % len(config.sensor_cycle)]
            gateway = gateways[i % len(gateways)]
            device = LightNode(
                address, keys,
                gateway=gateway.address,
                manager=manager_keys.public,
                sensor=make_sensor(sensor_type, seed=config.seed + i),
                report_interval=config.report_interval,
                rng=random.Random(master.randrange(2 ** 63)),
                pow_pool=crypto_pool,
                telemetry=telemetry,
                lifecycle=lifecycle,
            )
            # Devices listen as well: the manager pushes key
            # distributions to them, so on TCP they must be dialable
            # before they ever speak.
            attach(device, listen_index=1 + config.gateway_count + i)
            if network is not None:
                network.set_link(address, gateway.address,
                                 config.wireless_link)
                network.set_link(address, manager.address,
                                 config.wireless_link)
            devices.append(device)

        return cls(
            config=config,
            scheduler=scheduler,
            network=network,
            manager=manager,
            gateways=gateways,
            devices=devices,
            device_keys=device_keys,
            gateway_keys=gateway_keys,
            crypto_pool=crypto_pool,
            runners=runners,
            directory=directory,
            discovery=discovery if asyncio_mode else None,
            telemetry=telemetry,
            tracer=tracer,
            lifecycle=lifecycle,
        )

    @property
    def full_nodes(self) -> List["FullNode"]:
        """Every full node: the manager first, then the gateways."""
        return [self.manager] + self.gateways

    @property
    def asyncio_mode(self) -> bool:
        """True when the deployment runs on real TCP transports."""
        return self.runners is not None

    def _require_sim(self, what: str) -> None:
        if self.runners is not None:
            raise RuntimeError(
                f"{what} drives the discrete-event scheduler and is "
                f"unavailable with transport='asyncio'; use start_fleet"
                f"/initialize_async/run_for_async from a running event "
                f"loop instead")

    def _require_asyncio(self, what: str) -> None:
        if self.runners is None:
            raise RuntimeError(
                f"{what} requires transport='asyncio' (this deployment "
                f"runs on the discrete-event simulator)")

    # -- workflow steps 1-3 --------------------------------------------------

    def initialize(self, *, settle_seconds: float = 2.0) -> None:
        """Run workflow steps 1–3: register gateways, authorise devices,
        distribute keys to sensitive-data devices."""
        self._require_sim("initialize")
        with self.tracer.span("biot.initialize",
                              gateways=len(self.gateways),
                              devices=len(self.devices)):
            with self.tracer.span("biot.register_and_authorize"):
                # Step 1: record gateway identifiers on the ledger.
                self.manager.register_gateways(
                    [keys.public for keys in self.gateway_keys.values()]
                )
                # Step 2: authorise the device population (Eqn. 1).
                self.manager.authorize_devices(
                    [keys.public for keys in self.device_keys.values()]
                )
                self.scheduler.run_until(
                    self.scheduler.clock.now() + settle_seconds)
            with self.tracer.span("biot.key_distribution"):
                # Step 3: distribute keys to sensitive-data devices.
                for device in self.devices:
                    if device.sensor.sensitive:
                        self.manager.distribute_key(device.address,
                                                    device.keypair.public)
                self.scheduler.run_until(
                    self.scheduler.clock.now() + settle_seconds)
        self.initialized = True

    # -- workflow steps 4-5 --------------------------------------------------

    def start_devices(self, *, stagger: float = 0.25) -> None:
        """Kick off every device's reporting loop (staggered starts)."""
        for index, device in enumerate(self.devices):
            device.start(initial_delay=index * stagger)

    def run_for(self, seconds: float) -> None:
        """Advance the simulation by *seconds*."""
        self._require_sim("run_for")
        with self.tracer.span("biot.run", seconds=seconds):
            self.scheduler.run_until(self.scheduler.clock.now() + seconds)

    # -- asyncio-transport lifecycle -----------------------------------------

    async def start_fleet(self) -> None:
        """Boot every :class:`~repro.network.aio.NodeRunner`: full
        nodes bind their TCP listeners (publishing bound addresses into
        the shared directory), devices come up connect-only.  Must run
        inside the event loop that will host the fleet."""
        self._require_asyncio("start_fleet")
        for runner in self.runners:
            await runner.start()
        for service in self.discovery:
            service.start()

    def listen_addresses(self) -> Dict[str, Tuple[str, int]]:
        """Bound ``address -> (host, port)`` for every listening node
        (meaningful after :meth:`start_fleet`; ephemeral ports included,
        which is how tests discover what the OS assigned)."""
        self._require_asyncio("listen_addresses")
        return {
            runner.address: runner.bound_address
            for runner in self.runners
            if runner.bound_address is not None
        }

    async def stop_fleet(self) -> None:
        """Gracefully shut the fleet down (reverse boot order):
        outboxes flush briefly, then listeners, connections and tasks
        are torn down.  Idempotent."""
        self._require_asyncio("stop_fleet")
        for runner in reversed(self.runners):
            await runner.stop()
        if isinstance(self.scheduler, AsyncioScheduler):
            self.scheduler.cancel_all()

    async def initialize_async(self, *, settle_seconds: float = 2.0) -> None:
        """Workflow steps 1–3 over the wire.

        Same protocol steps as :meth:`initialize`; settling means
        *waiting* (``settle_seconds`` of simulated time, wall-scaled by
        ``time_scale``) while gossip propagates, instead of draining a
        virtual event queue."""
        self._require_asyncio("initialize_async")
        settle_wall = self.scheduler.clock.to_wall(settle_seconds)
        with self.tracer.span("biot.initialize",
                              gateways=len(self.gateways),
                              devices=len(self.devices)):
            with self.tracer.span("biot.register_and_authorize"):
                self.manager.register_gateways(
                    [keys.public for keys in self.gateway_keys.values()]
                )
                self.manager.authorize_devices(
                    [keys.public for keys in self.device_keys.values()]
                )
                await asyncio.sleep(settle_wall)
            with self.tracer.span("biot.key_distribution"):
                for device in self.devices:
                    if device.sensor.sensitive:
                        self.manager.distribute_key(device.address,
                                                    device.keypair.public)
                await asyncio.sleep(settle_wall)
        self.initialized = True

    async def run_for_async(self, seconds: float) -> None:
        """Let the fleet run for *seconds* of simulated time (wall
        time scaled by ``time_scale``); devices report and gossip flows
        on real sockets meanwhile."""
        self._require_asyncio("run_for_async")
        with self.tracer.span("biot.run", seconds=seconds):
            await asyncio.sleep(self.scheduler.clock.to_wall(seconds))

    def close(self) -> None:
        """Release deployment-level resources (the crypto worker pool).

        Idempotent; a system without a pool (``pow_workers=0``, the
        default) has nothing to release and this is a no-op.
        """
        if self.crypto_pool is not None:
            self.crypto_pool.close()

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Aggregate statistics across the deployment."""
        accepted = sum(d.stats.submissions_accepted for d in self.devices)
        sent = sum(d.stats.submissions_sent for d in self.devices)
        full_nodes = [self.manager] + self.gateways
        summary: Dict[str, object] = {
            "time": self.scheduler.clock.now(),
            "devices": len(self.devices),
            "gateways": len(self.gateways),
            "submissions_sent": sent,
            "submissions_accepted": accepted,
            "tangle_sizes": {n.address: n.tangle_size for n in full_nodes},
            "messages_delivered": (
                self.network.messages_delivered
                if self.network is not None else
                sum(r.transport.messages_delivered for r in self.runners)),
            "messages_dropped": (
                self.network.messages_dropped
                if self.network is not None else
                sum(r.transport.messages_dropped for r in self.runners)),
            "mean_pow_seconds": (
                sum(d.stats.mean_pow_seconds for d in self.devices)
                / len(self.devices)
            ),
            "key_distributions": self.manager.distributor.completed_distributions,
        }
        if self.telemetry.enabled:
            summary["metrics"] = self.telemetry.snapshot()
        return summary
