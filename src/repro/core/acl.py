"""Device authorisation: the manager's on-ledger access-control list.

Section IV-A: "The public key of the manager will be hard-coded into
genesis config of blockchain, which means only the manager has the
rights to publish or update the authorization list of devices.  Then
the manager can manage IoT devices (authorize/deauthorize) through
posting a new transaction where records public keys of authorized IoT
devices":

    TX = Sign_SKM(PK_d1, PK_d2, ..., PK_dn)                      (Eqn. 1)

Gateways rebuild :class:`AuthorizationList` state from ACL transactions
and "decline to provide services for unauthorized IoT devices", which
is the system's Sybil/DDoS defence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..crypto.keys import PublicIdentity
from ..tangle.errors import MalformedPayloadError, UnauthorizedIssuerError
from ..tangle.tangle import Tangle
from ..tangle.transaction import Transaction, TransactionKind

__all__ = [
    "GenesisConfig",
    "AclAction",
    "AclPayload",
    "AuthorizationList",
    "Role",
]


class Role:
    """Entity roles recorded by ACL transactions."""

    DEVICE = "device"
    GATEWAY = "gateway"


class AclAction:
    """ACL operations."""

    AUTHORIZE = "authorize"
    DEAUTHORIZE = "deauthorize"


@dataclass(frozen=True)
class GenesisConfig:
    """The genesis payload: the hard-coded trust anchor.

    Attributes:
        manager: the primary manager's public identity.
        network_name: human-readable deployment label.
        token_allocations: optional initial balances for the token
            ledger, keyed by node id.
        extra_managers: additional manager identities.  "In each smart
            factory, the existence of one or more managers are
            permitted" (Section IV-A) — a federation of factories on one
            public tangle hard-codes every factory's manager here, and
            each may publish ACL updates.
    """

    manager: PublicIdentity
    network_name: str = "b-iot"
    token_allocations: Tuple[Tuple[bytes, int], ...] = ()
    extra_managers: Tuple[PublicIdentity, ...] = ()

    @property
    def all_managers(self) -> Tuple[PublicIdentity, ...]:
        """Every identity allowed to publish ACL updates."""
        return (self.manager,) + self.extra_managers

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "manager": self.manager.to_bytes().hex(),
                "network_name": self.network_name,
                "token_allocations": [
                    [account.hex(), amount]
                    for account, amount in self.token_allocations
                ],
                "extra_managers": [
                    identity.to_bytes().hex()
                    for identity in self.extra_managers
                ],
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "GenesisConfig":
        try:
            fields = json.loads(data.decode())
            allocations = tuple(
                (bytes.fromhex(account), int(amount))
                for account, amount in fields.get("token_allocations", [])
            )
            extra = tuple(
                PublicIdentity.from_bytes(bytes.fromhex(encoded))
                for encoded in fields.get("extra_managers", [])
            )
            return cls(
                manager=PublicIdentity.from_bytes(bytes.fromhex(fields["manager"])),
                network_name=fields.get("network_name", "b-iot"),
                token_allocations=allocations,
                extra_managers=extra,
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise MalformedPayloadError(f"bad genesis config: {exc}") from exc

    @classmethod
    def from_genesis(cls, genesis: Transaction) -> "GenesisConfig":
        if not genesis.is_genesis:
            raise ValueError("not a genesis transaction")
        return cls.from_bytes(genesis.payload)


@dataclass(frozen=True)
class AclPayload:
    """One authorisation-list update (the body of an ACL transaction)."""

    action: str
    role: str
    identities: Tuple[PublicIdentity, ...]

    def __post_init__(self):
        if self.action not in (AclAction.AUTHORIZE, AclAction.DEAUTHORIZE):
            raise ValueError(f"unknown ACL action {self.action!r}")
        if self.role not in (Role.DEVICE, Role.GATEWAY):
            raise ValueError(f"unknown ACL role {self.role!r}")
        if not self.identities:
            raise ValueError("ACL update must name at least one identity")

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "action": self.action,
                "role": self.role,
                "identities": [
                    identity.to_bytes().hex() for identity in self.identities
                ],
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "AclPayload":
        try:
            fields = json.loads(data.decode())
            identities = tuple(
                PublicIdentity.from_bytes(bytes.fromhex(encoded))
                for encoded in fields["identities"]
            )
            return cls(
                action=fields["action"],
                role=fields["role"],
                identities=identities,
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise MalformedPayloadError(f"bad ACL payload: {exc}") from exc


class AuthorizationList:
    """Gateway-side ACL state, rebuilt from the ledger.

    Managers (from the genesis config — one or several) are implicitly
    authorised.  Everything else must be authorised by an ACL
    transaction *signed by a manager* — updates from any other key raise
    :class:`~repro.tangle.errors.UnauthorizedIssuerError` and are never
    applied.
    """

    def __init__(self, manager: PublicIdentity,
                 extra_managers: Tuple[PublicIdentity, ...] = ()):
        self.manager = manager
        self._manager_ids: Set[bytes] = {manager.node_id}
        self._manager_ids.update(m.node_id for m in extra_managers)
        self._authorized: Dict[str, Set[bytes]] = {
            Role.DEVICE: set(),
            Role.GATEWAY: set(),
        }
        self._identities: Dict[bytes, PublicIdentity] = {
            manager.node_id: manager
        }
        for identity in extra_managers:
            self._identities[identity.node_id] = identity
        self.updates_applied = 0

    @classmethod
    def from_genesis(cls, genesis: Transaction) -> "AuthorizationList":
        config = GenesisConfig.from_genesis(genesis)
        return cls(config.manager, config.extra_managers)

    def is_manager(self, node_id: bytes) -> bool:
        """Whether *node_id* may publish ACL updates."""
        return node_id in self._manager_ids

    @classmethod
    def from_tangle(cls, tangle: Tangle) -> "AuthorizationList":
        """Replay every ACL transaction in arrival order."""
        acl = cls.from_genesis(tangle.genesis)
        for tx in tangle:
            if tx.kind == TransactionKind.ACL:
                acl.apply(tx)
        return acl

    # -- updates ---------------------------------------------------------

    def apply(self, tx: Transaction) -> AclPayload:
        """Apply one ACL transaction; only a manager may issue them."""
        if tx.kind != TransactionKind.ACL:
            raise MalformedPayloadError(f"{tx.short_hash} is not an ACL update")
        if not self.is_manager(tx.issuer.node_id):
            raise UnauthorizedIssuerError(
                f"ACL update {tx.short_hash} signed by {tx.issuer.short_id}, "
                f"not a manager"
            )
        payload = AclPayload.from_bytes(tx.payload)
        target = self._authorized[payload.role]
        for identity in payload.identities:
            if payload.action == AclAction.AUTHORIZE:
                target.add(identity.node_id)
                self._identities[identity.node_id] = identity
            else:
                target.discard(identity.node_id)
        self.updates_applied += 1
        return payload

    # -- queries ---------------------------------------------------------

    def is_authorized(self, node_id: bytes) -> bool:
        """Whether *node_id* may submit transactions (any role, or a
        manager itself)."""
        if node_id in self._manager_ids:
            return True
        return any(node_id in members for members in self._authorized.values())

    def is_authorized_device(self, node_id: bytes) -> bool:
        return node_id in self._authorized[Role.DEVICE]

    def is_registered_gateway(self, node_id: bytes) -> bool:
        return node_id in self._authorized[Role.GATEWAY]

    def authorized_devices(self) -> List[bytes]:
        return sorted(self._authorized[Role.DEVICE])

    def registered_gateways(self) -> List[bytes]:
        return sorted(self._authorized[Role.GATEWAY])

    def identity_for(self, node_id: bytes) -> Optional[PublicIdentity]:
        """Look up the full identity recorded for *node_id*."""
        return self._identities.get(node_id)

    # -- state transfer ----------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Serialisable ACL state, for node snapshots.

        Needed because ACL *transactions* may be pruned while their
        *effect* (who is authorised) must survive.
        """
        return {
            "devices": [
                self._identities[node_id].to_bytes().hex()
                for node_id in sorted(self._authorized[Role.DEVICE])
            ],
            "gateways": [
                self._identities[node_id].to_bytes().hex()
                for node_id in sorted(self._authorized[Role.GATEWAY])
            ],
            "updates_applied": self.updates_applied,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`export_state` output (replaces current sets)."""
        try:
            devices = [
                PublicIdentity.from_bytes(bytes.fromhex(encoded))
                for encoded in state["devices"]
            ]
            gateways = [
                PublicIdentity.from_bytes(bytes.fromhex(encoded))
                for encoded in state["gateways"]
            ]
            updates = int(state.get("updates_applied", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise MalformedPayloadError(f"bad ACL state: {exc}") from exc
        self._authorized[Role.DEVICE] = {d.node_id for d in devices}
        self._authorized[Role.GATEWAY] = {g.node_id for g in gateways}
        for identity in devices + gateways:
            self._identities[identity.node_id] = identity
        self.updates_applied = updates

    # -- enforcement -----------------------------------------------------

    def validator(self, tangle: Tangle, tx: Transaction) -> None:
        """Tangle validator enforcing the access policy.

        * ACL updates must come from the manager;
        * every other transaction kind must come from an authorised
          identity — "full nodes can decline to provide services for
          unauthorized IoT devices" (Section VI-C).
        """
        if tx.kind == TransactionKind.ACL:
            if not self.is_manager(tx.issuer.node_id):
                raise UnauthorizedIssuerError(
                    f"ACL update from non-manager {tx.issuer.short_id}"
                )
            return
        if not self.is_authorized(tx.issuer.node_id):
            raise UnauthorizedIssuerError(
                f"{tx.kind} transaction from unauthorised issuer "
                f"{tx.issuer.short_id}"
            )

    @staticmethod
    def make_update(identities: Iterable[PublicIdentity], *,
                    action: str = AclAction.AUTHORIZE,
                    role: str = Role.DEVICE) -> AclPayload:
        """Convenience constructor for an ACL payload."""
        return AclPayload(action=action, role=role, identities=tuple(identities))
