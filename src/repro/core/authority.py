"""Data authority management (Section IV-C, Fig. 4).

Sensor data on a transparent ledger needs encryption; symmetric
encryption needs key distribution.  The paper's method, reproduced here
in full:

* the manager generates one symmetric secret key ``SK_S`` per data
  group ("only done for one time");
* a three-message challenge–response protocol distributes it to each
  device that collects sensitive data, "without any central trust
  server"::

      M1 = Enc_PK_D { sign_SK_M(SK_S, TS1, nonce_a) }
      M2 = Enc_SK_S { sign_SK_D(nonce_b, TS2), nonce_a }
      M3 = Enc_SK_S { sign_SK_M(nonce_b, TS3) }

  Signatures stop tampering, timestamps stop replay, and the two
  nonce challenges prove (a) the device really decrypted M1 and
  (b) the manager really holds ``SK_S``;
* devices then AES-encrypt sensitive readings before posting them
  (:class:`DataProtector`); non-sensitive streams stay in the clear.

Public-key encryption is ECIES (:mod:`repro.crypto.ecies`); the
symmetric envelope is AES-CTR with an HMAC tag (encrypt-then-MAC).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..crypto import aes, ecies
from ..crypto.rand import randbytes
from ..crypto.kdf import constant_time_equal, hkdf, hmac_sha256
from ..crypto.keys import KeyPair, PublicIdentity
from ..devices.sensors import SensorReading

__all__ = [
    "KeyDistributionError",
    "StaleTimestampError",
    "ReplayError",
    "BadSignatureError",
    "ProtocolStateError",
    "symmetric_encrypt",
    "symmetric_decrypt",
    "ManagerKeyDistributor",
    "DeviceKeyAgent",
    "DataProtector",
    "DEFAULT_GROUP",
    "DEFAULT_MAX_SKEW",
]

DEFAULT_GROUP = "sensitive"
DEFAULT_MAX_SKEW = 5.0
"""Maximum accepted |now - TS| in seconds (replay-attack window)."""

_NONCE_SIZE = 16
_KEY_SIZE = 32


class KeyDistributionError(Exception):
    """Base class for key-distribution protocol failures."""


class StaleTimestampError(KeyDistributionError):
    """Message timestamp outside the freshness window (replay defence)."""


class ReplayError(KeyDistributionError):
    """A nonce was presented twice."""


class BadSignatureError(KeyDistributionError):
    """A protocol signature failed verification."""


class ProtocolStateError(KeyDistributionError):
    """Message arrived for an unknown or already-completed session."""


# -- symmetric envelope ----------------------------------------------------

def symmetric_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Authenticated symmetric envelope: nonce ‖ AES-CTR ‖ HMAC tag."""
    if len(key) != _KEY_SIZE:
        raise ValueError(f"symmetric key must be {_KEY_SIZE} bytes")
    enc_key = hkdf(key, info=b"biot-sym-enc", length=32)
    mac_key = hkdf(key, info=b"biot-sym-mac", length=32)
    nonce = randbytes(8)
    ciphertext = aes.ctr_encrypt(enc_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, nonce + ciphertext)
    return nonce + ciphertext + tag


def symmetric_decrypt(key: bytes, envelope: bytes) -> bytes:
    """Open a :func:`symmetric_encrypt` envelope; raises
    :class:`BadSignatureError` on tampering or a wrong key."""
    if len(key) != _KEY_SIZE:
        raise ValueError(f"symmetric key must be {_KEY_SIZE} bytes")
    if len(envelope) < 8 + 32:
        raise BadSignatureError("symmetric envelope too short")
    nonce, ciphertext, tag = envelope[:8], envelope[8:-32], envelope[-32:]
    enc_key = hkdf(key, info=b"biot-sym-enc", length=32)
    mac_key = hkdf(key, info=b"biot-sym-mac", length=32)
    if not constant_time_equal(tag, hmac_sha256(mac_key, nonce + ciphertext)):
        raise BadSignatureError("symmetric envelope tag mismatch")
    return aes.ctr_decrypt(enc_key, nonce, ciphertext)


# -- protocol records -------------------------------------------------------

def _signed_record(signer: KeyPair, fields: Dict[str, str]) -> bytes:
    body = json.dumps(fields, sort_keys=True).encode()
    signature = signer.sign(body)
    return json.dumps(
        {"body": fields, "sig": signature.hex()}, sort_keys=True
    ).encode()


def _open_record(expected_signer: PublicIdentity, data: bytes) -> Dict[str, str]:
    try:
        wrapper = json.loads(data.decode())
        fields = wrapper["body"]
        signature = bytes.fromhex(wrapper["sig"])
        body = json.dumps(fields, sort_keys=True).encode()
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise BadSignatureError(f"malformed protocol record: {exc}") from exc
    if not expected_signer.verify(body, signature):
        raise BadSignatureError(
            f"record not signed by expected party {expected_signer.short_id}"
        )
    return fields


def _check_freshness(timestamp: float, now: float, max_skew: float) -> None:
    if abs(now - timestamp) > max_skew:
        raise StaleTimestampError(
            f"timestamp {timestamp:.3f} outside ±{max_skew}s of now {now:.3f}"
        )


@dataclass
class _Session:
    device: PublicIdentity
    group: str
    nonce_a: bytes
    completed: bool = False


# -- manager side -----------------------------------------------------------

class ManagerKeyDistributor:
    """Manager side of the Fig. 4 protocol.

    One instance serves any number of devices and groups; per-device
    sessions are tracked by an opaque session id.

    Args:
        keypair: the manager's identity (signs M1 and M3).
        max_skew: freshness window for timestamps.
    """

    def __init__(self, keypair: KeyPair, *, max_skew: float = DEFAULT_MAX_SKEW):
        self.keypair = keypair
        self.max_skew = max_skew
        self._group_keys: Dict[str, bytes] = {}
        self._sessions: Dict[bytes, _Session] = {}
        self._seen_nonces: Set[bytes] = set()
        self.completed_distributions = 0

    def group_key(self, group: str = DEFAULT_GROUP) -> bytes:
        """Return (generating on first use) the symmetric key for *group*.

        "The step of generating symmetric secret key is only done for
        one time."
        """
        key = self._group_keys.get(group)
        if key is None:
            key = randbytes(_KEY_SIZE)
            self._group_keys[group] = key
        return key

    def rotate_group_key(self, group: str = DEFAULT_GROUP) -> bytes:
        """Replace a group key ("it is flexible to update symmetric keys
        if needed"); devices must re-run the protocol."""
        key = randbytes(_KEY_SIZE)
        self._group_keys[group] = key
        return key

    def initiate(self, device: PublicIdentity, *, now: float,
                 group: str = DEFAULT_GROUP) -> Tuple[bytes, bytes]:
        """Start a distribution: returns ``(session_id, M1 bytes)``."""
        key = self.group_key(group)
        nonce_a = randbytes(_NONCE_SIZE)
        record = _signed_record(self.keypair, {
            "key": key.hex(),
            "ts": repr(float(now)),
            "nonce_a": nonce_a.hex(),
            "group": group,
        })
        m1 = device.encrypt(record)
        session_id = randbytes(16)
        self._sessions[session_id] = _Session(
            device=device, group=group, nonce_a=nonce_a
        )
        return session_id, m1

    def handle_m2(self, session_id: bytes, m2: bytes, *, now: float) -> bytes:
        """Verify the device's response-challenge and emit M3."""
        session = self._sessions.get(session_id)
        if session is None:
            raise ProtocolStateError("unknown session")
        if session.completed:
            raise ProtocolStateError("session already completed")
        key = self.group_key(session.group)
        plaintext = symmetric_decrypt(key, m2)
        fields = _open_record(session.device, plaintext)
        try:
            echoed_nonce_a = bytes.fromhex(fields["nonce_a"])
            nonce_b = bytes.fromhex(fields["nonce_b"])
            timestamp = float(fields["ts"])
        except (KeyError, ValueError) as exc:
            raise BadSignatureError(f"malformed M2 fields: {exc}") from exc
        _check_freshness(timestamp, now, self.max_skew)
        if not constant_time_equal(echoed_nonce_a, session.nonce_a):
            raise BadSignatureError("device echoed the wrong nonce_a")
        if nonce_b in self._seen_nonces:
            raise ReplayError("nonce_b reused")
        self._seen_nonces.add(nonce_b)
        session.completed = True
        self.completed_distributions += 1
        record = _signed_record(self.keypair, {
            "nonce_b": nonce_b.hex(),
            "ts": repr(float(now)),
        })
        return symmetric_encrypt(key, record)

    def is_completed(self, session_id: bytes) -> bool:
        session = self._sessions.get(session_id)
        return bool(session and session.completed)


# -- device side ------------------------------------------------------------

class DeviceKeyAgent:
    """Device side of the Fig. 4 protocol.

    Args:
        keypair: the device's identity (decrypts M1, signs M2).
        manager: the manager's public identity, learned from the genesis
            config — only records signed by this key are accepted.
    """

    def __init__(self, keypair: KeyPair, manager: PublicIdentity, *,
                 max_skew: float = DEFAULT_MAX_SKEW):
        self.keypair = keypair
        self.manager = manager
        self.max_skew = max_skew
        self._pending: Dict[bytes, Tuple[str, bytes]] = {}  # nonce_b -> (group, key)
        self._keys: Dict[str, bytes] = {}
        self._seen_nonce_a: Set[bytes] = set()

    def handle_m1(self, m1: bytes, *, now: float) -> bytes:
        """Decrypt M1, verify the manager's signature and freshness,
        stage the key, and emit M2 proving successful decryption."""
        try:
            plaintext = self.keypair.decrypt(m1)
        except ecies.DecryptionError as exc:
            raise BadSignatureError(f"cannot decrypt M1: {exc}") from exc
        fields = _open_record(self.manager, plaintext)
        try:
            key = bytes.fromhex(fields["key"])
            timestamp = float(fields["ts"])
            nonce_a = bytes.fromhex(fields["nonce_a"])
            group = fields["group"]
        except (KeyError, ValueError) as exc:
            raise BadSignatureError(f"malformed M1 fields: {exc}") from exc
        if len(key) != _KEY_SIZE:
            raise BadSignatureError("distributed key has wrong size")
        _check_freshness(timestamp, now, self.max_skew)
        if nonce_a in self._seen_nonce_a:
            raise ReplayError("nonce_a reused (replayed M1)")
        self._seen_nonce_a.add(nonce_a)
        nonce_b = randbytes(_NONCE_SIZE)
        self._pending[nonce_b] = (group, key)
        record = _signed_record(self.keypair, {
            "nonce_a": nonce_a.hex(),
            "nonce_b": nonce_b.hex(),
            "ts": repr(float(now)),
        })
        return symmetric_encrypt(key, record)

    def handle_m3(self, m3: bytes, *, now: float) -> str:
        """Verify the manager's nonce_b echo and commit the staged key.

        Returns the group whose key was installed.
        """
        for nonce_b, (group, key) in list(self._pending.items()):
            try:
                plaintext = symmetric_decrypt(key, m3)
            except BadSignatureError:
                continue
            fields = _open_record(self.manager, plaintext)
            try:
                echoed = bytes.fromhex(fields["nonce_b"])
                timestamp = float(fields["ts"])
            except (KeyError, ValueError) as exc:
                raise BadSignatureError(f"malformed M3 fields: {exc}") from exc
            if not constant_time_equal(echoed, nonce_b):
                continue
            _check_freshness(timestamp, now, self.max_skew)
            self._keys[group] = key
            del self._pending[nonce_b]
            return group
        raise ProtocolStateError("M3 matches no pending session")

    def key_for(self, group: str = DEFAULT_GROUP) -> Optional[bytes]:
        """The installed key for *group*, or None before completion."""
        return self._keys.get(group)

    @property
    def installed_groups(self) -> Tuple[str, ...]:
        return tuple(sorted(self._keys))


# -- payload protection -------------------------------------------------------

_MARKER_PLAIN = 0x00
_MARKER_ENCRYPTED = 0x01
_MARKER_PLAIN_BATCH = 0x02
_MARKER_ENCRYPTED_BATCH = 0x03


class DataProtector:
    """Encrypts sensitive sensor payloads for the transparent ledger.

    "For those devices whose collected non-sensitive data, they do not
    need to encrypt sensor data" — :meth:`protect` encrypts exactly when
    the reading is marked sensitive *and* a group key is installed.
    """

    def __init__(self, keys: Optional[Dict[str, bytes]] = None):
        self._keys: Dict[str, bytes] = dict(keys or {})

    def install_key(self, group: str, key: bytes) -> None:
        if len(key) != _KEY_SIZE:
            raise ValueError(f"group key must be {_KEY_SIZE} bytes")
        self._keys[group] = key

    def has_key(self, group: str = DEFAULT_GROUP) -> bool:
        return group in self._keys

    def protect(self, reading: SensorReading, *,
                group: str = DEFAULT_GROUP) -> bytes:
        """Serialise *reading* for the ledger, encrypting if sensitive.

        Raises ``KeyError`` when a sensitive reading has no group key —
        posting sensitive data in the clear is never a silent fallback.
        """
        raw = reading.to_bytes()
        if not reading.sensitive:
            return bytes([_MARKER_PLAIN]) + raw
        if group not in self._keys:
            raise KeyError(
                f"no key for group {group!r}; run key distribution first"
            )
        group_bytes = group.encode()
        envelope = symmetric_encrypt(self._keys[group], raw)
        return (bytes([_MARKER_ENCRYPTED, len(group_bytes)])
                + group_bytes + envelope)

    def unprotect(self, payload: bytes) -> SensorReading:
        """Decode a ledger payload back into a reading.

        Raises ``KeyError`` for an encrypted payload whose group key is
        not held (that is the access control working), and
        :class:`BadSignatureError` on tampering.
        """
        if not payload:
            raise ValueError("empty payload")
        marker = payload[0]
        if marker == _MARKER_PLAIN:
            return SensorReading.from_bytes(payload[1:])
        if marker != _MARKER_ENCRYPTED:
            raise ValueError(f"unknown payload marker {marker:#x}")
        group_len = payload[1]
        group = payload[2: 2 + group_len].decode()
        envelope = payload[2 + group_len:]
        if group not in self._keys:
            raise KeyError(f"no key for group {group!r}")
        return SensorReading.from_bytes(
            symmetric_decrypt(self._keys[group], envelope)
        )

    # -- batches -------------------------------------------------------------

    def protect_batch(self, batch, *, group: str = DEFAULT_GROUP) -> bytes:
        """Serialise a :class:`~repro.devices.sensors.ReadingBatch`,
        encrypting when any member is sensitive."""
        raw = batch.to_bytes()
        if not batch.sensitive:
            return bytes([_MARKER_PLAIN_BATCH]) + raw
        if group not in self._keys:
            raise KeyError(
                f"no key for group {group!r}; run key distribution first"
            )
        group_bytes = group.encode()
        envelope = symmetric_encrypt(self._keys[group], raw)
        return (bytes([_MARKER_ENCRYPTED_BATCH, len(group_bytes)])
                + group_bytes + envelope)

    def unprotect_batch(self, payload: bytes):
        """Decode a batch payload (see :meth:`unprotect` for failure
        semantics)."""
        from ..devices.sensors import ReadingBatch

        if not payload:
            raise ValueError("empty payload")
        marker = payload[0]
        if marker == _MARKER_PLAIN_BATCH:
            return ReadingBatch.from_bytes(payload[1:])
        if marker != _MARKER_ENCRYPTED_BATCH:
            raise ValueError(f"not a batch payload (marker {marker:#x})")
        group_len = payload[1]
        group = payload[2: 2 + group_len].decode()
        envelope = payload[2 + group_len:]
        if group not in self._keys:
            raise KeyError(f"no key for group {group!r}")
        return ReadingBatch.from_bytes(
            symmetric_decrypt(self._keys[group], envelope)
        )

    @staticmethod
    def is_encrypted(payload: bytes) -> bool:
        """Whether a ledger payload is an encrypted envelope."""
        return bool(payload) and payload[0] in (_MARKER_ENCRYPTED,
                                                _MARKER_ENCRYPTED_BATCH)

    @staticmethod
    def is_batch(payload: bytes) -> bool:
        """Whether a ledger payload carries a reading batch."""
        return bool(payload) and payload[0] in (_MARKER_PLAIN_BATCH,
                                                _MARKER_ENCRYPTED_BATCH)
