"""The paper's primary contribution.

* :mod:`~repro.core.credit` — the credit model (Eqns. 2–5);
* :mod:`~repro.core.consensus` — credit-based PoW difficulty policies
  and enforcement;
* :mod:`~repro.core.acl` — manager-signed device authorisation (Eqn. 1);
* :mod:`~repro.core.authority` — data authority management: the Fig. 4
  key-distribution protocol and sensor-payload encryption;
* :mod:`~repro.core.biot` — the system facade (Fig. 3 architecture);
* :mod:`~repro.core.workflow` — the Fig. 6 workflow runner.
"""

from .acl import AclAction, AclPayload, AuthorizationList, GenesisConfig, Role
from .authority import (
    BadSignatureError,
    DataProtector,
    DeviceKeyAgent,
    KeyDistributionError,
    ManagerKeyDistributor,
    ProtocolStateError,
    ReplayError,
    StaleTimestampError,
    symmetric_decrypt,
    symmetric_encrypt,
)
from .biot import BIoTConfig, BIoTSystem
from .consensus import (
    DEFAULT_INITIAL_DIFFICULTY,
    DEFAULT_MAX_DIFFICULTY,
    DEFAULT_MIN_DIFFICULTY,
    CreditBasedConsensus,
    DifficultyPolicy,
    FixedDifficultyPolicy,
    InverseDifficultyPolicy,
    LinearDifficultyPolicy,
)
from .credit import (
    CreditBreakdown,
    CreditParameters,
    CreditRegistry,
    MaliciousBehaviour,
)
from .quality import (
    BAD_DATA_BEHAVIOUR,
    QualityVerdict,
    ReadingQualityMonitor,
)
from .workflow import WorkflowReport, WorkflowStep, run_workflow

__all__ = [
    "CreditParameters",
    "CreditRegistry",
    "CreditBreakdown",
    "MaliciousBehaviour",
    "CreditBasedConsensus",
    "DifficultyPolicy",
    "FixedDifficultyPolicy",
    "LinearDifficultyPolicy",
    "InverseDifficultyPolicy",
    "DEFAULT_INITIAL_DIFFICULTY",
    "DEFAULT_MIN_DIFFICULTY",
    "DEFAULT_MAX_DIFFICULTY",
    "GenesisConfig",
    "AclAction",
    "AclPayload",
    "AuthorizationList",
    "Role",
    "ManagerKeyDistributor",
    "DeviceKeyAgent",
    "DataProtector",
    "KeyDistributionError",
    "StaleTimestampError",
    "ReplayError",
    "BadSignatureError",
    "ProtocolStateError",
    "symmetric_encrypt",
    "symmetric_decrypt",
    "BIoTConfig",
    "BIoTSystem",
    "WorkflowReport",
    "WorkflowStep",
    "run_workflow",
    "ReadingQualityMonitor",
    "QualityVerdict",
    "BAD_DATA_BEHAVIOUR",
]
