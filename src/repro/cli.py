"""Command-line interface: run the system and the paper's experiments.

Usage::

    python -m repro workflow --devices 6 --gateways 2 --seconds 60
    python -m repro fig7
    python -m repro fig8 --attacks 24 60
    python -m repro fig9
    python -m repro fig10 --max-exponent 18
    python -m repro summary
    python -m repro telemetry --scenario smoke --require-all
    python -m repro trace --scenario smoke --seed 7
    python -m repro chaos --scenario partition-heal --seed 7
    python -m repro storage --seed 7 --backend file
    python -m repro fleet --scenario smoke --seed 7
    python -m repro fleet --processes 3 --seed 7
    python -m repro node --address n0 --genesis genesis.hex \
        --storage-backend file --storage-dir /var/lib/biot

Each experiment subcommand prints the same series the matching
benchmark writes to ``benchmarks/out/``; ``workflow`` runs the Fig. 6
smart-factory workflow end to end.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.figures import (
    fig7_pow_running_time,
    fig8_credit_trace,
    fig9_pow_comparison,
    fig10_aes_timing,
)
from .analysis.metrics import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="B-IoT (ICDCS 2019) reproduction — system and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    workflow = sub.add_parser(
        "workflow", help="run the Fig. 6 smart-factory workflow")
    workflow.add_argument("--devices", type=int, default=4)
    workflow.add_argument("--gateways", type=int, default=2)
    workflow.add_argument("--seconds", type=float, default=60.0,
                          help="reporting phase duration (simulated)")
    workflow.add_argument("--seed", type=int, default=42)
    workflow.add_argument("--difficulty", type=int, default=8,
                          help="initial PoW difficulty")

    fig7 = sub.add_parser("fig7", help="PoW running time vs difficulty")
    fig7.add_argument("--samples", type=int, default=5)
    fig7.add_argument("--seed", type=int, default=7)

    fig8 = sub.add_parser("fig8", help="credit trace under attack")
    fig8.add_argument("--attacks", type=float, nargs="*", default=[24.0],
                      help="attack times in seconds")
    fig8.add_argument("--duration", type=float, default=100.0)

    sub.add_parser("fig9", help="mean PoW per tx, four regimes")

    fig10 = sub.add_parser("fig10", help="AES time vs message length")
    fig10.add_argument("--max-exponent", type=int, default=20,
                       help="largest message as a power of two")

    summary = sub.add_parser(
        "summary", help="build a system and print its summary")
    summary.add_argument("--devices", type=int, default=4)
    summary.add_argument("--gateways", type=int, default=2)
    summary.add_argument("--seconds", type=float, default=30.0)
    summary.add_argument("--seed", type=int, default=42)

    report = sub.add_parser(
        "report", help="run all figures and print the consolidated "
                       "reproduction report (markdown)")
    report.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")

    telemetry = sub.add_parser(
        "telemetry", help="run an instrumented scenario and dump "
                          "JSONL/Prometheus telemetry artifacts")
    telemetry.add_argument("--scenario", choices=["smoke"], default="smoke")
    telemetry.add_argument("--seconds", type=float, default=40.0,
                           help="reporting phase duration (simulated)")
    telemetry.add_argument("--seed", type=int, default=42)
    telemetry.add_argument("--out-dir", type=str,
                           default="benchmarks/out/telemetry",
                           help="directory for telemetry.jsonl and "
                                "metrics.prom")
    telemetry.add_argument("--require-all", action="store_true",
                           help="fail if any registered metric was "
                                "never emitted during the scenario")
    telemetry.add_argument("--crypto-backend",
                           choices=["reference", "accel"],
                           default="reference",
                           help="Ed25519 implementation for the full "
                                "nodes (accel = tables + batch verify)")
    telemetry.add_argument("--pow-workers", type=int, default=0,
                           help="worker processes for PoW grinding and "
                                "signature checks (0 = in-process)")

    trace = sub.add_parser(
        "trace", help="run the byte-deterministic causal-tracing "
                      "scenario and dump Chrome-trace / lifecycle "
                      "artifacts")
    trace.add_argument("--scenario", choices=["smoke"], default="smoke")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--seconds", type=float, default=20.0,
                       help="submission phase duration (simulated)")
    trace.add_argument("--sample-every", type=int, default=1,
                       help="sample every Nth submission round per "
                            "device (1 = every round)")
    trace.add_argument("--out-dir", type=str,
                       default="benchmarks/out/trace",
                       help="directory for trace.json, lifecycle.json "
                            "and lifecycle.txt")

    chaos = sub.add_parser(
        "chaos", help="run a canned fault-injection campaign and print "
                      "its byte-deterministic convergence report")
    chaos.add_argument("--scenario", default="smoke",
                       help="campaign name (see --list)")
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--out", type=str, default=None,
                       help="also write the canonical JSON report here")
    chaos.add_argument("--pretty", action="store_true",
                       help="indent the printed report (the --out file "
                            "stays canonical)")
    chaos.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")

    storage = sub.add_parser(
        "storage", help="run the crash/restart storage differential and "
                        "print its byte-deterministic result")
    storage.add_argument("--seed", type=int, default=7)
    storage.add_argument("--backend", choices=["file", "sqlite"],
                         default="file")
    storage.add_argument("--steps", type=int, default=60,
                         help="workload length (transactions issued)")
    storage.add_argument("--dir", type=str, default=None,
                         help="store directory (must be empty; default "
                              "is a throwaway temporary directory)")
    storage.add_argument("--out", type=str, default=None,
                         help="also write the canonical JSON result here")

    fleet = sub.add_parser(
        "fleet", help="boot a localhost asyncio/TCP fleet, run the "
                      "seeded scenario over both transports, and "
                      "assert sim ≡ wire state hashes")
    fleet.add_argument("--scenario", default="smoke",
                       help="fleet scenario name (see --list)")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--nodes", type=int, default=None,
                       help="full-node count (default: the scenario's)")
    fleet.add_argument("--transactions", type=int, default=None,
                       help="workload length (default: the scenario's)")
    fleet.add_argument("--host", type=str, default="127.0.0.1",
                       help="interface the fleet listens on")
    fleet.add_argument("--time-scale", type=float, default=20.0,
                       help="simulated seconds per wall second on the "
                            "wire leg (>1 compresses protocol timers)")
    fleet.add_argument("--out-dir", type=str, default=None,
                       help="write fleet.json plus per-leg convergence "
                            "reports and hashes files here")
    fleet.add_argument("--list", action="store_true",
                       help="list available fleet scenarios and exit")
    fleet.add_argument("--processes", type=int, default=None,
                       help="run the multi-process differential instead: "
                            "spawn this many full-node OS processes, "
                            "kill -9 one mid-workload, cold-restart it, "
                            "and compare every process to the reference "
                            "hashes")
    fleet.add_argument("--storage-backend", choices=["file", "sqlite"],
                       default="file",
                       help="durable store behind each node process "
                            "(multi-process mode)")
    fleet.add_argument("--crypto-backend",
                       choices=["reference", "accel"], default="reference",
                       help="signature backend in each node process "
                            "(multi-process mode)")
    fleet.add_argument("--no-crash", action="store_true",
                       help="skip the kill -9/cold-restart step "
                            "(multi-process mode)")
    fleet.add_argument("--run-dir", type=str, default=None,
                       help="working directory for stores/logs "
                            "(multi-process mode; default: temporary)")

    node = sub.add_parser(
        "node", help="run ONE full node as this OS process: listen on "
                     "TCP, bootstrap via seed nodes, serve Prometheus "
                     "metrics, and print a machine-readable ready line")
    node.add_argument("--address", required=True,
                      help="this node's fleet address (e.g. n0)")
    node.add_argument("--genesis", required=True,
                      help="path to the deployment genesis transaction "
                           "(hex-encoded bytes)")
    node.add_argument("--rng-seed", type=int, default=0,
                      help="node rng seed (must match the reference "
                           "fleet's for hash-comparable runs)")
    node.add_argument("--listen", type=str, default="127.0.0.1:0",
                      help="host:port to listen on (port 0 = ephemeral)")
    node.add_argument("--advertise-host", type=str, default=None,
                      help="host peers should dial (defaults to the "
                           "listen host; needed behind 0.0.0.0)")
    node.add_argument("--seed-node", action="append", default=[],
                      dest="seed_nodes", metavar="ADDR=HOST:PORT",
                      help="bootstrap seed (repeatable); omit to run "
                           "as a genesis seed node")
    node.add_argument("--storage-backend",
                      choices=["none", "memory", "file", "sqlite"],
                      default="none",
                      help="durable store; a populated store triggers "
                           "an automatic cold restore (restart path)")
    node.add_argument("--storage-dir", type=str, default=None)
    node.add_argument("--crypto-backend",
                      choices=["reference", "accel"], default="reference")
    node.add_argument("--metrics-port", type=int, default=None,
                      help="serve Prometheus text on this port "
                           "(0 = ephemeral; omitted = no exporter)")
    node.add_argument("--time-scale", type=float, default=1.0,
                      help="simulated seconds per wall second for "
                           "protocol timers")

    return parser


def _cmd_workflow(args) -> int:
    from .core.biot import BIoTConfig, BIoTSystem
    from .core.workflow import run_workflow

    system = BIoTSystem.build(BIoTConfig(
        device_count=args.devices,
        gateway_count=args.gateways,
        seed=args.seed,
        initial_difficulty=args.difficulty,
    ))
    report = run_workflow(system, report_seconds=args.seconds)
    print(report.format())
    return 0 if report.ok else 1


def _cmd_fig7(args) -> int:
    points = fig7_pow_running_time(samples_per_level=args.samples,
                                   seed=args.seed)
    rows = [
        (p.difficulty, f"{p.expected_seconds:.3f}",
         f"{p.sampled_seconds:.3f}",
         f"{p.paper_seconds:.3f}" if p.paper_seconds is not None else "-")
        for p in points
    ]
    print(format_table(rows, headers=[
        "difficulty", "expected (s)", "sampled (s)", "paper (s)"]))
    return 0


def _cmd_fig8(args) -> int:
    result = fig8_credit_trace(attack_times=tuple(args.attacks),
                               duration=args.duration)
    rows = [
        (f"{p.time:.1f}", f"{p.credit:.2f}", f"{p.positive:.2f}",
         f"{p.negative:.2f}")
        for p in result.tracer.points[::4]
    ]
    print(format_table(rows, headers=["t (s)", "Cr", "CrP", "CrN"]))
    print(f"\nminimum credit: {result.minimum_credit:.1f}")
    print(f"longest transaction gap: {result.longest_transaction_gap:.1f} s")
    return 0


def _cmd_fig9(args) -> int:
    rows = [
        (r.name, f"{r.mean_pow_seconds:.3f}", f"{r.paper_seconds:.3f}",
         r.transactions)
        for r in fig9_pow_comparison()
    ]
    print(format_table(rows, headers=[
        "regime", "mean PoW (s)", "paper (s)", "transactions"]))
    return 0


def _cmd_fig10(args) -> int:
    points = fig10_aes_timing(max_exponent=args.max_exponent)
    rows = [
        (p.message_bytes, f"{p.measured_seconds:.5f}",
         f"{p.modelled_rpi_seconds:.5f}",
         f"{p.paper_seconds:.5f}" if p.paper_seconds is not None else "-")
        for p in points
    ]
    print(format_table(rows, headers=[
        "bytes", "measured (s)", "RPi model (s)", "paper (s)"]))
    return 0


def _cmd_summary(args) -> int:
    from .core.biot import BIoTConfig, BIoTSystem

    system = BIoTSystem.build(BIoTConfig(
        device_count=args.devices,
        gateway_count=args.gateways,
        seed=args.seed,
        initial_difficulty=8,
    ))
    system.initialize()
    system.start_devices()
    system.run_for(args.seconds)
    for key, value in system.summary().items():
        print(f"{key}: {value}")
    return 0


def _cmd_report(args) -> int:
    from .analysis.reporting import generate_report

    report = generate_report()
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    return 0 if "FAIL" not in report else 1


def _cmd_telemetry(args) -> int:
    import os

    from .telemetry.exporters import (
        export_jsonl,
        render_summary,
        to_prometheus_text,
    )
    from .telemetry.scenario import run_smoke_scenario

    system = run_smoke_scenario(seed=args.seed, seconds=args.seconds,
                                crypto_backend=args.crypto_backend,
                                pow_workers=args.pow_workers)
    system.close()  # release pool workers before the export phase
    registry = system.telemetry

    os.makedirs(args.out_dir, exist_ok=True)
    jsonl_path = os.path.join(args.out_dir, "telemetry.jsonl")
    prom_path = os.path.join(args.out_dir, "metrics.prom")
    records = export_jsonl(jsonl_path, registry=registry,
                           tracer=system.tracer)
    with open(prom_path, "w") as handle:
        handle.write(to_prometheus_text(registry))

    print(render_summary(registry))
    print(f"\n{records} records -> {jsonl_path}")
    print(f"exposition -> {prom_path}")

    missing = registry.unobserved()
    if missing:
        print("\nnever emitted: " + ", ".join(missing))
        if args.require_all:
            return 1
    return 0


def _cmd_trace(args) -> int:
    import json
    import os

    from .telemetry.scenario import run_trace_scenario
    from .telemetry.trace_export import (
        chrome_trace_json,
        lifecycle_report,
        render_lifecycle_text,
    )

    system = run_trace_scenario(seed=args.seed, seconds=args.seconds,
                                sample_every=args.sample_every)
    lifecycle = system.lifecycle
    node_count = len(system.full_nodes)

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "trace.json")
    report_path = os.path.join(args.out_dir, "lifecycle.json")
    text_path = os.path.join(args.out_dir, "lifecycle.txt")
    with open(trace_path, "w") as handle:
        handle.write(chrome_trace_json(system.tracer, lifecycle) + "\n")
    report = lifecycle_report(lifecycle, node_count=node_count)
    with open(report_path, "w") as handle:
        handle.write(json.dumps(report, sort_keys=True,
                                separators=(",", ":")) + "\n")
    text = render_lifecycle_text(lifecycle, node_count=node_count)
    with open(text_path, "w") as handle:
        handle.write(text)

    print(text)
    print(f"chrome trace -> {trace_path}  (open at https://ui.perfetto.dev)")
    print(f"lifecycle report -> {report_path}")
    print(f"lifecycle text -> {text_path}")
    return 0 if report["delivered"] else 1


def _cmd_chaos(args) -> int:
    from .faults.scenarios import SCENARIOS, run_scenario

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name}: {SCENARIOS[name].description}")
        return 0
    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        print(f"unknown scenario {args.scenario!r} (known: {known})",
              file=sys.stderr)
        return 2
    report = run_scenario(args.scenario, seed=args.seed)
    print(report.to_json(indent=2 if args.pretty else None))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json() + "\n")
    return 0 if report.converged else 1


def _cmd_storage(args) -> int:
    import json
    import tempfile

    from .storage.differential import run_differential

    def run(directory: str):
        return run_differential(seed=args.seed, storage_dir=directory,
                                backend=args.backend, steps=args.steps)

    if args.dir is not None:
        result = run(args.dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-storage-") as tmp:
            result = run(tmp)
    encoded = json.dumps(result, sort_keys=True,
                         separators=(",", ":"))
    print(encoded)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(encoded + "\n")
    return 0 if result["matched"] else 1


def _cmd_node(args) -> int:
    from .network.proc import NodeProcessSpec, run_node_process

    try:
        host, _, port_text = args.listen.rpartition(":")
        spec = NodeProcessSpec(
            address=args.address,
            genesis_path=args.genesis,
            rng_seed=args.rng_seed,
            listen_host=host or "127.0.0.1",
            listen_port=int(port_text),
            advertise_host=args.advertise_host,
            seeds=list(args.seed_nodes),
            storage_backend=args.storage_backend,
            storage_dir=args.storage_dir,
            crypto_backend=args.crypto_backend,
            metrics_port=args.metrics_port,
            time_scale=args.time_scale,
        )
    except ValueError as exc:
        print(f"repro node: {exc}", file=sys.stderr)
        return 2
    return run_node_process(spec)


def _cmd_fleet_processes(args) -> int:
    import json
    import os

    from .network.fleet_proc import run_proc_differential

    if args.processes < 1:
        print("repro fleet: --processes must be >= 1", file=sys.stderr)
        return 2
    transactions = args.transactions
    if transactions is None:
        from .network.differential import FLEET_SCENARIOS
        transactions = FLEET_SCENARIOS.get(
            args.scenario, {}).get("transactions", 12)

    result = run_proc_differential(
        seed=args.seed, processes=args.processes,
        transactions=transactions, run_dir=args.run_dir, host=args.host,
        storage_backend=args.storage_backend,
        crypto_backend=args.crypto_backend, time_scale=args.time_scale,
        crash=not args.no_crash)

    proc = result["proc"]
    verdict = "MATCHED" if result["matched"] else "DIVERGED"
    print(f"proc ≡ reference: {verdict}")
    print(f"proc: converged={proc['converged']} "
          f"sync_rounds={proc['sync_rounds']} "
          f"rejected={len(proc['rejected'])}")
    if proc["crash"]:
        crash = proc["crash"]
        print(f"crash: {crash['victim']} killed at tx "
              f"{crash['killed_at']}, cold-restored at tx "
              f"{crash['restarted_at']} "
              f"({crash['restored_records']} journal records)")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        canonical = lambda value: json.dumps(
            value, sort_keys=True, separators=(",", ":"))
        with open(os.path.join(args.out_dir, "fleet-proc.json"),
                  "w") as handle:
            handle.write(canonical(result) + "\n")
        with open(os.path.join(args.out_dir, "hashes-proc.json"),
                  "w") as handle:
            handle.write(canonical(proc["hashes"]) + "\n")
        print(f"artifacts -> {args.out_dir}")
    return 0 if result["matched"] else 1


def _cmd_fleet(args) -> int:
    import json
    import os

    from .network.differential import FLEET_SCENARIOS, run_fleet_differential

    if args.processes is not None:
        return _cmd_fleet_processes(args)
    if args.list:
        for name in sorted(FLEET_SCENARIOS):
            shape = FLEET_SCENARIOS[name]
            print(f"{name}: {shape['node_count']} nodes, "
                  f"{shape['transactions']} transactions")
        return 0
    if args.scenario not in FLEET_SCENARIOS:
        known = ", ".join(sorted(FLEET_SCENARIOS))
        print(f"unknown fleet scenario {args.scenario!r} "
              f"(known: {known})", file=sys.stderr)
        return 2

    outcome = run_fleet_differential(
        seed=args.seed, scenario=args.scenario, node_count=args.nodes,
        transactions=args.transactions, host=args.host,
        time_scale=args.time_scale)
    result = outcome.result

    # The wire leg's convergence report, in the exact ChaosRunner
    # format; the sim leg's lands next to it under --out-dir.
    print(outcome.wire_report.to_json(indent=2))
    verdict = "MATCHED" if result["matched"] else "DIVERGED"
    print(f"\nsim ≡ wire: {verdict}")
    for leg in ("sim", "wire"):
        summary = result[leg]
        print(f"{leg}: converged={summary['converged']} "
              f"sync_rounds={summary['sync_rounds']} "
              f"rejected={len(summary['rejected'])}")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)

        def dump(name: str, payload) -> None:
            path = os.path.join(args.out_dir, name)
            with open(path, "w") as handle:
                handle.write(payload + "\n")

        canonical = lambda value: json.dumps(
            value, sort_keys=True, separators=(",", ":"))
        dump("fleet.json", canonical(result))
        dump("report-sim.json", outcome.sim_report.to_json())
        dump("report-wire.json", outcome.wire_report.to_json())
        # Hashes-only files: byte-comparable between the two legs (and
        # across repeat runs) even though the wire report's durations
        # are wall-clock.
        dump("hashes-sim.json", canonical(result["sim"]["hashes"]))
        dump("hashes-wire.json", canonical(result["wire"]["hashes"]))
        print(f"artifacts -> {args.out_dir}")
    return 0 if result["matched"] else 1


_COMMANDS = {
    "workflow": _cmd_workflow,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "summary": _cmd_summary,
    "report": _cmd_report,
    "telemetry": _cmd_telemetry,
    "trace": _cmd_trace,
    "chaos": _cmd_chaos,
    "storage": _cmd_storage,
    "fleet": _cmd_fleet,
    "node": _cmd_node,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
