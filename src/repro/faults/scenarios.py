"""Canned chaos campaigns against the default smart-factory topology.

Each scenario pins a deployment shape (:class:`~repro.core.biot.
BIoTConfig`), a fault plan over its well-known addresses (``manager``,
``gateway-i``, ``device-i``), and campaign timing.  The catalog is the
contract the convergence suite (``tests/faults/test_campaigns.py``)
and the ``repro chaos`` CLI both run against:

* ``smoke`` — one of everything, short: the CI determinism probe;
* ``partition-heal`` — a gateway island partitioned and healed;
* ``churn`` — staggered gateway crash/restart cycles;
* ``churn-durable`` — the same churn, but every restart is a *cold*
  restart rebuilt from a durable file store (process death, not
  network blip);
* ``lossy-burst`` — loss, duplication and latency storms;
* ``skewed-clock`` — per-node clock skew inside the freshness window.

All plans heal or are healed by the runner's restore step; every
campaign must end with identical replica state for any seed.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.biot import BIoTConfig
from .plan import FaultPlan, PlanBuilder
from .report import ConvergenceReport
from .runner import ChaosRunner, ChaosSettings

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "run_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named, fully pinned chaos campaign."""

    name: str
    description: str
    plan: FaultPlan
    config: BIoTConfig = field(default_factory=BIoTConfig)
    settings: ChaosSettings = field(default_factory=ChaosSettings)

    def run(self, *, seed: Optional[int] = None,
            storage_dir: Optional[str] = None) -> ConvergenceReport:
        """Run the campaign (optionally reseeded).

        Durable scenarios need somewhere to put their stores: pass
        *storage_dir* to keep the artifacts (must be empty), or leave
        it None to run inside a throwaway temporary directory.
        """
        config = self.config
        if config.storage_backend != "memory" and config.storage_dir is None:
            if storage_dir is None:
                with tempfile.TemporaryDirectory(
                        prefix="repro-chaos-") as tmp:
                    return self._run_with(
                        dataclasses.replace(config, storage_dir=tmp), seed)
            config = dataclasses.replace(config, storage_dir=storage_dir)
        return self._run_with(config, seed)

    def _run_with(self, config: BIoTConfig,
                  seed: Optional[int]) -> ConvergenceReport:
        runner = ChaosRunner(config, settings=self.settings)
        return runner.run(self.plan, seed=seed, scenario=self.name)


def _smoke_plan() -> FaultPlan:
    """One of every fault kind, compressed into a short window."""
    return (PlanBuilder("smoke")
            .partition(4.0, 10.0, ("gateway-1",),
                       ("manager", "gateway-0"))
            .crash(6.0, "gateway-0", restart_at=12.0)
            .loss(14.0, 18.0, 0.25)
            .duplicate(14.0, 18.0, 0.25)
            .latency(19.0, 23.0, 0.4, extra_jitter=0.2)
            .skew(8.0, "device-1", 1.5, until=20.0)
            .build())


def _partition_heal_plan() -> FaultPlan:
    """Isolate gateway-0 (and its devices' backbone view) then heal."""
    return (PlanBuilder("partition-heal")
            .partition(10.0, 30.0, ("gateway-0",),
                       ("manager", "gateway-1"))
            .build())


def _churn_plan() -> FaultPlan:
    """Rolling gateway restarts: never two down at once, but the
    flooded history keeps getting holes punched in it."""
    return (PlanBuilder("churn")
            .crash(8.0, "gateway-0", restart_at=16.0)
            .crash(20.0, "gateway-1", restart_at=28.0)
            .crash(32.0, "gateway-0", restart_at=38.0)
            .build())


def _churn_durable_plan() -> FaultPlan:
    """The churn schedule with process-death semantics: each restarted
    gateway is rebuilt from its durable store before resyncing."""
    return (PlanBuilder("churn-durable")
            .crash(8.0, "gateway-0", restart_at=16.0, cold_restart=True)
            .crash(20.0, "gateway-1", restart_at=28.0, cold_restart=True)
            .crash(32.0, "gateway-0", restart_at=38.0, cold_restart=True)
            .build())


def _lossy_burst_plan() -> FaultPlan:
    """Storms on the fabric: loss, duplication, then latency+jitter."""
    return (PlanBuilder("lossy-burst")
            .loss(6.0, 20.0, 0.3)
            .duplicate(22.0, 32.0, 0.3)
            .latency(34.0, 44.0, 0.6, extra_jitter=0.3)
            .build())


def _skewed_clock_plan() -> FaultPlan:
    """Clock skew within the protocol freshness windows (keydist
    max_skew is 5s; lazy-tip detection tolerates ±ΔT)."""
    return (PlanBuilder("skewed-clock")
            .skew(5.0, "gateway-1", 2.0, until=40.0)
            .skew(10.0, "device-0", -1.5, until=35.0)
            .skew(12.0, "device-2", 1.0, until=30.0)
            .build())


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="smoke",
            description="one of every fault kind in a 30s window "
                        "(the CI determinism probe)",
            plan=_smoke_plan(),
            config=BIoTConfig(gateway_count=2, device_count=3),
            settings=ChaosSettings(report_seconds=30.0, drain_seconds=10.0),
        ),
        Scenario(
            name="partition-heal",
            description="gateway-0 islanded for 20s, then healed",
            plan=_partition_heal_plan(),
        ),
        Scenario(
            name="churn",
            description="rolling gateway crash/restart cycles",
            plan=_churn_plan(),
        ),
        Scenario(
            name="churn-durable",
            description="rolling gateway cold restarts rebuilt from "
                        "durable file stores",
            plan=_churn_durable_plan(),
            config=BIoTConfig(storage_backend="file"),
        ),
        Scenario(
            name="lossy-burst",
            description="loss, duplication and latency storms",
            plan=_lossy_burst_plan(),
        ),
        Scenario(
            name="skewed-clock",
            description="per-node clock skew inside freshness windows",
            plan=_skewed_clock_plan(),
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def run_scenario(name: str, *, seed: Optional[int] = None,
                 storage_dir: Optional[str] = None) -> ConvergenceReport:
    """Run a canned campaign by name (the CLI entry point)."""
    return get_scenario(name).run(seed=seed, storage_dir=storage_dir)
