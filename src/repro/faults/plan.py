"""The declarative fault-campaign DSL.

A :class:`FaultPlan` is an immutable, validated list of timed fault
events — partitions, crash/restart churn, loss/latency/duplication
bursts, clock skew — expressed entirely in simulated seconds relative
to the moment the plan is applied.  Plans carry no behaviour: the
:class:`~repro.faults.injector.FaultInjector` schedules them onto the
event loop, and :meth:`FaultPlan.describe` renders a canonical
plain-data form for reports and golden files.

Build plans with :class:`PlanBuilder`::

    plan = (PlanBuilder("partition-heal")
            .partition(10.0, 25.0, ("gateway-0",), ("gateway-1", "manager"))
            .loss(at=30.0, until=36.0, rate=0.3)
            .build())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FaultEvent",
    "LinkCut",
    "PartitionFault",
    "CrashFault",
    "LossBurst",
    "LatencyBurst",
    "DuplicationBurst",
    "ClockSkewFault",
    "FaultPlan",
    "PlanBuilder",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one injection at simulated offset *at*."""

    at: float

    kind = "fault"

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("fault time must be non-negative")

    def end_time(self) -> Optional[float]:
        """When the fault reverts, or None for permanent faults."""
        return None

    def _check_window(self, end: Optional[float], label: str) -> None:
        if end is not None and end <= self.at:
            raise ValueError(f"{label} must come after the injection time")

    def describe(self) -> Dict[str, object]:
        raise NotImplementedError


@dataclass(frozen=True)
class LinkCut(FaultEvent):
    """Sever one link; heal it at *heal_at* (None = never)."""

    a: str = ""
    b: str = ""
    heal_at: Optional[float] = None

    kind = "link_cut"

    def __post_init__(self):
        super().__post_init__()
        if not self.a or not self.b or self.a == self.b:
            raise ValueError("a link cut needs two distinct endpoints")
        self._check_window(self.heal_at, "heal_at")

    def end_time(self) -> Optional[float]:
        return self.heal_at

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at, "a": self.a, "b": self.b,
                "heal_at": self.heal_at}


@dataclass(frozen=True)
class PartitionFault(FaultEvent):
    """Split the network into named groups: every cross-group link is
    cut at *at* and healed at *heal_at*."""

    groups: Tuple[Tuple[str, ...], ...] = ()
    heal_at: Optional[float] = None

    kind = "partition"

    def __post_init__(self):
        super().__post_init__()
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ValueError("partition groups must be non-empty")
            overlap = seen.intersection(group)
            if overlap:
                raise ValueError(
                    f"address in two partition groups: {sorted(overlap)}")
            seen.update(group)
        self._check_window(self.heal_at, "heal_at")

    def end_time(self) -> Optional[float]:
        return self.heal_at

    def cross_links(self) -> List[Tuple[str, str]]:
        """Every (a, b) pair straddling two groups, deterministic order."""
        pairs: List[Tuple[str, str]] = []
        for i, left in enumerate(self.groups):
            for right in self.groups[i + 1:]:
                for a in left:
                    for b in right:
                        pairs.append((a, b))
        return pairs

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at,
                "groups": [list(g) for g in self.groups],
                "heal_at": self.heal_at}


@dataclass(frozen=True)
class CrashFault(FaultEvent):
    """Crash a node at *at*; restart it at *restart_at* (None = never).

    A restarted full node resyncs with its peers (anti-entropy) unless
    *resync_on_restart* is disabled.  With *cold_restart* the node's
    volatile state is rebuilt from its durable store before the resync
    (a process-death restart, not a network blip) — which requires the
    deployment to run a durable storage backend; a cold restart of a
    store-less node is refused rather than silently regenerating
    genesis state.
    """

    address: str = ""
    restart_at: Optional[float] = None
    resync_on_restart: bool = True
    cold_restart: bool = False

    kind = "crash"

    def __post_init__(self):
        super().__post_init__()
        if not self.address:
            raise ValueError("a crash needs a target address")
        self._check_window(self.restart_at, "restart_at")

    def end_time(self) -> Optional[float]:
        return self.restart_at

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at, "address": self.address,
                "restart_at": self.restart_at,
                "resync_on_restart": self.resync_on_restart,
                "cold_restart": self.cold_restart}


@dataclass(frozen=True)
class _BurstFault(FaultEvent):
    """Shared shape for windowed link disturbances (``"*"`` = any)."""

    until: float = 0.0
    a: str = "*"
    b: str = "*"

    def __post_init__(self):
        super().__post_init__()
        self._check_window(self.until, "until")

    def end_time(self) -> Optional[float]:
        return self.until


@dataclass(frozen=True)
class LossBurst(_BurstFault):
    """Extra message loss on matching links during the window."""

    rate: float = 0.3

    kind = "loss_burst"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.rate < 1.0:
            raise ValueError("loss rate must be in (0, 1)")

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at, "until": self.until,
                "a": self.a, "b": self.b, "rate": self.rate}


@dataclass(frozen=True)
class LatencyBurst(_BurstFault):
    """Extra delay (and reordering jitter) during the window."""

    extra_latency: float = 0.5
    extra_jitter: float = 0.0

    kind = "latency_burst"

    def __post_init__(self):
        super().__post_init__()
        if self.extra_latency < 0 or self.extra_jitter < 0:
            raise ValueError("latency burst delays must be non-negative")
        if self.extra_latency == 0 and self.extra_jitter == 0:
            raise ValueError("a latency burst must add latency or jitter")

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at, "until": self.until,
                "a": self.a, "b": self.b,
                "extra_latency": self.extra_latency,
                "extra_jitter": self.extra_jitter}


@dataclass(frozen=True)
class DuplicationBurst(_BurstFault):
    """Probabilistic message duplication during the window."""

    probability: float = 0.5

    kind = "duplication_burst"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.probability < 1.0:
            raise ValueError("duplication probability must be in (0, 1)")

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at, "until": self.until,
                "a": self.a, "b": self.b, "probability": self.probability}


@dataclass(frozen=True)
class ClockSkewFault(FaultEvent):
    """Skew one node's local clock by *offset* seconds for the window
    (*until* None = for the rest of the run)."""

    address: str = ""
    offset: float = 0.0
    until: Optional[float] = None

    kind = "clock_skew"

    def __post_init__(self):
        super().__post_init__()
        if not self.address:
            raise ValueError("clock skew needs a target address")
        if self.offset == 0.0:
            raise ValueError("clock skew offset must be non-zero")
        self._check_window(self.until, "until")

    def end_time(self) -> Optional[float]:
        return self.until

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "at": self.at, "address": self.address,
                "offset": self.offset, "until": self.until}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault campaign: events sorted by injection time."""

    events: Tuple[FaultEvent, ...] = ()
    name: str = "empty"

    def __post_init__(self):
        object.__setattr__(
            self, "events",
            tuple(sorted(self.events, key=lambda e: (e.at, e.kind))))

    @property
    def is_empty(self) -> bool:
        return not self.events

    def last_event_time(self) -> float:
        """The latest injection or heal time in the plan (0 if empty)."""
        latest = 0.0
        for event in self.events:
            latest = max(latest, event.at, event.end_time() or 0.0)
        return latest

    def describe(self) -> List[Dict[str, object]]:
        """Canonical plain-data form (stable across runs)."""
        return [event.describe() for event in self.events]


class PlanBuilder:
    """Fluent construction of a :class:`FaultPlan`."""

    def __init__(self, name: str = "custom"):
        self.name = name
        self._events: List[FaultEvent] = []

    def cut(self, at: float, a: str, b: str, *,
            heal_at: Optional[float] = None) -> "PlanBuilder":
        self._events.append(LinkCut(at=at, a=a, b=b, heal_at=heal_at))
        return self

    def partition(self, at: float, heal_at: Optional[float],
                  *groups: Tuple[str, ...]) -> "PlanBuilder":
        self._events.append(PartitionFault(
            at=at, groups=tuple(tuple(g) for g in groups), heal_at=heal_at))
        return self

    def crash(self, at: float, address: str, *,
              restart_at: Optional[float] = None,
              resync_on_restart: bool = True,
              cold_restart: bool = False) -> "PlanBuilder":
        self._events.append(CrashFault(
            at=at, address=address, restart_at=restart_at,
            resync_on_restart=resync_on_restart,
            cold_restart=cold_restart))
        return self

    def loss(self, at: float, until: float, rate: float, *,
             a: str = "*", b: str = "*") -> "PlanBuilder":
        self._events.append(LossBurst(at=at, until=until, rate=rate, a=a, b=b))
        return self

    def latency(self, at: float, until: float, extra_latency: float, *,
                extra_jitter: float = 0.0, a: str = "*",
                b: str = "*") -> "PlanBuilder":
        self._events.append(LatencyBurst(
            at=at, until=until, extra_latency=extra_latency,
            extra_jitter=extra_jitter, a=a, b=b))
        return self

    def duplicate(self, at: float, until: float, probability: float, *,
                  a: str = "*", b: str = "*") -> "PlanBuilder":
        self._events.append(DuplicationBurst(
            at=at, until=until, probability=probability, a=a, b=b))
        return self

    def skew(self, at: float, address: str, offset: float, *,
             until: Optional[float] = None) -> "PlanBuilder":
        self._events.append(ClockSkewFault(
            at=at, address=address, offset=offset, until=until))
        return self

    def build(self) -> FaultPlan:
        return FaultPlan(events=tuple(self._events), name=self.name)
