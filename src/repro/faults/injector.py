"""Executes a :class:`~repro.faults.plan.FaultPlan` on the event loop.

The injector is the only component that touches the network's failure
switches: it schedules each event's injection and its heal on the
shared :class:`~repro.network.simulator.EventScheduler`, keeps an
audit log of everything it did, and — because the paper's availability
claim depends on replicas *reconverging* — triggers anti-entropy
resync on the surviving full nodes a beat after every heal or restart.

All fault times are offsets from the moment :meth:`apply` is called,
so the same plan can be replayed against systems whose warm-up phases
took different amounts of simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..network.transport import LinkOverlay
from ..storage.errors import StorageError
from ..telemetry.registry import coerce_registry
from .plan import (
    ClockSkewFault,
    CrashFault,
    DuplicationBurst,
    FaultPlan,
    LatencyBurst,
    LinkCut,
    LossBurst,
    PartitionFault,
)

__all__ = ["FaultInjector"]

DEFAULT_RESYNC_DELAY = 0.5
"""Seconds between a heal/restart and the triggered anti-entropy sync."""


class FaultInjector:
    """Schedules a fault plan against a live network.

    Args:
        network: the fabric whose switches get flipped.
        full_nodes: gateway/manager nodes that should anti-entropy
            resync after heals and restarts (matched by address for
            crash-restart handling).
        resync_delay: seconds after a heal before resync fires.
        telemetry: registry for the ``repro_fault_*`` counters.
    """

    def __init__(self, network: Network, *, full_nodes: Sequence = (),
                 resync_delay: float = DEFAULT_RESYNC_DELAY,
                 telemetry=None):
        self.network = network
        self.full_nodes = list(full_nodes)
        self.resync_delay = resync_delay
        self.telemetry = coerce_registry(telemetry)
        self.injection_log: List[Tuple[float, str, str]] = []
        self.plans_applied = 0
        self._m_injections = self.telemetry.counter(
            "repro_fault_injections_total",
            "Fault events injected, by kind")
        self._m_heals = self.telemetry.counter(
            "repro_fault_heals_total",
            "Fault events healed/reverted, by kind")
        self._m_resyncs = self.telemetry.counter(
            "repro_fault_resyncs_total",
            "Anti-entropy resyncs triggered after heals and restarts")

    @property
    def scheduler(self):
        return self.network.scheduler

    # -- audit -----------------------------------------------------------

    def _log(self, action: str, kind: str, detail: str) -> None:
        now = self.scheduler.clock.now()
        self.injection_log.append((now, f"{action}:{kind}", detail))
        if action == "inject":
            self._m_injections.inc(kind=kind)
        else:
            self._m_heals.inc(kind=kind)

    # -- application -----------------------------------------------------

    def apply(self, plan: FaultPlan) -> None:
        """Schedule every event in *plan*, offsets relative to now."""
        self.plans_applied += 1
        base = self.scheduler.clock.now()
        for event in plan.events:
            if isinstance(event, PartitionFault):
                self._schedule_partition(base, event)
            elif isinstance(event, LinkCut):
                self._schedule_cut(base, event)
            elif isinstance(event, CrashFault):
                self._schedule_crash(base, event)
            elif isinstance(event, (LossBurst, LatencyBurst,
                                    DuplicationBurst)):
                self._schedule_burst(base, event)
            elif isinstance(event, ClockSkewFault):
                self._schedule_skew(base, event)
            else:  # pragma: no cover - the DSL is closed
                raise TypeError(f"unknown fault event {type(event).__name__}")

    # -- partitions / cuts ------------------------------------------------

    def _schedule_partition(self, base: float, event: PartitionFault) -> None:
        links = event.cross_links()

        def inject() -> None:
            for a, b in links:
                self.network.cut_link(a, b)
            self._log("inject", event.kind,
                      "|".join(",".join(g) for g in event.groups))

        def heal() -> None:
            for a, b in links:
                self.network.heal_link(a, b)
            self._log("heal", event.kind,
                      "|".join(",".join(g) for g in event.groups))
            self._schedule_resync()

        self.scheduler.schedule_at(base + event.at, inject)
        if event.heal_at is not None:
            self.scheduler.schedule_at(base + event.heal_at, heal)

    def _schedule_cut(self, base: float, event: LinkCut) -> None:
        def inject() -> None:
            self.network.cut_link(event.a, event.b)
            self._log("inject", event.kind, f"{event.a}<->{event.b}")

        def heal() -> None:
            self.network.heal_link(event.a, event.b)
            self._log("heal", event.kind, f"{event.a}<->{event.b}")
            self._schedule_resync()

        self.scheduler.schedule_at(base + event.at, inject)
        if event.heal_at is not None:
            self.scheduler.schedule_at(base + event.heal_at, heal)

    # -- crash / restart --------------------------------------------------

    def _full_node_at(self, address: str):
        for node in self.full_nodes:
            if node.address == address:
                return node
        return None

    def _schedule_crash(self, base: float, event: CrashFault) -> None:
        def inject() -> None:
            self.network.take_down(event.address)
            self._log("inject", event.kind, event.address)

        def restart() -> None:
            self.network.bring_up(event.address)
            node = self._full_node_at(event.address)
            if event.cold_restart and node is not None:
                replayed = self._cold_restore(node)
                self._log("heal", event.kind,
                          f"{event.address} cold:{replayed}")
            else:
                self._log("heal", event.kind, event.address)
            if node is not None and event.resync_on_restart:
                self._schedule_resync(only=node)

        self.scheduler.schedule_at(base + event.at, inject)
        if event.restart_at is not None:
            self.scheduler.schedule_at(base + event.restart_at, restart)

    def _cold_restore(self, node) -> int:
        """Rebuild a crashed node from its durable store.

        A cold restart without a store is an error, not a silent
        regeneration of genesis state: the pre-storage churn scenario
        restarted nodes with their volatile state intact (a network
        blip, not a process death), and "restart from nothing" must
        never masquerade as recovery.
        """
        if getattr(node, "persistence", None) is None:
            raise StorageError(
                f"cold restart of {node.address} has no durable store to "
                f"restore from — the node would silently regenerate "
                f"genesis state; configure BIoTConfig.storage_backend/"
                f"storage_dir")
        return node.cold_restore()

    # -- bursts -----------------------------------------------------------

    def _schedule_burst(self, base: float, event) -> None:
        if isinstance(event, LossBurst):
            overlay = LinkOverlay(extra_loss=event.rate)
        elif isinstance(event, LatencyBurst):
            overlay = LinkOverlay(extra_latency=event.extra_latency,
                                  extra_jitter=event.extra_jitter)
        else:
            overlay = LinkOverlay(duplicate_probability=event.probability)
        holder: Dict[str, int] = {}

        def inject() -> None:
            holder["token"] = self.network.add_overlay(
                event.a, event.b, overlay)
            self._log("inject", event.kind, f"{event.a}<->{event.b}")

        def heal() -> None:
            token = holder.pop("token", None)
            if token is not None:
                self.network.remove_overlay(token)
            self._log("heal", event.kind, f"{event.a}<->{event.b}")

        self.scheduler.schedule_at(base + event.at, inject)
        self.scheduler.schedule_at(base + event.until, heal)

    # -- clock skew --------------------------------------------------------

    def _schedule_skew(self, base: float, event: ClockSkewFault) -> None:
        def inject() -> None:
            self.network.node(event.address).clock_offset = event.offset
            self._log("inject", event.kind,
                      f"{event.address}{event.offset:+.3f}s")

        def heal() -> None:
            self.network.node(event.address).clock_offset = 0.0
            self._log("heal", event.kind, event.address)

        self.scheduler.schedule_at(base + event.at, inject)
        if event.until is not None:
            self.scheduler.schedule_at(base + event.until, heal)

    # -- recovery ---------------------------------------------------------

    def _schedule_resync(self, *, only=None) -> None:
        """Queue anti-entropy resync shortly after a heal; crashed nodes
        are skipped (their own restart event resyncs them)."""
        targets = [only] if only is not None else list(self.full_nodes)

        def resync() -> None:
            for node in targets:
                if self.network.is_down(node.address):
                    continue
                node.resync_with_peers()
                self._m_resyncs.inc()

        self.scheduler.schedule(self.resync_delay, resync)
