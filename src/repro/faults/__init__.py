"""Deterministic fault injection and recovery (`repro.faults`).

The fault subsystem has four layers:

* :mod:`~repro.faults.backoff` — the shared retry clock
  (:class:`BackoffPolicy`);
* :mod:`~repro.faults.plan` — the declarative campaign DSL
  (:class:`FaultPlan`, :class:`PlanBuilder` and the event types);
* :mod:`~repro.faults.injector` — executes a plan against a live
  :class:`~repro.network.network.Network` (:class:`FaultInjector`);
* :mod:`~repro.faults.runner` / :mod:`~repro.faults.scenarios` — the
  chaos harness: run a whole B-IoT deployment under a plan and emit a
  byte-deterministic :class:`~repro.faults.report.ConvergenceReport`.

``runner``/``scenarios``/``report`` are exported lazily: protocol code
(``repro.nodes``) imports :class:`BackoffPolicy` from here, and pulling
the runner in eagerly would close an import cycle through
``repro.core.biot``.
"""

from __future__ import annotations

from .backoff import DEFAULT_BACKOFF, BackoffPolicy
from .plan import (
    ClockSkewFault,
    CrashFault,
    DuplicationBurst,
    FaultEvent,
    FaultPlan,
    LatencyBurst,
    LinkCut,
    LossBurst,
    PartitionFault,
    PlanBuilder,
)

__all__ = [
    "BackoffPolicy",
    "DEFAULT_BACKOFF",
    "FaultEvent",
    "LinkCut",
    "PartitionFault",
    "CrashFault",
    "LossBurst",
    "LatencyBurst",
    "DuplicationBurst",
    "ClockSkewFault",
    "FaultPlan",
    "PlanBuilder",
    "FaultInjector",
    "ChaosRunner",
    "ConvergenceReport",
    "SCENARIOS",
    "get_scenario",
]

_LAZY = {
    "FaultInjector": ("repro.faults.injector", "FaultInjector"),
    "ChaosRunner": ("repro.faults.runner", "ChaosRunner"),
    "ConvergenceReport": ("repro.faults.report", "ConvergenceReport"),
    "SCENARIOS": ("repro.faults.scenarios", "SCENARIOS"),
    "get_scenario": ("repro.faults.scenarios", "get_scenario"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
