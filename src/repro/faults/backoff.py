"""Bounded exponential backoff with jitter — the retry clock every
recovery path shares.

A :class:`BackoffPolicy` is a pure description: attempt *n* (1-based)
waits ``base_delay * multiplier**(n-1)`` seconds, capped at
``max_delay``, plus a multiplicative jitter drawn from the caller's
seeded RNG.  Determinism matters more than entropy here — the fault
harness replays whole campaigns bit-for-bit, so the policy never owns
randomness; it is handed a ``random.Random`` and consumes exactly one
draw per jittered delay.

Invariants (property-tested in ``tests/faults/test_backoff.py``):

* the nominal delay is monotone non-decreasing in the attempt number
  and never exceeds ``max_delay``;
* a jittered delay lies in ``[nominal, nominal * (1 + jitter)]``;
* a schedule has exactly ``max_attempts`` entries — retries stop;
* the same seed reproduces the exact schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["BackoffPolicy", "DEFAULT_BACKOFF"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry timing: bounded exponential backoff with jitter.

    Attributes:
        base_delay: delay before the second attempt (seconds).
        multiplier: growth factor per attempt (>= 1).
        max_delay: hard cap on the nominal delay.
        jitter: multiplicative jitter fraction; the drawn delay is
            ``nominal * (1 + u * jitter)`` with ``u ~ U[0, 1)``.
            Jitter only ever *extends* a delay, so the nominal schedule
            is a lower bound and retry storms decorrelate.
        max_attempts: total attempts (first try included) before the
            caller must give up.
    """

    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.25
    max_attempts: int = 5

    def __post_init__(self):
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def nominal_delay(self, attempt: int) -> float:
        """The un-jittered delay after *attempt* (1-based) failed."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(self.base_delay * self.multiplier ** (attempt - 1),
                   self.max_delay)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """One jittered delay; consumes exactly one RNG draw when the
        policy has jitter, zero otherwise."""
        nominal = self.nominal_delay(attempt)
        if self.jitter == 0.0:
            return nominal
        return nominal * (1.0 + rng.random() * self.jitter)

    def schedule(self, rng: random.Random) -> List[float]:
        """The full delay sequence for a retry loop that exhausts every
        attempt: one entry per attempt, in order."""
        return [self.delay(attempt, rng)
                for attempt in range(1, self.max_attempts + 1)]

    def exhausted(self, attempt: int) -> bool:
        """Whether *attempt* (1-based) was the last allowed one."""
        return attempt >= self.max_attempts


DEFAULT_BACKOFF = BackoffPolicy()
"""The deployment-wide default retry clock."""
