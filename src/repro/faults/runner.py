"""The chaos harness: run a whole B-IoT deployment under a fault plan.

A :class:`ChaosRunner` is the closed loop the availability claim is
tested in: build a deployment from a :class:`~repro.core.biot.
BIoTConfig`, execute the Fig. 6 workflow while a
:class:`~repro.faults.injector.FaultInjector` flips failure switches
underneath it, then restore the fabric and verify that every full-node
replica reconverges to identical tangle/ledger/ACL state.

Determinism is load-bearing: the entire run — key generation, latency
draws, fault jitter, recovery backoff — executes inside
``rand.deterministic(seed)`` with every RNG derived from the campaign
seed, so the emitted :class:`~repro.faults.report.ConvergenceReport`
is byte-identical across invocations.  The convergence phase checks
hashes *before* running any sync round; an empty plan therefore
triggers zero recovery traffic and leaves the ledger bit-identical to
a plain (chaos-free) run of the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.biot import BIoTConfig, BIoTSystem
from ..crypto import rand
from .injector import FaultInjector
from .plan import FaultPlan
from .report import ConvergenceReport, node_state_hashes

__all__ = ["ChaosRunner", "ChaosSettings"]


@dataclass(frozen=True)
class ChaosSettings:
    """Timing knobs for a chaos campaign.

    Attributes:
        report_seconds: how long devices report while faults fire.
        drain_seconds: quiet period after devices stop, letting
            in-flight traffic and armed retries settle.
        max_sync_rounds: all-pairs anti-entropy rounds allowed during
            the convergence phase before declaring divergence.
        sync_round_seconds: simulated time granted to each sync round.
    """

    report_seconds: float = 60.0
    drain_seconds: float = 15.0
    max_sync_rounds: int = 5
    sync_round_seconds: float = 5.0

    def __post_init__(self):
        if self.report_seconds <= 0:
            raise ValueError("report_seconds must be positive")
        if self.drain_seconds < 0:
            raise ValueError("drain_seconds must be non-negative")
        if self.max_sync_rounds < 0:
            raise ValueError("max_sync_rounds must be non-negative")
        if self.sync_round_seconds <= 0:
            raise ValueError("sync_round_seconds must be positive")


class ChaosRunner:
    """Executes one fault campaign against a fresh deployment.

    Args:
        config: deployment shape; the runner re-seeds it per campaign
            so one runner can execute several seeds.
        settings: campaign timing (:class:`ChaosSettings`).
    """

    def __init__(self, config: Optional[BIoTConfig] = None, *,
                 settings: Optional[ChaosSettings] = None):
        self.config = config if config is not None else BIoTConfig()
        self.settings = settings if settings is not None else ChaosSettings()

    # -- the campaign ------------------------------------------------------

    def run(self, plan: FaultPlan, *, seed: Optional[int] = None,
            scenario: Optional[str] = None) -> ConvergenceReport:
        """Run *plan* against a fresh deployment; returns the report."""
        name = scenario if scenario is not None else plan.name
        seed = seed if seed is not None else self.config.seed
        with rand.deterministic(f"chaos:{name}:{seed}".encode()):
            return self._run_inner(plan, seed=seed, scenario=name)

    def _run_inner(self, plan: FaultPlan, *, seed: int,
                   scenario: str) -> ConvergenceReport:
        settings = self.settings
        config = self._reseeded_config(seed)
        system = BIoTSystem.build(config)
        injector = FaultInjector(
            system.network,
            full_nodes=system.full_nodes,
            telemetry=system.telemetry,
        )
        start_time = system.scheduler.clock.now()

        # Phase 1: the Fig. 6 workflow under fire.  The plan's offsets
        # are relative to the start of the reporting window, so the
        # (fault-free) initialization phase is identical across plans.
        system.initialize()
        injector.apply(plan)
        system.start_devices()
        horizon = max(settings.report_seconds, plan.last_event_time() + 1.0)
        system.run_for(horizon)

        # Phase 2: quiesce.  Devices stop issuing, every unhealed fault
        # is cleared, and armed retries/in-flight traffic drain.
        for device in system.devices:
            device.stop()
        system.network.restore_all()
        system.run_for(settings.drain_seconds)

        # Phase 3: converge.  Hashes are checked BEFORE any sync round
        # — a fault-free run must reconcile in zero rounds with zero
        # recovery traffic (the null-path equivalence property).
        converge_start = system.scheduler.clock.now()
        rounds_used, converged = self._converge(system)
        recovery_seconds = system.scheduler.clock.now() - converge_start

        notes: List[str] = []
        if not converged:
            notes.append(
                f"divergent after {settings.max_sync_rounds} sync rounds")
        return ConvergenceReport.from_nodes(
            scenario=scenario,
            seed=seed,
            nodes=system.full_nodes,
            sync_rounds_used=rounds_used,
            duration=system.scheduler.clock.now() - start_time,
            recovery_seconds=recovery_seconds,
            plan=plan.describe(),
            injections=injector.injection_log,
            counters=self._counters(system, injector),
            notes=notes,
        )

    def _reseeded_config(self, seed: int) -> BIoTConfig:
        if self.config.seed == seed:
            return self.config
        from dataclasses import replace
        return replace(self.config, seed=seed)

    def _converge(self, system: BIoTSystem) -> tuple:
        """Check-then-sync loop; returns (rounds_used, converged)."""
        for round_index in range(self.settings.max_sync_rounds + 1):
            if self._replicas_agree(system):
                return round_index, True
            if round_index == self.settings.max_sync_rounds:
                break
            for node in system.full_nodes:
                node.resync_with_peers()
            system.run_for(self.settings.sync_round_seconds)
        return self.settings.max_sync_rounds, False

    @staticmethod
    def _replicas_agree(system: BIoTSystem) -> bool:
        hashes = [node_state_hashes(node) for node in system.full_nodes]
        return all(h == hashes[0] for h in hashes[1:])

    @staticmethod
    def _counters(system: BIoTSystem, injector: FaultInjector) -> Dict[str, int]:
        network = system.network
        full_nodes = system.full_nodes
        return {
            "messages_sent": network.messages_sent,
            "messages_delivered": network.messages_delivered,
            "messages_dropped": network.messages_dropped,
            "messages_purged": network.messages_purged,
            "messages_duplicated": network.messages_duplicated,
            "faults_injected": sum(
                1 for _, action, _ in injector.injection_log
                if action.startswith("inject:")),
            "faults_healed": sum(
                1 for _, action, _ in injector.injection_log
                if action.startswith("heal:")),
            "keydist_retries": system.manager.keydist_retries,
            "keydist_exhausted": system.manager.keydist_exhausted,
            "keys_distributed":
                system.manager.distributor.completed_distributions,
            "parent_requests_sent": sum(
                n.stats.parent_requests_sent for n in full_nodes),
            "parent_requests_served": sum(
                n.stats.parent_requests_served for n in full_nodes),
            "parent_fetch_recoveries": sum(
                n.stats.parent_fetch_recoveries for n in full_nodes),
            "parent_fetch_exhausted": sum(
                n.stats.parent_fetch_exhausted for n in full_nodes),
            "sync_requests_served": sum(
                n.stats.sync_requests_served for n in full_nodes),
            "submissions_accepted": sum(
                d.stats.submissions_accepted for d in system.devices),
            "device_timeouts": sum(d.timeouts for d in system.devices),
        }
