"""Convergence verdicts and canonical state hashing.

A chaos run ends with the question the paper's availability claim
hinges on: after every fault healed, do the replicas agree?  This
module answers it with content hashes — three per full node:

* ``tangle`` — SHA-256 over the sorted transaction hashes (DAG
  membership; parent links are already bound into each tx hash);
* ``ledger`` — canonical JSON of the token ledger's exported state
  (balances + spent slots, conflict arbitration included);
* ``acl`` — canonical JSON of the authorisation list's exported state.

Replicas converged iff all three hashes match across every honest full
node.  The :class:`ConvergenceReport` wraps the verdict with the
campaign's audit trail and counters, and serialises to canonical JSON
(sorted keys, no wall-clock timestamps) so two runs with the same seed
produce byte-identical reports — the property the ``chaos-smoke`` CI
job diffs for.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "ConvergenceReport",
    "tangle_hash",
    "ledger_hash",
    "acl_hash",
    "credit_hash",
    "node_state_hashes",
    "canonical_json",
]


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, minimal separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def tangle_hash(tangle) -> str:
    """Content hash of DAG membership.

    Sorted tx hashes suffice: each transaction hash already commits to
    its parents, payload and issuer, so equal sets imply equal DAGs.
    """
    digest = hashlib.sha256()
    for tx_hash in sorted(tx.tx_hash for tx in tangle):
        digest.update(tx_hash)
    return digest.hexdigest()


def ledger_hash(ledger) -> str:
    """Content hash of token balances and spent slots."""
    return hashlib.sha256(
        canonical_json(ledger.export_state()).encode()).hexdigest()


def acl_hash(acl) -> str:
    """Content hash of the authorisation list."""
    return hashlib.sha256(
        canonical_json(acl.export_state()).encode()).hexdigest()


def credit_hash(registry, *, now: float) -> str:
    """Content hash of a credit registry's behaviour histories.

    The export is windowed to *now* (records older than ΔT drop out),
    so comparisons are only meaningful between registries read at the
    same ledger time — which is exactly what the storage differential
    harness does.  Not part of :func:`node_state_hashes`: credit is a
    per-replica *estimate* under faults, but must be an exact match
    across a crash/restore of a single node.
    """
    return hashlib.sha256(
        canonical_json(registry.export_state(now=now)).encode()).hexdigest()


def node_state_hashes(node) -> Dict[str, str]:
    """The three per-replica hashes for one full node."""
    return {
        "tangle": tangle_hash(node.tangle),
        "ledger": ledger_hash(node.ledger),
        "acl": acl_hash(node.acl),
    }


def _all_equal(values: List[str]) -> bool:
    return len(set(values)) <= 1


@dataclass
class ConvergenceReport:
    """The outcome of one chaos campaign.

    Every field is plain data; :meth:`to_json` is canonical so reports
    are byte-comparable across runs of the same (scenario, seed).
    """

    scenario: str
    seed: int
    converged: bool
    sync_rounds_used: int
    duration: float
    recovery_seconds: float = 0.0
    node_hashes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    tangle_sizes: Dict[str, int] = field(default_factory=dict)
    node_health: Dict[str, Dict[str, object]] = field(default_factory=dict)
    plan: List[Dict[str, object]] = field(default_factory=list)
    injections: List[Tuple[float, str, str]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @classmethod
    def from_nodes(cls, *, scenario: str, seed: int, nodes,
                   sync_rounds_used: int, duration: float,
                   recovery_seconds: float = 0.0,
                   plan=None, injections=(), counters=None,
                   notes=()) -> "ConvergenceReport":
        """Build the report (and the verdict) from live full nodes."""
        node_hashes = {node.address: node_state_hashes(node)
                       for node in nodes}
        converged = bool(node_hashes) and all(
            _all_equal([hashes[key] for hashes in node_hashes.values()])
            for key in ("tangle", "ledger", "acl")
        )
        return cls(
            scenario=scenario,
            seed=seed,
            converged=converged,
            sync_rounds_used=sync_rounds_used,
            duration=duration,
            recovery_seconds=recovery_seconds,
            node_hashes=node_hashes,
            tangle_sizes={node.address: len(node.tangle) for node in nodes},
            node_health={node.address: node.health_digest()
                         for node in nodes},
            plan=list(plan) if plan is not None else [],
            injections=[list(entry) for entry in injections],
            counters=dict(counters or {}),
            notes=list(notes),
        )

    @property
    def reference_hashes(self) -> Dict[str, str]:
        """The agreed hashes (only meaningful when converged)."""
        if not self.node_hashes:
            return {}
        return next(iter(sorted(self.node_hashes.items())))[1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "converged": self.converged,
            "sync_rounds_used": self.sync_rounds_used,
            "duration": self.duration,
            "recovery_seconds": self.recovery_seconds,
            "node_hashes": self.node_hashes,
            "tangle_sizes": self.tangle_sizes,
            "node_health": self.node_health,
            "plan": self.plan,
            "injections": self.injections,
            "counters": self.counters,
            "notes": self.notes,
        }

    def to_json(self, *, indent: int = None) -> str:
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)
