"""Sim-vs-wire differential: the proof the TCP transport is honest.

The keystone obligation of the transport extraction: driving the *same*
seeded scenario through :class:`~repro.network.network.SimTransport`
and :class:`~repro.network.aio.AsyncioTransport` must converge every
replica to byte-identical tangle/ledger/ACL/credit hashes.  The real
transport is allowed to change *scheduling* (kernel timing reorders
gossip run to run) but never *state*.

Making that a meaningful equality needs a workload whose final state is
a pure function of the transaction **set**, independent of arrival
order — the properties the state machine already guarantees:

* credit records key on ``tx.timestamp`` (ledger time), never local
  arrival time, and lazy detection uses parent *timestamp* ages;
* ledger conflict arbitration is deterministic (lowest hash wins), and
  this workload contains no double-spends, whose *penalties* are the
  one arrival-order-dependent effect;
* with ``InverseDifficultyPolicy(initial_difficulty=1)`` and no
  penalties the credit-required difficulty is always exactly 1, so
  admission cannot depend on which subset of history a node has seen.

So the workload is **pre-generated** against a reference node with a
virtual clock — fixed timestamps, parents picked from the reference's
tips, real PoW at difficulty 1 — and each leg only *delivers* those
bytes: a driver submits them serially to one admitting node (waiting
for every ``submit_response``), gossip floods them to the rest, and
anti-entropy sync rounds close any tail.  The report follows the
``repro.storage.differential`` format (reference / per-leg hashes /
``matched``), and each leg also yields a ChaosRunner-style
:class:`~repro.faults.report.ConvergenceReport`.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.acl import AclAction, AuthorizationList
from ..core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
from ..core.credit import CreditParameters
from ..core.credit import CreditRegistry
from ..crypto.keys import KeyPair
from ..faults.report import ConvergenceReport, credit_hash, node_state_hashes
from ..network.network import Network, NetworkNode
from ..network.simulator import EventScheduler
from ..storage.differential import node_hashes
from ..tangle.ledger import TransferPayload
from ..tangle.transaction import Transaction, TransactionKind
from .aio import AsyncioScheduler, AsyncioTransport, NodeRunner
from .transport import BACKBONE_LINK, Message

__all__ = [
    "FLEET_SCENARIOS",
    "FleetWorkload",
    "build_workload",
    "run_sim_leg",
    "run_wire_leg",
    "run_fleet_differential",
    "FleetDifferentialResult",
]

TOKEN_GRANT = 500
"""Initial balance of every transacting identity in the workload."""

FLEET_SCENARIOS: Dict[str, Dict[str, int]] = {
    "smoke": {"node_count": 5, "transactions": 40},
    "mini": {"node_count": 3, "transactions": 12},
}
"""Named fleet scenarios: ``smoke`` is the CI shape (5-node localhost
fleet); ``mini`` keeps unit tests fast."""

_MAX_SYNC_ROUNDS = 10
_SUBMIT_ATTEMPTS = 3


@dataclass
class FleetWorkload:
    """A fully pre-generated, transport-independent scenario."""

    seed: int
    genesis: Transaction
    transactions: List[bytes]
    credit_now: float
    reference_hashes: Dict[str, str]
    params: CreditParameters = field(default_factory=CreditParameters)


def _new_consensus(params: CreditParameters) -> CreditBasedConsensus:
    return CreditBasedConsensus(
        CreditRegistry(params),
        policy=InverseDifficultyPolicy(initial_difficulty=1),
        max_parent_age=params.delta_t,
    )


def build_workload(seed: int, *, transactions: int = 40,
                   devices: int = 3) -> FleetWorkload:
    """Pre-generate the scenario against a reference node.

    Timestamps come from a virtual clock (0.5 s per transaction),
    parents from the reference's live tip set, and every transaction
    carries real PoW at difficulty 1 — nothing in the bytes depends on
    wall time or transport scheduling.
    """
    if transactions < 4:
        raise ValueError("fleet workload needs at least 4 transactions")
    from ..nodes.full_node import FullNode
    from ..nodes.manager import ManagerNode

    rng = random.Random(f"fleet:{seed}")
    params = CreditParameters()
    manager_keys = KeyPair.generate(seed=f"fleet:{seed}:manager".encode())
    device_keys = [
        KeyPair.generate(seed=f"fleet:{seed}:device:{i}".encode())
        for i in range(devices)
    ]
    genesis = ManagerNode.create_genesis(
        manager_keys,
        network_name=f"fleet-{seed}",
        token_allocations=[(manager_keys.node_id, TOKEN_GRANT)]
        + [(keys.node_id, TOKEN_GRANT) for keys in device_keys],
    )
    reference = FullNode("wl-reference", genesis,
                         consensus=_new_consensus(params),
                         rng=random.Random(0), enforce_pow=True)

    encoded: List[bytes] = []
    virtual_time = 1.0

    def issue(keys: KeyPair, *, kind: str, payload: bytes) -> Transaction:
        nonlocal virtual_time
        tips = reference.tangle.tips()
        tx = Transaction.create(
            keys, kind=kind, payload=payload, timestamp=virtual_time,
            branch=rng.choice(tips), trunk=rng.choice(tips), difficulty=1)
        if not reference.ingest_local(tx):
            raise RuntimeError(
                f"workload reference rejected its own {kind} transaction")
        encoded.append(tx.to_bytes())
        virtual_time += 0.5
        return tx

    # First transaction: authorize the device population, so the legs'
    # admission checks (ACL + credit difficulty) pass for everything
    # that follows and the acl hash is non-trivial.
    issue(manager_keys, kind=TransactionKind.ACL,
          payload=AuthorizationList.make_update(
              [keys.public for keys in device_keys],
              action=AclAction.AUTHORIZE).to_bytes())

    accounts = [manager_keys] + device_keys
    for _ in range(transactions - 1):
        if rng.random() < 0.4:
            sender = rng.choice(device_keys)
            recipient = rng.choice(
                [keys for keys in accounts
                 if keys.node_id != sender.node_id])
            payload = TransferPayload(
                sender=sender.node_id, recipient=recipient.node_id,
                amount=rng.randint(1, 5),
                sequence=reference.ledger.next_sequence(sender.node_id))
            issue(sender, kind=TransactionKind.TRANSFER,
                  payload=payload.to_bytes())
        else:
            issue(rng.choice(device_keys), kind=TransactionKind.DATA,
                  payload=rng.randbytes(16))

    credit_now = virtual_time + 1.0
    return FleetWorkload(
        seed=seed,
        genesis=genesis,
        transactions=encoded,
        credit_now=credit_now,
        reference_hashes=node_hashes(reference, now=credit_now),
        params=params,
    )


def _build_fleet_nodes(workload: FleetWorkload, node_count: int):
    from ..nodes.full_node import FullNode

    nodes = [
        FullNode(f"n{i}", workload.genesis,
                 consensus=_new_consensus(workload.params),
                 rng=random.Random(i), enforce_pow=True)
        for i in range(node_count)
    ]
    for a in nodes:
        for b in nodes:
            if a.address != b.address:
                a.add_peer(b.address)
    return nodes


def _fleet_hashes(nodes, *, now: float) -> Dict[str, Dict[str, str]]:
    return {node.address: node_hashes(node, now=now) for node in nodes}


def _hashes_agree(per_node: Dict[str, Dict[str, str]]) -> bool:
    distinct = {tuple(sorted(h.items())) for h in per_node.values()}
    return len(distinct) == 1


def _leg_report(*, scenario: str, seed: int, nodes, rounds: int,
                duration: float, counters: Dict[str, int],
                notes) -> ConvergenceReport:
    return ConvergenceReport.from_nodes(
        scenario=scenario, seed=seed, nodes=nodes,
        sync_rounds_used=rounds, duration=duration,
        counters=counters, notes=notes)


class _SubmitDriver(NetworkNode):
    """Serial submitter shared by both legs: one transaction in flight
    at a time, so the admitting node attaches parents before children
    and admission state never races the workload."""

    def __init__(self, transactions: List[bytes], target: str):
        super().__init__("driver")
        self.transactions = transactions
        self.target = target
        self.results: List[Tuple[bool, Optional[str]]] = []
        self.response_futures: Dict[int, "asyncio.Future"] = {}

    @property
    def rejected(self) -> List[Dict[str, object]]:
        return [
            {"index": index, "error": error}
            for index, (ok, error) in enumerate(self.results)
            if not ok and error != "duplicate"
        ]

    def submit(self, index: int) -> bool:
        encoded = self.transactions[index]
        return self.send(self.target, "submit_transaction",
                         {"transaction": encoded, "request_id": index},
                         size_bytes=len(encoded))

    def handle_message(self, message: Message) -> None:
        if message.kind != "submit_response":
            return
        body = message.body
        index = body.get("request_id")
        outcome = (bool(body.get("ok")), body.get("error"))
        if isinstance(index, int):
            if index == len(self.results):
                self.results.append(outcome)
            future = self.response_futures.pop(index, None)
            if future is not None and not future.done():
                future.set_result(outcome)
        self.on_response(index)

    def on_response(self, index) -> None:
        """Hook for the sim leg's send-next chaining; wire leg awaits
        futures instead."""


# -- simulated leg ---------------------------------------------------------

def run_sim_leg(workload: FleetWorkload, *, node_count: int, seed: int,
                scenario: str = "smoke"):
    """Deliver the workload over the discrete-event simulator.

    Returns ``(report, per_node_hashes, rounds)``; bit-deterministic
    for a given ``(workload, node_count, seed)``.
    """
    scheduler = EventScheduler()
    network = Network(scheduler, default_link=BACKBONE_LINK,
                      rng=random.Random(f"fleet-sim:{seed}"))
    nodes = _build_fleet_nodes(workload, node_count)
    for node in nodes:
        network.attach(node)

    driver = _SubmitDriver(workload.transactions, target=nodes[0].address)
    network.attach(driver)

    def submit_next(_index=None) -> None:
        pending = len(driver.results)
        if pending < len(driver.transactions):
            driver.submit(pending)

    driver.on_response = submit_next
    scheduler.schedule(0.0, submit_next)
    scheduler.run()

    rounds = 0
    per_node = _fleet_hashes(nodes, now=workload.credit_now)
    while not _hashes_agree(per_node) and rounds < _MAX_SYNC_ROUNDS:
        rounds += 1
        for node in nodes:
            node.resync_with_peers()
        scheduler.run()
        per_node = _fleet_hashes(nodes, now=workload.credit_now)

    report = _leg_report(
        scenario=f"fleet-{scenario}-sim", seed=seed, nodes=nodes,
        rounds=rounds, duration=scheduler.clock.now(),
        counters={
            "messages_sent": network.messages_sent,
            "messages_delivered": network.messages_delivered,
            "messages_dropped": network.messages_dropped,
            "submissions": len(driver.results),
        },
        notes=[f"rejected:{len(driver.rejected)}"])
    return report, per_node, rounds, driver.rejected


# -- wire leg --------------------------------------------------------------

async def run_wire_leg(workload: FleetWorkload, *, node_count: int,
                       seed: int, scenario: str = "smoke",
                       host: str = "127.0.0.1", time_scale: float = 20.0,
                       drain_timeout: float = 20.0):
    """Deliver the same workload over a localhost TCP fleet.

    Boots one :class:`NodeRunner` per full node (ephemeral ports), a
    connect-only driver, submits serially awaiting every response, then
    drains gossip and runs anti-entropy rounds until the hashes agree.
    """
    scheduler = AsyncioScheduler(time_scale=time_scale)
    directory: Dict[str, Tuple[str, int]] = {}
    nodes = _build_fleet_nodes(workload, node_count)
    runners = [
        NodeRunner(node,
                   AsyncioTransport(scheduler, directory=directory,
                                    rng=random.Random(f"wire:{seed}:{i}")),
                   listen=(host, 0))
        for i, node in enumerate(nodes)
    ]
    driver = _SubmitDriver(workload.transactions, target=nodes[0].address)
    driver_transport = AsyncioTransport(
        scheduler, directory=directory,
        rng=random.Random(f"wire:{seed}:driver"))
    driver_runner = NodeRunner(driver, driver_transport, listen=None)

    loop = asyncio.get_running_loop()
    try:
        for runner in runners:
            await runner.start()
        await driver_runner.start()

        for index in range(len(workload.transactions)):
            outcome = None
            for _ in range(_SUBMIT_ATTEMPTS):
                future = loop.create_future()
                driver.response_futures[index] = future
                driver.submit(index)
                try:
                    outcome = await asyncio.wait_for(future, timeout=10.0)
                    break
                except asyncio.TimeoutError:
                    driver.response_futures.pop(index, None)
            if outcome is None:
                raise RuntimeError(
                    f"no submit_response for workload transaction "
                    f"{index} after {_SUBMIT_ATTEMPTS} attempts")

        # Gossip drain: every replica should reach the full DAG without
        # any explicit sync; anti-entropy below is the backstop.
        expected = len(workload.transactions) + 1  # + genesis
        deadline = loop.time() + drain_timeout
        while (loop.time() < deadline
               and any(len(node.tangle) < expected for node in nodes)):
            await asyncio.sleep(0.05)

        rounds = 0
        per_node = _fleet_hashes(nodes, now=workload.credit_now)
        while not _hashes_agree(per_node) and rounds < _MAX_SYNC_ROUNDS:
            rounds += 1
            for node in nodes:
                node.resync_with_peers()
            await asyncio.sleep(0.3)
            per_node = _fleet_hashes(nodes, now=workload.credit_now)

        report = _leg_report(
            scenario=f"fleet-{scenario}-wire", seed=seed, nodes=nodes,
            rounds=rounds, duration=scheduler.clock.now(),
            counters={
                "messages_sent": sum(
                    r.transport.messages_sent for r in runners),
                "messages_delivered": sum(
                    r.transport.messages_delivered for r in runners),
                "messages_dropped": sum(
                    r.transport.messages_dropped for r in runners),
                "submissions": len(driver.results),
            },
            notes=[f"rejected:{len(driver.rejected)}"])
        return report, per_node, rounds, driver.rejected
    finally:
        await driver_runner.stop()
        for runner in runners:
            await runner.stop()
        scheduler.cancel_all()


# -- the differential ------------------------------------------------------

@dataclass
class FleetDifferentialResult:
    """Everything one differential run produced."""

    result: Dict[str, object]
    sim_report: ConvergenceReport
    wire_report: ConvergenceReport

    @property
    def matched(self) -> bool:
        return bool(self.result["matched"])


def _leg_summary(per_node: Dict[str, Dict[str, str]], rounds: int,
                 rejected) -> Dict[str, object]:
    agreed = _hashes_agree(per_node)
    hashes = next(iter(sorted(per_node.items())))[1] if per_node else {}
    return {
        "converged": agreed,
        "sync_rounds": rounds,
        "hashes": hashes if agreed else {},
        "per_node": per_node,
        "rejected": list(rejected),
    }


def run_fleet_differential(*, seed: int, scenario: str = "smoke",
                           node_count: Optional[int] = None,
                           transactions: Optional[int] = None,
                           host: str = "127.0.0.1",
                           time_scale: float = 20.0
                           ) -> FleetDifferentialResult:
    """Run both legs and compare; ``matched`` is the sim≡wire verdict.

    ``matched`` is True iff both legs converged internally AND both
    agree with the reference node's four hashes — the acceptance
    criterion of the transport extraction.
    """
    if scenario not in FLEET_SCENARIOS:
        known = ", ".join(sorted(FLEET_SCENARIOS))
        raise ValueError(f"unknown fleet scenario {scenario!r} "
                         f"(known: {known})")
    shape = FLEET_SCENARIOS[scenario]
    node_count = node_count if node_count is not None \
        else shape["node_count"]
    transactions = transactions if transactions is not None \
        else shape["transactions"]
    if node_count < 2:
        raise ValueError("fleet differential needs at least 2 nodes")

    workload = build_workload(seed, transactions=transactions)
    sim_report, sim_nodes, sim_rounds, sim_rejected = run_sim_leg(
        workload, node_count=node_count, seed=seed, scenario=scenario)
    wire_report, wire_nodes, wire_rounds, wire_rejected = asyncio.run(
        run_wire_leg(workload, node_count=node_count, seed=seed,
                     scenario=scenario, host=host, time_scale=time_scale))

    sim_summary = _leg_summary(sim_nodes, sim_rounds, sim_rejected)
    wire_summary = _leg_summary(wire_nodes, wire_rounds, wire_rejected)
    matched = (
        sim_summary["converged"] and wire_summary["converged"]
        and sim_summary["hashes"] == workload.reference_hashes
        and wire_summary["hashes"] == workload.reference_hashes
    )
    result = {
        "seed": seed,
        "scenario": scenario,
        "node_count": node_count,
        "transactions": transactions,
        "reference": workload.reference_hashes,
        "sim": sim_summary,
        "wire": wire_summary,
        "matched": matched,
    }
    return FleetDifferentialResult(result=result, sim_report=sim_report,
                                   wire_report=wire_report)
