"""One node as one OS process: the ``repro node`` entrypoint.

Everything above the transport already exists — :class:`~repro.network.
aio.NodeRunner` hosts a node on an :class:`~repro.network.aio.
AsyncioTransport`, :mod:`repro.storage` makes its state durable, and
:mod:`repro.network.discovery` replaces the shared in-process address
dict.  This module is the thin shell that turns those pieces into an
independent OS-level participant:

* build the full node exactly as the fleet differential does (same
  consensus policy, same rng seeding), so a process fleet can be
  compared hash-for-hash against the in-process reference;
* open the durable store, and **cold-restore automatically** when the
  store is already populated — restarting a killed process is just
  running the same command line again;
* bootstrap into the fleet through seed nodes (``disc_hello``), then
  answer the fleet control plane (``fleet_status`` / ``fleet_resync`` /
  ``fleet_shutdown``) over the same framed envelopes;
* serve Prometheus metrics over plain HTTP on a per-process port;
* print a single machine-readable **ready line** on stdout —
  ``{"event": "ready", "port": …, "metrics_port": …}`` — the harness's
  cue that the ephemeral ports are bound and dialable;
* exit cleanly on SIGTERM/SIGINT: flush transport outboxes, close the
  store (no journal-tail corruption on reopen).

The process protocol is deliberately line-oriented and dependency-free
so the harness (:mod:`repro.network.fleet_proc`) can drive it with
nothing but ``subprocess`` and a pipe.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.credit import CreditParameters
from ..telemetry.exporters import to_prometheus_text
from ..telemetry.registry import MetricsRegistry
from .aio import AsyncioScheduler, AsyncioTransport, NodeRunner
from .discovery import DiscoveryService, parse_seed

__all__ = ["NodeProcessSpec", "run_node_process", "READY_EVENT",
           "STATUS_KIND", "STATUS_RESPONSE_KIND", "RESYNC_KIND",
           "RESYNC_ACK_KIND", "SHUTDOWN_KIND", "SHUTDOWN_ACK_KIND"]

READY_EVENT = "ready"

STATUS_KIND = "fleet_status"
STATUS_RESPONSE_KIND = "fleet_status_response"
RESYNC_KIND = "fleet_resync"
RESYNC_ACK_KIND = "fleet_resync_ack"
SHUTDOWN_KIND = "fleet_shutdown"
SHUTDOWN_ACK_KIND = "fleet_shutdown_ack"

_STORAGE_BACKENDS = ("none", "memory", "file", "sqlite")


@dataclass
class NodeProcessSpec:
    """Everything one ``repro node`` process needs, argv-serialisable.

    ``rng_seed`` matters for hash-equivalence: the differential's
    reference fleet builds node ``n{i}`` with ``random.Random(i)``, so
    a process standing in for ``n{i}`` must carry the same seed.
    """

    address: str
    genesis_path: str
    rng_seed: int = 0
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    advertise_host: Optional[str] = None
    seeds: List[str] = field(default_factory=list)
    storage_backend: str = "none"
    storage_dir: Optional[str] = None
    crypto_backend: str = "reference"
    metrics_port: Optional[int] = None
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.storage_backend not in _STORAGE_BACKENDS:
            raise ValueError(
                f"unknown storage backend {self.storage_backend!r} "
                f"(known: {', '.join(_STORAGE_BACKENDS)})")
        if self.storage_backend in ("file", "sqlite") \
                and not self.storage_dir:
            raise ValueError(
                f"storage backend {self.storage_backend!r} needs "
                f"--storage-dir")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        for spec in self.seeds:
            parse_seed(spec)  # fail fast on malformed seed specs

    def to_argv(self) -> List[str]:
        """The ``repro node`` argument vector reproducing this spec."""
        argv = [
            "node",
            "--address", self.address,
            "--genesis", self.genesis_path,
            "--rng-seed", str(self.rng_seed),
            "--listen",
            f"{self.listen_host}:{self.listen_port}",
            "--storage-backend", self.storage_backend,
            "--crypto-backend", self.crypto_backend,
            "--time-scale", str(self.time_scale),
        ]
        if self.advertise_host:
            argv += ["--advertise-host", self.advertise_host]
        if self.storage_dir:
            argv += ["--storage-dir", self.storage_dir]
        if self.metrics_port is not None:
            argv += ["--metrics-port", str(self.metrics_port)]
        for seed in self.seeds:
            argv += ["--seed-node", seed]
        return argv


def _load_genesis(path: str):
    from ..tangle.transaction import Transaction

    with open(path, "r") as handle:
        return Transaction.from_bytes(bytes.fromhex(handle.read().strip()))


def _build_node(spec: NodeProcessSpec, genesis, registry):
    """Mirror ``differential._build_fleet_nodes`` so a process fleet is
    hash-comparable with the in-process reference fleet."""
    from ..nodes.full_node import FullNode
    from .differential import _new_consensus

    return FullNode(
        spec.address, genesis,
        consensus=_new_consensus(CreditParameters()),
        rng=random.Random(spec.rng_seed),
        enforce_pow=True,
        crypto_backend=spec.crypto_backend,
        telemetry=registry)


async def _serve_metrics(registry, host: str,
                         port: int) -> Tuple[object, int]:
    """Minimal HTTP/1.1 exporter: any GET answers the full Prometheus
    text page.  Stdlib-only on purpose — one scrape target per node
    process, no routing, no keep-alive."""

    async def handle(reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = to_prometheus_text(registry).encode("utf-8")
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; "
                b"charset=utf-8\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host, port)
    bound = server.sockets[0].getsockname()[1]
    return server, bound


async def _amain(spec: NodeProcessSpec, *, ready_stream) -> int:
    from ..storage.differential import node_hashes

    registry = MetricsRegistry()
    genesis = _load_genesis(spec.genesis_path)
    node = _build_node(spec, genesis, registry)

    restored = 0
    persistence = None
    if spec.storage_backend != "none":
        from ..storage.persistence import NodePersistence
        from ..storage.store import open_store

        store = open_store(spec.storage_backend, spec.storage_dir,
                           node=spec.address, telemetry=registry)
        persistence = NodePersistence(store, telemetry=registry)
        populated = (persistence.epoch > 0
                     or persistence.transactions_logged > 0)
        node.attach_persistence(persistence)
        if populated:
            # Same command line, populated store: this is a restart.
            restored = node.cold_restore()

    scheduler = AsyncioScheduler(time_scale=spec.time_scale)
    transport = AsyncioTransport(
        scheduler, directory={},
        rng=random.Random(f"proc:{spec.address}:{spec.rng_seed}"),
        telemetry=registry)
    runner = NodeRunner(node, transport,
                        listen=(spec.listen_host, spec.listen_port),
                        advertise_host=spec.advertise_host)
    discovery = DiscoveryService(
        transport, address=spec.address, role="full",
        seeds=[parse_seed(s) for s in spec.seeds],
        on_full_peer=node.add_peer, telemetry=registry)

    stop = asyncio.Event()

    def _on_status(message) -> None:
        body = message.body
        now = float(body.get("now", scheduler.clock.now()))
        transport.send(spec.address, message.sender, STATUS_RESPONSE_KIND, {
            "request_id": body.get("request_id"),
            "address": spec.address,
            "pid": os.getpid(),
            "tangle_size": len(node.tangle),
            "peers": sorted(node.relay.peers),
            "bootstrapped": discovery.bootstrapped,
            "restored": restored,
            "hashes": node_hashes(node, now=now),
        })

    def _on_resync(message) -> None:
        node.resync_with_peers()
        transport.send(spec.address, message.sender, RESYNC_ACK_KIND,
                       {"request_id": message.body.get("request_id"),
                        "address": spec.address})

    def _on_shutdown(message) -> None:
        transport.send(spec.address, message.sender, SHUTDOWN_ACK_KIND,
                       {"request_id": message.body.get("request_id"),
                        "address": spec.address})
        stop.set()

    transport.register_handler(STATUS_KIND, _on_status)
    transport.register_handler(RESYNC_KIND, _on_resync)
    transport.register_handler(SHUTDOWN_KIND, _on_shutdown)

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)

    metrics_server = None
    metrics_port = None
    try:
        await runner.start()
        if spec.metrics_port is not None:
            metrics_server, metrics_port = await _serve_metrics(
                registry, spec.listen_host, spec.metrics_port)
        discovery.start()

        ready_stream.write(json.dumps({
            "event": READY_EVENT,
            "address": spec.address,
            "pid": os.getpid(),
            "host": transport.advertised_address[0],
            "port": transport.advertised_address[1],
            "metrics_port": metrics_port,
            "restored": restored,
            "storage": spec.storage_backend,
        }, sort_keys=True) + "\n")
        ready_stream.flush()

        await stop.wait()
        return 0
    finally:
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()
        await runner.stop()
        if persistence is not None:
            persistence.store.close()


def run_node_process(spec: NodeProcessSpec, *,
                     ready_stream=None) -> int:
    """Run one node process to completion; returns its exit code."""
    stream = ready_stream if ready_stream is not None else sys.stdout
    return asyncio.run(_amain(spec, ready_stream=stream))
