"""The simulated network connecting B-IoT nodes.

Nodes register under string addresses; :meth:`Network.send` samples the
link's latency model and schedules delivery on the shared
:class:`~repro.network.simulator.EventScheduler`.  Links can be cut and
restored at runtime, which is how the single-point-of-failure and DDoS
experiments disturb the system.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..telemetry.registry import SECONDS_BUCKETS, coerce_registry
from ..telemetry.tracer import NULL_TRACER
from .simulator import EventScheduler
from .transport import LOCAL_LINK, LatencyModel, LinkOverlay, Message

DUPLICATE_SPREAD_SECONDS = 0.05
"""Extra uniform delay a duplicated copy picks up over the original."""

__all__ = ["NetworkNode", "Network", "SimTransport"]


class NetworkNode:
    """Base class for anything attachable to a :class:`Network`.

    Subclasses implement :meth:`handle_message`; the network injects
    itself via :meth:`bind` so nodes can reply.

    ``service_time_s`` models the node's request-processing capacity:
    when positive, each delivered message occupies the node for that
    many seconds and later arrivals queue behind it (a single-server
    FIFO).  This is what makes flooding attacks *mean* something — a
    DDoSed gateway's queue grows and honest requests see its backlog.
    Zero (the default) keeps the node infinitely fast.
    """

    def __init__(self, address: str, *, service_time_s: float = 0.0):
        if not address:
            raise ValueError("node address must be non-empty")
        if service_time_s < 0:
            raise ValueError("service_time_s must be non-negative")
        self.address = address
        self.service_time_s = service_time_s
        # Fault injection: the node's local clock reads this many
        # seconds ahead of (or behind) the shared simulation clock.
        self.clock_offset = 0.0
        self.network: Optional["Network"] = None
        self.received_count = 0
        self.queue_depth_peak = 0
        self._busy_until = 0.0
        self._queued = 0

    def bind(self, network: "Network") -> None:
        self.network = network

    def send(self, recipient: str, kind: str, body, *, size_bytes: int = 0) -> bool:
        """Send a message through the bound network."""
        if self.network is None:
            raise RuntimeError(f"node {self.address} is not attached to a network")
        return self.network.send(self.address, recipient, kind, body,
                                 size_bytes=size_bytes)

    def handle_message(self, message: Message) -> None:
        """Process a delivered message (subclasses override)."""
        raise NotImplementedError

    def _deliver(self, message: Message) -> None:
        self.received_count += 1
        self.handle_message(message)

    def processing_delay(self, now: float) -> float:
        """Queue this arrival behind the node's backlog; returns how
        long after *now* the node actually processes it."""
        if self.service_time_s <= 0.0:
            return 0.0
        start = max(now, self._busy_until)
        self._busy_until = start + self.service_time_s
        self._queued += 1
        backlog = int(round((self._busy_until - now) / self.service_time_s))
        self.queue_depth_peak = max(self.queue_depth_peak, backlog)
        return self._busy_until - now

    @property
    def backlog_seconds(self) -> float:
        """How far the node's queue currently extends past the clock
        (meaningful only when ``service_time_s`` is positive)."""
        if self.network is None:
            return 0.0
        return max(0.0, self._busy_until - self.network.scheduler.clock.now())


class Network:
    """Address-routed message fabric with per-link latency models.

    Args:
        scheduler: the event scheduler driving time.
        default_link: latency model for node pairs without an explicit
            link configured.
        rng: randomness for latency jitter and loss (seed it!).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_network_*`` metrics (sent/delivered/dropped message
            counts by kind, delivery latency distribution).
        tracer: a :class:`~repro.telemetry.Tracer` for causal-context
            propagation — the sender's ambient context is stamped onto
            each :class:`Message` as envelope metadata and restored
            around the delivery callback.  Defaults to the null tracer
            (no capture, no restore).
    """

    def __init__(self, scheduler: EventScheduler, *,
                 default_link: LatencyModel = LOCAL_LINK,
                 rng: Optional[random.Random] = None,
                 telemetry=None, tracer=None):
        self.scheduler = scheduler
        self.default_link = default_link
        self._rng = rng if rng is not None else random.Random()
        self._nodes: Dict[str, NetworkNode] = {}
        # Sorted-address cache: broadcast() reads `addresses` once per
        # call, and re-sorting a few hundred addresses per broadcast is
        # pure waste when the topology rarely changes.
        self._addresses_cache: Optional[Tuple[str, ...]] = None
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._down: Set[str] = set()
        self._cut_links: Set[Tuple[str, str]] = set()
        # Fault-injection overlays: token -> (a, b, overlay); "*" is a
        # wildcard endpoint and matching is symmetric.
        self._overlays: Dict[int, Tuple[str, str, LinkOverlay]] = {}
        self._overlay_sequence = 0
        # Scheduled-but-undelivered messages, by scheduler event id, so
        # partitions and crashes can purge what is already in flight.
        self._in_flight: Dict[int, Message] = {}
        # Per-transport message-id allocator: ids are deterministic
        # (1, 2, 3, …) within one Network, and independent across
        # Networks sharing a process.
        self._message_sequence = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_purged = 0
        self.messages_duplicated = 0
        self._taps: List[Callable[[Message], None]] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = coerce_registry(telemetry)
        self._m_sent = self.telemetry.counter(
            "repro_network_messages_sent_total",
            "Messages handed to the network, by kind")
        self._m_delivered = self.telemetry.counter(
            "repro_network_messages_delivered_total",
            "Messages delivered to their recipient, by kind")
        self._m_dropped = self.telemetry.counter(
            "repro_network_messages_dropped_total",
            "Messages lost (down node, cut link, loss model)")
        self._m_latency = self.telemetry.histogram(
            "repro_network_delivery_latency_seconds",
            "Send-to-delivery simulated latency",
            buckets=SECONDS_BUCKETS)
        self._m_purged = self.telemetry.counter(
            "repro_fault_messages_purged_total",
            "In-flight messages purged by a partition cut or crash")
        self._m_duplicated = self.telemetry.counter(
            "repro_fault_messages_duplicated_total",
            "Messages delivered twice by a duplication overlay")

    # -- topology --------------------------------------------------------

    def attach(self, node: NetworkNode) -> None:
        """Register *node* under its address (must be unique)."""
        if node.address in self._nodes:
            raise ValueError(f"address {node.address!r} already attached")
        self._nodes[node.address] = node
        self._addresses_cache = None
        node.bind(self)

    def node(self, address: str) -> NetworkNode:
        return self._nodes[address]

    @property
    def addresses(self) -> List[str]:
        """All attached addresses, sorted.  Served from a cache that is
        invalidated on :meth:`attach` (the only topology mutation);
        callers get a fresh list copy, so mutating it is safe."""
        if self._addresses_cache is None:
            self._addresses_cache = tuple(sorted(self._nodes))
        return list(self._addresses_cache)

    def set_link(self, a: str, b: str, model: LatencyModel) -> None:
        """Configure the latency model between *a* and *b* (symmetric)."""
        self._links[(a, b)] = model
        self._links[(b, a)] = model

    def link_for(self, sender: str, recipient: str) -> LatencyModel:
        return self._links.get((sender, recipient), self.default_link)

    # -- failures --------------------------------------------------------

    def take_down(self, address: str) -> None:
        """Crash a node: all traffic to/from it is dropped.

        Messages already in flight *towards* the crashed node are
        purged immediately (a dead radio receives nothing); packets it
        transmitted before dying keep propagating — that is what closes
        the crash-time replication window.
        """
        if address not in self._nodes:
            raise KeyError(address)
        self._down.add(address)
        self._purge_in_flight(lambda msg: msg.recipient == address)

    def bring_up(self, address: str) -> None:
        """Restore a crashed node."""
        self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    def cut_link(self, a: str, b: str) -> None:
        """Partition: silently drop traffic between *a* and *b*.

        Also purges messages scheduled before the cut but not yet
        delivered — a severed cable loses what was on the wire.
        """
        self._cut_links.add((a, b))
        self._cut_links.add((b, a))
        self._purge_in_flight(
            lambda msg: {msg.sender, msg.recipient} == {a, b}
        )

    def heal_link(self, a: str, b: str) -> None:
        self._cut_links.discard((a, b))
        self._cut_links.discard((b, a))

    def restore_all(self) -> None:
        """Clear every failure switch: bring crashed nodes up, heal
        cuts, lift overlays, zero clock offsets.  The chaos runner
        calls this before its convergence phase so unhealed faults in a
        plan cannot make reconciliation structurally impossible."""
        self._down.clear()
        self._cut_links.clear()
        self._overlays.clear()
        for node in self._nodes.values():
            node.clock_offset = 0.0

    def _purge_in_flight(self, predicate: Callable[[Message], bool]) -> int:
        """Drop scheduled deliveries matching *predicate*; returns how
        many were purged (each counts as a drop)."""
        doomed = [event_id for event_id, msg in self._in_flight.items()
                  if predicate(msg)]
        for event_id in doomed:
            message = self._in_flight.pop(event_id)
            self.scheduler.cancel(event_id)
            self.messages_purged += 1
            self._m_purged.inc(kind=message.kind)
            self._count_drop(message.kind)
        return len(doomed)

    # -- disturbances (fault injection) ----------------------------------

    def add_overlay(self, a: str, b: str, overlay: LinkOverlay) -> int:
        """Stack *overlay* on traffic between *a* and *b* (symmetric;
        ``"*"`` matches any endpoint).  Returns a token for
        :meth:`remove_overlay`."""
        token = self._overlay_sequence
        self._overlay_sequence += 1
        self._overlays[token] = (a, b, overlay)
        return token

    def remove_overlay(self, token: int) -> None:
        """Lift a disturbance previously added with :meth:`add_overlay`."""
        self._overlays.pop(token, None)

    def _matching_overlays(self, sender: str, recipient: str) -> List[LinkOverlay]:
        matched = []
        for a, b, overlay in self._overlays.values():
            if ((a in ("*", sender) and b in ("*", recipient))
                    or (a in ("*", recipient) and b in ("*", sender))):
                matched.append(overlay)
        return matched

    # -- observation -----------------------------------------------------

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Observe every *delivered* message (metrics, debugging)."""
        self._taps.append(tap)

    # -- transmission ----------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str, body, *,
             size_bytes: int = 0) -> bool:
        """Route one message; returns False if it was dropped.

        Drops happen when either endpoint is down, the link is cut, the
        recipient is unknown, or the latency model loses the packet.
        """
        self.messages_sent += 1
        self._m_sent.inc(kind=kind)
        if recipient not in self._nodes:
            self._count_drop(kind)
            return False
        if sender in self._down or recipient in self._down:
            self._count_drop(kind)
            return False
        if (sender, recipient) in self._cut_links:
            self._count_drop(kind)
            return False
        delay = self.link_for(sender, recipient).sample_delay(self._rng, size_bytes)
        if delay is None:
            self._count_drop(kind)
            return False
        duplicate = False
        for overlay in self._matching_overlays(sender, recipient):
            if (overlay.extra_loss > 0.0
                    and self._rng.random() < overlay.extra_loss):
                self._count_drop(kind)
                return False
            delay += overlay.extra_latency
            if overlay.extra_jitter > 0.0:
                delay += self._rng.uniform(0.0, overlay.extra_jitter)
            if (overlay.duplicate_probability > 0.0
                    and self._rng.random() < overlay.duplicate_probability):
                duplicate = True
        self._message_sequence += 1
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            body=body,
            sent_at=self.scheduler.clock.now(),
            size_bytes=size_bytes,
            message_id=self._message_sequence,
            trace=self.tracer.current,
        )
        self._schedule_delivery(message, delay)
        if duplicate:
            self.messages_duplicated += 1
            self._m_duplicated.inc(kind=kind)
            self._schedule_delivery(
                message,
                delay + self._rng.uniform(0.0, DUPLICATE_SPREAD_SECONDS),
            )
        return True

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        node = self._nodes[message.recipient]
        # Arrival time = propagation; processing waits for the node's
        # service queue on top of that.
        arrival = self.scheduler.clock.now() + delay
        delay += node.processing_delay(arrival)
        holder: Dict[str, int] = {}

        def deliver() -> None:
            self._in_flight.pop(holder["event_id"], None)
            self._deliver(message)

        event_id = self.scheduler.schedule(delay, deliver)
        holder["event_id"] = event_id
        self._in_flight[event_id] = message

    def broadcast(self, sender: str, kind: str, body, *,
                  recipients: Optional[List[str]] = None,
                  size_bytes: int = 0) -> int:
        """Send to every attached node except the sender; returns how
        many messages were accepted for delivery."""
        targets = recipients if recipients is not None else [
            addr for addr in self.addresses if addr != sender
        ]
        return sum(
            1 for addr in targets
            if self.send(sender, addr, kind, body, size_bytes=size_bytes)
        )

    def _count_drop(self, kind: str) -> None:
        self.messages_dropped += 1
        self._m_dropped.inc(kind=kind)

    def _deliver(self, message: Message) -> None:
        # Re-check the RECIPIENT's liveness at delivery time: a node
        # that crashed while the message was in flight never sees it.
        # The sender's state is irrelevant here — a packet already
        # transmitted keeps propagating even if its sender died, which
        # is what closes the crash-time replication window.
        if message.recipient in self._down:
            self._count_drop(message.kind)
            return
        node = self._nodes.get(message.recipient)
        if node is None:  # pragma: no cover - detach is not supported
            self._count_drop(message.kind)
            return
        self.messages_delivered += 1
        self._m_delivered.inc(kind=message.kind)
        self._m_latency.observe(
            self.scheduler.clock.now() - message.sent_at)
        if message.trace is not None:
            # Restore the sender's causal context around the handler so
            # spans opened (and messages re-sent) inside it chain onto
            # the originating trace.
            with self.tracer.activate(message.trace):
                for tap in self._taps:
                    tap(message)
                node._deliver(message)
            return
        for tap in self._taps:
            tap(message)
        node._deliver(message)


SimTransport = Network
"""The discrete-event simulator viewed through the
:class:`~repro.network.base.Transport` contract.

``Network`` predates the transport extraction and keeps its name (and
exact behaviour) for the simulation stack; ``SimTransport`` is the same
class under the role it plays next to
:class:`~repro.network.aio.AsyncioTransport`.
"""
