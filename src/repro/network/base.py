"""The transport contract every network backend satisfies.

Nodes are written against a deliberately small surface: they are
attached to a transport, reply through :meth:`Transport.send`, and read
time / defer work through ``transport.scheduler`` (an object exposing
``clock.now()``, ``schedule(delay, callback) -> event_id`` and
``cancel(event_id)``).  Everything else on
:class:`~repro.network.network.Network` — link models, fault switches,
overlays — is simulator-specific and not part of the contract.

Two backends implement it:

* :class:`~repro.network.network.SimTransport` (the discrete-event
  simulator, historically named ``Network``) — bit-deterministic:
  the same seed yields the same event schedule, byte for byte.
* :class:`~repro.network.aio.AsyncioTransport` — real length-prefixed
  frames over localhost/LAN TCP, driven by the asyncio event loop —
  convergence-deterministic: scheduling varies run to run, but the
  replicated state (tangle/ledger/ACL/credit hashes) must not (the
  property the fleet differential harness in
  :mod:`repro.network.differential` asserts).
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from .transport import Message

__all__ = ["Transport", "SchedulerLike"]


class SchedulerLike(Protocol):
    """What nodes require of ``transport.scheduler``."""

    clock: object  # exposes now() -> float

    def schedule(self, delay: float, callback) -> int: ...

    def cancel(self, event_id: int) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """Minimal routing surface nodes program against.

    ``attach`` binds a node (the transport injects itself so the node
    can reply); ``send`` routes one message and returns False when the
    transport already knows it cannot be delivered; ``broadcast`` fans
    out to every other known address.  ``addresses`` lists the
    addresses this transport can currently route to, local node
    included.
    """

    scheduler: SchedulerLike

    def attach(self, node) -> None: ...

    @property
    def addresses(self) -> List[str]: ...

    def send(self, sender: str, recipient: str, kind: str, body, *,
             size_bytes: int = 0) -> bool: ...

    def broadcast(self, sender: str, kind: str, body, *,
                  recipients=None, size_bytes: int = 0) -> int: ...

    def add_tap(self, tap) -> None: ...


def is_transport(obj) -> bool:
    """Structural check used by tests and assembly code."""
    return isinstance(obj, Transport) and callable(getattr(obj, "send", None))
