"""Seed-node bootstrap and peer discovery for multi-process fleets.

When every node lives in one Python process the address book can be a
shared dict; once nodes become independent OS processes (``repro
node``), the book itself must travel the wire.  This module is that
protocol, riding the existing framed envelope encoding as three
control-plane message kinds:

* ``disc_hello`` — a joiner announces itself to a *seed node*:
  ``{address, host, port, role}`` (``port`` is None for connect-only
  endpoints such as drivers, which are reachable over the reverse
  route only);
* ``disc_peers`` — the seed's reply: its full peer table, the joiner's
  freshly-recorded entry included, so one round trip bootstraps the
  newcomer;
* ``disc_announce`` — push notification flooded to known *full* peers
  whenever an entry is learned or **changed** — a node rejoining after
  a crash binds a fresh ephemeral port, and the announcement is what
  retires the stale address fleet-wide.

Every node runs the same :class:`DiscoveryService`; "seed" is a role
in a conversation, not a node type — whichever node a ``disc_hello``
reaches records and re-announces the sender.  Announcements are
idempotent: re-learning an identical ``(host, port, role)`` entry
neither re-floods nor re-registers the gossip peer, so announcement
storms converge instead of echoing forever.

Bootstrap is crash-tolerant: hellos retry under the node's
:class:`~repro.faults.backoff.BackoffPolicy` until a ``disc_peers``
reply lands or attempts exhaust, so a fleet whose seed comes up *last*
still assembles (the seed-down-at-start case the sandboxed fixture
exercises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..faults.backoff import BackoffPolicy
from ..telemetry.registry import coerce_registry
from .transport import Message

__all__ = ["DiscoveryService", "PeerInfo", "parse_seed"]

HELLO_KIND = "disc_hello"
PEERS_KIND = "disc_peers"
ANNOUNCE_KIND = "disc_announce"

ROLE_FULL = "full"
ROLE_LIGHT = "light"
ROLE_DRIVER = "driver"
_ROLES = frozenset({ROLE_FULL, ROLE_LIGHT, ROLE_DRIVER})


@dataclass(frozen=True)
class PeerInfo:
    """One directory entry as discovery sees it."""

    address: str
    host: Optional[str]
    port: Optional[int]
    role: str

    @property
    def dialable(self) -> bool:
        return self.host is not None and self.port is not None

    def to_body(self) -> Dict[str, object]:
        return {"address": self.address, "host": self.host,
                "port": self.port, "role": self.role}

    @classmethod
    def from_body(cls, body) -> "PeerInfo":
        address = body["address"]
        host = body.get("host")
        port = body.get("port")
        role = body.get("role", ROLE_FULL)
        if not isinstance(address, str) or not address:
            raise ValueError("peer address must be a non-empty str")
        if host is not None and not isinstance(host, str):
            raise ValueError("peer host must be a str or None")
        if port is not None and (not isinstance(port, int)
                                 or isinstance(port, bool)
                                 or not 1 <= port <= 65535):
            raise ValueError("peer port must be in [1, 65535] or None")
        if role not in _ROLES:
            raise ValueError(f"unknown peer role {role!r}")
        return cls(address=address, host=host, port=port, role=role)


def parse_seed(spec: str) -> Tuple[str, str, int]:
    """Parse an ``address=host:port`` seed spec.

    The node *address* is part of the spec because the transport routes
    by address: the joiner must know what to call the seed before the
    seed can introduce itself.
    """
    try:
        address, endpoint = spec.split("=", 1)
        host, port_text = endpoint.rsplit(":", 1)
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"seed spec {spec!r} is not address=host:port") from None
    if not address or not host or not 1 <= port <= 65535:
        raise ValueError(f"seed spec {spec!r} is not address=host:port")
    return address, host, port


class DiscoveryService:
    """Peer discovery bound to one :class:`~repro.network.aio.
    AsyncioTransport`.

    Args:
        transport: the node's transport; discovery registers handlers
            for the three ``disc_*`` kinds and reads/writes the
            transport's directory.
        address: the local node's address (the transport may not have a
            node attached yet when the service is built).
        role: ``"full"`` / ``"light"`` / ``"driver"`` — only full peers
            are offered to ``on_full_peer`` (gossip flooding targets).
        seeds: ``(address, host, port)`` triples to hello at startup.
        policy: retry pacing for unanswered hellos (the node's
            :class:`~repro.faults.backoff.BackoffPolicy`).
        on_full_peer: callback invoked once per *newly learned* full
            peer (typically ``FullNode.add_peer``); never called for
            the local address, and never called twice for an unchanged
            entry.
    """

    def __init__(self, transport, *, address: str, role: str = ROLE_FULL,
                 seeds: Iterable[Tuple[str, str, int]] = (),
                 policy: Optional[BackoffPolicy] = None,
                 on_full_peer: Optional[Callable[[str], None]] = None,
                 telemetry=None):
        if role not in _ROLES:
            raise ValueError(f"unknown discovery role {role!r}")
        self.transport = transport
        self.address = address
        self.role = role
        self.seeds = list(seeds)
        self.policy = policy if policy is not None else BackoffPolicy(
            base_delay=0.2, multiplier=2.0, max_delay=2.0, jitter=0.25,
            max_attempts=8)
        self.on_full_peer = on_full_peer
        self.peers: Dict[str, PeerInfo] = {}
        self.bootstrapped = False
        self.hello_attempts = 0
        registry = coerce_registry(telemetry)
        self._m_hellos = registry.counter(
            "repro_discovery_hellos_total",
            "disc_hello messages sent to seed nodes (retries included)")
        self._m_learned = registry.counter(
            "repro_discovery_peers_learned_total",
            "Peer table entries learned or updated via discovery")
        self._m_announces = registry.counter(
            "repro_discovery_announces_total",
            "disc_announce floods emitted for new/changed entries")
        self._m_duplicates = registry.counter(
            "repro_discovery_duplicate_entries_total",
            "Idempotently re-learned (unchanged) peer entries")
        self._m_exhausted = registry.counter(
            "repro_discovery_bootstrap_exhausted_total",
            "Bootstrap loops that ran out of hello attempts")
        transport.register_handler(HELLO_KIND, self._handle_hello)
        transport.register_handler(PEERS_KIND, self._handle_peers)
        transport.register_handler(ANNOUNCE_KIND, self._handle_announce)
        # Seeds are dialable before they are *known*: prime the routing
        # directory so the first hello has somewhere to go.
        for seed_address, host, port in self.seeds:
            if seed_address != self.address:
                transport.directory.setdefault(seed_address, (host, port))

    # -- local facts -------------------------------------------------------

    def _self_info(self) -> PeerInfo:
        advertised = getattr(self.transport, "advertised_address", None)
        host, port = (advertised if advertised is not None
                      else (None, None))
        return PeerInfo(address=self.address, host=host, port=port,
                        role=self.role)

    def full_peers(self) -> List[str]:
        """Known full-node addresses, the local one excluded."""
        return sorted(
            address for address, info in self.peers.items()
            if info.role == ROLE_FULL and address != self.address)

    # -- bootstrap ---------------------------------------------------------

    def start(self) -> None:
        """Begin helloing the seeds; no-op without seeds (a genesis
        seed node has nobody to ask — it just answers)."""
        if not self.seeds:
            self.bootstrapped = True
            return
        self._hello_round(attempt=1)

    def _hello_round(self, attempt: int) -> None:
        if self.bootstrapped:
            return
        self.hello_attempts = attempt
        body = self._self_info().to_body()
        for seed_address, _, _ in self.seeds:
            if seed_address == self.address:
                continue
            self._m_hellos.inc()
            self.transport.send(self.address, seed_address, HELLO_KIND,
                                dict(body))
        if self.policy.exhausted(attempt):
            self._m_exhausted.inc()
            return
        delay = self.policy.delay(attempt, self.transport._rng)
        self.transport.scheduler.schedule(
            delay, lambda: self._hello_round(attempt + 1))

    # -- table maintenance -------------------------------------------------

    def _learn(self, info: PeerInfo) -> bool:
        """Absorb one entry; returns True when it was new or changed
        (the announce-worthy cases)."""
        if info.address == self.address:
            return False
        known = self.peers.get(info.address)
        if known == info:
            self._m_duplicates.inc()
            return False
        newly_known = known is None
        self.peers[info.address] = info
        if info.dialable:
            # Upsert: a rejoining node's fresh (host, port) replaces the
            # stale mapping everywhere this announce reaches.
            self.transport.directory[info.address] = (info.host, info.port)
        self._m_learned.inc()
        if (info.role == ROLE_FULL and self.on_full_peer is not None
                and newly_known):
            self.on_full_peer(info.address)
        return True

    def _announce(self, info: PeerInfo, *, exclude: str) -> None:
        body = info.to_body()
        for peer in self.full_peers():
            if peer in (exclude, info.address):
                continue
            self._m_announces.inc()
            self.transport.send(self.address, peer, ANNOUNCE_KIND,
                                dict(body))

    # -- handlers ----------------------------------------------------------

    def _handle_hello(self, message: Message) -> None:
        info = PeerInfo.from_body(message.body)
        changed = self._learn(info)
        table = [p.to_body() for _, p in sorted(self.peers.items())]
        table.append(self._self_info().to_body())
        self.transport.send(self.address, info.address, PEERS_KIND,
                            {"peers": table})
        if changed:
            self._announce(info, exclude=info.address)

    def _handle_peers(self, message: Message) -> None:
        for entry in message.body.get("peers", ()):
            self._learn(PeerInfo.from_body(entry))
        self.bootstrapped = True

    def _handle_announce(self, message: Message) -> None:
        info = PeerInfo.from_body(message.body)
        if self._learn(info):
            # Re-flood changes so announcements reach full nodes the
            # origin did not know; idempotence stops the echo.
            self._announce(info, exclude=message.sender)
