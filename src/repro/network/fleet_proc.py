"""Process-fleet harness: spawn, drive, crash, restart, compare.

:mod:`repro.network.differential` proved sim ≡ wire inside one
process; this module extends the differential across **OS process
boundaries**.  A :class:`ProcessFleet` launches each full node as its
own ``repro node`` child (``python -m repro node …``), reads the
machine-readable ready line to learn its OS-assigned ports, and keeps
handles for ``kill -9`` / SIGTERM / cold-restart choreography.  A
:class:`FleetController` is the parent side of the wire: one
connect-only transport carrying both the workload submissions (the
same serial :class:`~repro.network.differential._SubmitDriver`
protocol) and the fleet control plane (``fleet_status`` /
``fleet_resync`` / ``fleet_shutdown`` request/response RPCs).

Two consumers:

* :func:`run_proc_differential` — the correctness harness.  Drives the
  pre-generated seeded workload into a durable-storage process fleet,
  SIGKILLs a victim mid-workload, cold-restarts it from its journal,
  and requires **every process** to converge to the reference node's
  byte-identical tangle/ledger/ACL/credit hashes.
* :func:`run_scale_bench` — the performance harness.  Submits
  *sharded* workloads (each shard's parent links stay inside the
  shard, so processes never wait on each other) to 1/2/4 isolated
  node processes and measures wall-clock tx/s.  Per-transaction cost
  is crypto-dominated (signature verification), so with enough cores
  throughput scales with process count — the multi-core number one
  process could never produce.  Results land in
  ``BENCH_fleet_scale.json`` with the host's usable-CPU count
  recorded, because on a 1-core box the curve is legitimately flat.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import select
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.acl import AclAction, AuthorizationList
from ..core.credit import CreditParameters
from ..crypto.keys import KeyPair
from ..network.network import NetworkNode
from ..tangle.ledger import TransferPayload
from ..tangle.transaction import Transaction, TransactionKind
from .aio import AsyncioScheduler, AsyncioTransport, NodeRunner
from .differential import (
    _MAX_SYNC_ROUNDS,
    _SUBMIT_ATTEMPTS,
    FleetWorkload,
    _new_consensus,
    _SubmitDriver,
    build_workload,
)
from .proc import (
    READY_EVENT,
    RESYNC_ACK_KIND,
    RESYNC_KIND,
    SHUTDOWN_ACK_KIND,
    SHUTDOWN_KIND,
    STATUS_KIND,
    STATUS_RESPONSE_KIND,
    NodeProcessSpec,
)
from .transport import Message

__all__ = [
    "FleetProcessError",
    "NodeProcess",
    "ProcessFleet",
    "FleetController",
    "run_proc_leg",
    "run_proc_differential",
    "ShardedWorkload",
    "build_sharded_workload",
    "run_scale_bench",
    "scrape_metrics",
]

READY_TIMEOUT = 30.0
"""Wall seconds a child gets to print its ready line."""


class FleetProcessError(RuntimeError):
    """A child process failed to start, answer, or die on cue."""


# -- process management ----------------------------------------------------

@dataclass
class NodeProcess:
    """One spawned ``repro node`` child."""

    spec: NodeProcessSpec
    process: subprocess.Popen
    stderr_path: str
    ready: Optional[Dict[str, object]] = None

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def _read_ready_line(process: subprocess.Popen, *, timeout: float,
                     what: str, stderr_path: str) -> str:
    """Block (with a deadline) until the child's first stdout line."""
    stream = process.stdout
    os.set_blocking(stream.fileno(), False)
    deadline = time.monotonic() + timeout
    buffer = b""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise FleetProcessError(
                f"{what} exited rc={process.returncode} before its ready "
                f"line; stderr tail:\n{_tail(stderr_path)}")
        readable, _, _ = select.select([stream], [], [], 0.1)
        if not readable:
            continue
        chunk = stream.read(65536)
        if not chunk:
            continue
        buffer += chunk
        if b"\n" in buffer:
            line, _, _ = buffer.partition(b"\n")
            return line.decode("utf-8")
    raise FleetProcessError(
        f"{what} produced no ready line within {timeout:.0f}s; "
        f"stderr tail:\n{_tail(stderr_path)}")


def _tail(path: str, limit: int = 4000) -> str:
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return "<no stderr captured>"
    return data[-limit:].decode("utf-8", errors="replace") or "<empty>"


class ProcessFleet:
    """Spawns and supervises ``repro node`` children.

    ``run_dir`` collects per-node stderr logs; the children inherit the
    parent environment with ``src/`` prepended to ``PYTHONPATH`` so the
    fleet runs from a source checkout without installation.
    """

    def __init__(self, *, run_dir: str, python: Optional[str] = None,
                 env: Optional[Dict[str, str]] = None):
        os.makedirs(run_dir, exist_ok=True)
        self.run_dir = run_dir
        self.python = python if python is not None else sys.executable
        base = dict(os.environ if env is None else env)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        existing = base.get("PYTHONPATH")
        base["PYTHONPATH"] = (src_root if not existing
                              else src_root + os.pathsep + existing)
        self.env = base
        self.processes: Dict[str, NodeProcess] = {}

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def spawn(self, spec: NodeProcessSpec, *,
              timeout: float = READY_TIMEOUT) -> Dict[str, object]:
        """Launch *spec* and block until its ready line; returns it."""
        existing = self.processes.get(spec.address)
        if existing is not None and existing.alive:
            raise FleetProcessError(
                f"{spec.address} is already running (pid {existing.pid})")
        stderr_path = os.path.join(self.run_dir,
                                   f"{spec.address}.stderr.log")
        with open(stderr_path, "ab") as stderr:
            process = subprocess.Popen(
                [self.python, "-m", "repro"] + spec.to_argv(),
                stdout=subprocess.PIPE, stderr=stderr, env=self.env)
        entry = NodeProcess(spec=spec, process=process,
                            stderr_path=stderr_path)
        self.processes[spec.address] = entry
        line = _read_ready_line(process, timeout=timeout,
                                what=f"node process {spec.address}",
                                stderr_path=stderr_path)
        info = json.loads(line)
        if info.get("event") != READY_EVENT:
            raise FleetProcessError(
                f"{spec.address} printed {line!r} instead of a ready line")
        entry.ready = info
        return info

    def respawn(self, address: str, *,
                timeout: float = READY_TIMEOUT) -> Dict[str, object]:
        """Relaunch a dead node with its original spec (same storage
        dir, same seeds) — the cold-restart path."""
        entry = self._entry(address)
        if entry.alive:
            raise FleetProcessError(f"{address} is still running")
        return self.spawn(entry.spec, timeout=timeout)

    def kill(self, address: str, *, timeout: float = 10.0) -> None:
        """SIGKILL — the crash the journal must survive."""
        entry = self._entry(address)
        entry.process.kill()
        entry.process.wait(timeout=timeout)

    def terminate(self, address: str, *, timeout: float = 10.0) -> int:
        """SIGTERM and wait; returns the exit code."""
        entry = self._entry(address)
        if entry.alive:
            entry.process.terminate()
        try:
            return entry.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            entry.process.kill()
            entry.process.wait(timeout=timeout)
            raise FleetProcessError(
                f"{address} ignored SIGTERM for {timeout:.0f}s; "
                f"stderr tail:\n{_tail(entry.stderr_path)}")

    def shutdown(self, *, timeout: float = 10.0) -> Dict[str, int]:
        """Terminate every still-running child; SIGKILL stragglers."""
        codes: Dict[str, int] = {}
        for address, entry in self.processes.items():
            if entry.alive:
                entry.process.terminate()
        for address, entry in self.processes.items():
            try:
                codes[address] = entry.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                entry.process.kill()
                codes[address] = entry.process.wait(timeout=timeout)
        return codes

    def alive(self, address: str) -> bool:
        entry = self.processes.get(address)
        return entry is not None and entry.alive

    def stderr_tail(self, address: str) -> str:
        return _tail(self._entry(address).stderr_path)

    def _entry(self, address: str) -> NodeProcess:
        entry = self.processes.get(address)
        if entry is None:
            raise FleetProcessError(f"no such node process: {address}")
        return entry


# -- parent-side wire ------------------------------------------------------

class FleetController:
    """The parent's endpoint: submissions plus control-plane RPCs.

    One connect-only transport; workload submissions ride the normal
    ``submit_transaction`` protocol (serial, response-awaited), control
    RPCs are request/response pairs matched on ``request_id``.
    """

    def __init__(self, transactions: List[bytes], *, target: str,
                 directory: Dict[str, Tuple[str, int]],
                 time_scale: float = 1.0, rng_seed: object = "ctl"):
        self.scheduler = AsyncioScheduler(time_scale=time_scale)
        self.directory = dict(directory)
        self.transport = AsyncioTransport(
            self.scheduler, directory=self.directory,
            rng=random.Random(f"fleet-ctl:{rng_seed}"))
        self.driver = _SubmitDriver(transactions, target=target)
        self.runner = NodeRunner(self.driver, self.transport, listen=None)
        self._rpc_seq = 0
        self._rpc_futures: Dict[int, "asyncio.Future"] = {}
        for kind in (STATUS_RESPONSE_KIND, RESYNC_ACK_KIND,
                     SHUTDOWN_ACK_KIND):
            self.transport.register_handler(kind, self._on_rpc_response)

    async def start(self) -> "FleetController":
        await self.runner.start()
        return self

    async def stop(self) -> None:
        await self.runner.stop()
        self.scheduler.cancel_all()

    def set_address(self, address: str, host: str, port: int) -> None:
        """Update a restarted node's dial address (new ephemeral port)."""
        self.directory[address] = (host, port)

    # -- control RPCs ------------------------------------------------------

    def _on_rpc_response(self, message: Message) -> None:
        future = self._rpc_futures.pop(message.body.get("request_id"), None)
        if future is not None and not future.done():
            future.set_result(dict(message.body))

    async def rpc(self, address: str, kind: str,
                  body: Optional[Dict[str, object]] = None, *,
                  timeout: float = 10.0,
                  attempts: int = 2) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        last_error: Optional[BaseException] = None
        for _ in range(attempts):
            self._rpc_seq += 1
            request_id = self._rpc_seq
            payload = dict(body or {})
            payload["request_id"] = request_id
            future = loop.create_future()
            self._rpc_futures[request_id] = future
            self.transport.send(self.driver.address, address, kind, payload)
            try:
                return await asyncio.wait_for(future, timeout=timeout)
            except asyncio.TimeoutError as exc:
                last_error = exc
                self._rpc_futures.pop(request_id, None)
        raise FleetProcessError(
            f"no {kind} response from {address} after {attempts} "
            f"attempt(s)") from last_error

    async def status(self, address: str, *, now: float,
                     timeout: float = 10.0) -> Dict[str, object]:
        return await self.rpc(address, STATUS_KIND, {"now": float(now)},
                              timeout=timeout)

    async def resync(self, address: str) -> Dict[str, object]:
        return await self.rpc(address, RESYNC_KIND)

    async def shutdown_node(self, address: str,
                            timeout: float = 10.0) -> Dict[str, object]:
        return await self.rpc(address, SHUTDOWN_KIND, timeout=timeout,
                              attempts=1)

    # -- workload submission ----------------------------------------------

    async def submit(self, index: int, *,
                     attempts: int = _SUBMIT_ATTEMPTS,
                     timeout: float = 10.0) -> Tuple[bool, Optional[str]]:
        loop = asyncio.get_running_loop()
        for _ in range(attempts):
            future = loop.create_future()
            self.driver.response_futures[index] = future
            self.driver.submit(index)
            try:
                return await asyncio.wait_for(future, timeout=timeout)
            except asyncio.TimeoutError:
                self.driver.response_futures.pop(index, None)
        raise FleetProcessError(
            f"no submit_response for workload transaction {index} "
            f"after {attempts} attempts")


def scrape_metrics(host: str, port: int, *, timeout: float = 5.0) -> str:
    """Fetch a node process's Prometheus page; returns the body text."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: fleet\r\n"
                     b"Connection: close\r\n\r\n")
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    text = b"".join(chunks).decode("utf-8", errors="replace")
    _, _, body = text.partition("\r\n\r\n")
    return body


# -- the multi-process differential ----------------------------------------

def _write_genesis(workload_genesis, run_dir: str) -> str:
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, "genesis.hex")
    with open(path, "w") as handle:
        handle.write(workload_genesis.to_bytes().hex() + "\n")
    return path


async def _wait_bootstrap(controller: FleetController,
                          addresses: List[str], *, expected_peers: int,
                          now: float, timeout: float = 30.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    last: Dict[str, object] = {}
    while loop.time() < deadline:
        settled = True
        for address in addresses:
            try:
                status = await controller.status(address, now=now,
                                                 timeout=3.0)
            except FleetProcessError:
                settled = False
                break
            last[address] = (status.get("bootstrapped"),
                             len(status.get("peers", ())))
            if not status.get("bootstrapped") or \
                    len(status.get("peers", ())) < expected_peers:
                settled = False
                break
        if settled:
            return
        await asyncio.sleep(0.2)
    raise FleetProcessError(
        f"fleet bootstrap incomplete after {timeout:.0f}s "
        f"(want {expected_peers} peers each): {last}")


async def _collect_hashes(controller: FleetController,
                          addresses: List[str], *,
                          now: float) -> Dict[str, Dict[str, str]]:
    per_node: Dict[str, Dict[str, str]] = {}
    for address in addresses:
        status = await controller.status(address, now=now)
        per_node[address] = dict(status["hashes"])
    return per_node


async def run_proc_leg(workload: FleetWorkload, *, processes: int,
                       seed: int, run_dir: str, host: str = "127.0.0.1",
                       storage_backend: str = "file",
                       crypto_backend: str = "reference",
                       time_scale: float = 20.0, crash: bool = True,
                       metrics: bool = True) -> Dict[str, object]:
    """Drive *workload* through a fleet of real OS processes.

    With ``crash=True`` (and ≥2 processes) the last node is SIGKILLed a
    third of the way through the workload and cold-restarted from its
    journal two thirds in — it must still converge to the reference
    hashes, proving journal + restart + discovery + anti-entropy
    compose across process boundaries.
    """
    if processes < 1:
        raise ValueError("process fleet needs at least 1 process")
    loop = asyncio.get_running_loop()
    genesis_path = _write_genesis(workload.genesis, run_dir)
    storage_dir = os.path.join(run_dir, "storage")
    addresses = [f"n{i}" for i in range(processes)]
    specs = [
        NodeProcessSpec(
            address=address, genesis_path=genesis_path, rng_seed=i,
            listen_host=host, listen_port=0,
            storage_backend=storage_backend, storage_dir=storage_dir,
            crypto_backend=crypto_backend,
            metrics_port=0 if metrics else None, time_scale=time_scale)
        for i, address in enumerate(addresses)
    ]

    fleet = ProcessFleet(run_dir=run_dir)
    controller: Optional[FleetController] = None
    try:
        # The first node is the discovery seed; everyone else hellos it.
        seed_ready = await loop.run_in_executor(
            None, lambda: fleet.spawn(specs[0]))
        seed_spec = f"{addresses[0]}={seed_ready['host']}" \
                    f":{seed_ready['port']}"
        readies = {addresses[0]: seed_ready}
        for spec in specs[1:]:
            spec.seeds = [seed_spec]
            info = await loop.run_in_executor(
                None, lambda spec=spec: fleet.spawn(spec))
            readies[spec.address] = info

        directory = {address: (info["host"], info["port"])
                     for address, info in readies.items()}
        controller = FleetController(
            workload.transactions, target=addresses[0],
            directory=directory, time_scale=time_scale, rng_seed=seed)
        await controller.start()
        if processes > 1:
            await _wait_bootstrap(controller, addresses,
                                  expected_peers=processes - 1,
                                  now=workload.credit_now)

        victim = addresses[-1] if crash and processes >= 2 else None
        total = len(workload.transactions)
        kill_at = total // 3
        restart_at = (2 * total) // 3
        crash_record: Optional[Dict[str, object]] = None

        for index in range(total):
            if victim is not None and index == kill_at:
                await loop.run_in_executor(
                    None, lambda: fleet.kill(victim))
            if victim is not None and index == restart_at:
                info = await loop.run_in_executor(
                    None, lambda: fleet.respawn(victim))
                controller.set_address(victim, info["host"], info["port"])
                readies[victim] = info
                crash_record = {
                    "victim": victim,
                    "killed_at": kill_at,
                    "restarted_at": restart_at,
                    "restored_records": info.get("restored"),
                }
            await controller.submit(index)

        reference = workload.reference_hashes
        rounds = 0
        per_node = await _collect_hashes(controller, addresses,
                                         now=workload.credit_now)
        while (any(h != reference for h in per_node.values())
               and rounds < _MAX_SYNC_ROUNDS):
            rounds += 1
            for address in addresses:
                await controller.resync(address)
            await asyncio.sleep(0.3)
            per_node = await _collect_hashes(controller, addresses,
                                             now=workload.credit_now)

        converged = all(h == reference for h in per_node.values())

        metrics_report: Dict[str, object] = {}
        if metrics:
            for address in addresses:
                port = readies[address].get("metrics_port")
                page = await loop.run_in_executor(
                    None, lambda port=port: scrape_metrics(host, port))
                metrics_report[address] = {
                    "port": port,
                    "scraped": "repro_transport_frames_sent_total" in page,
                    "bytes": len(page),
                }

        # Graceful teardown through the control plane; the context
        # manager below SIGTERMs whatever does not comply.
        for address in addresses:
            try:
                await controller.shutdown_node(address, timeout=5.0)
            except FleetProcessError:
                pass

        return {
            "seed": seed,
            "processes": processes,
            "transactions": total,
            "storage_backend": storage_backend,
            "crypto_backend": crypto_backend,
            "reference": reference,
            "proc": {
                "converged": converged,
                "sync_rounds": rounds,
                "hashes": (next(iter(per_node.values()))
                           if converged and per_node else {}),
                "per_node": per_node,
                "rejected": list(controller.driver.rejected),
                "crash": crash_record,
                "metrics": metrics_report,
            },
            "matched": converged and not controller.driver.rejected,
        }
    finally:
        fleet.shutdown()
        if controller is not None:
            await controller.stop()


def run_proc_differential(*, seed: int, processes: int = 3,
                          transactions: int = 12,
                          run_dir: Optional[str] = None,
                          host: str = "127.0.0.1",
                          storage_backend: str = "file",
                          crypto_backend: str = "reference",
                          time_scale: float = 20.0,
                          crash: bool = True,
                          metrics: bool = True) -> Dict[str, object]:
    """Build the seeded workload and run the process leg against it."""
    import tempfile

    workload = build_workload(seed, transactions=transactions)

    def run(directory: str) -> Dict[str, object]:
        return asyncio.run(run_proc_leg(
            workload, processes=processes, seed=seed, run_dir=directory,
            host=host, storage_backend=storage_backend,
            crypto_backend=crypto_backend, time_scale=time_scale,
            crash=crash, metrics=metrics))

    if run_dir is not None:
        return run(run_dir)
    with tempfile.TemporaryDirectory(prefix="repro-fleet-proc-") as tmp:
        return run(tmp)


# -- sharded scale benchmark -----------------------------------------------

@dataclass
class ShardedWorkload:
    """Per-process transaction shards with no cross-shard parents.

    Every shard opens with the same ACL-authorization transaction
    (parents: genesis), after which its transactions reference only
    earlier transactions of the *same* shard — so N processes can each
    ingest their shard with zero coordination, and throughput measures
    compute, not gossip convergence.
    """

    seed: int
    genesis: Transaction
    shards: List[List[bytes]] = field(default_factory=list)

    @property
    def transactions_per_shard(self) -> int:
        return len(self.shards[0]) if self.shards else 0


def build_sharded_workload(seed: int, *, shards: int,
                           transactions_per_shard: int,
                           devices_per_shard: int = 2) -> ShardedWorkload:
    """Pre-generate *shards* self-contained transaction streams."""
    if shards < 1 or transactions_per_shard < 2:
        raise ValueError("need >=1 shard and >=2 transactions per shard")
    from ..nodes.full_node import FullNode
    from ..nodes.manager import ManagerNode

    params = CreditParameters()
    manager_keys = KeyPair.generate(
        seed=f"fleet-scale:{seed}:manager".encode())
    device_keys = [
        [KeyPair.generate(
            seed=f"fleet-scale:{seed}:s{s}:d{d}".encode())
         for d in range(devices_per_shard)]
        for s in range(shards)
    ]
    all_devices = [keys for shard in device_keys for keys in shard]
    genesis = ManagerNode.create_genesis(
        manager_keys, network_name=f"fleet-scale-{seed}",
        token_allocations=[(manager_keys.node_id, 500)]
        + [(keys.node_id, 500) for keys in all_devices])

    # One shared ACL transaction, parented on genesis, authorizing the
    # whole device population: byte-identical in every shard, so each
    # isolated process admits the same device set.
    acl_tx = Transaction.create(
        manager_keys, kind=TransactionKind.ACL,
        payload=AuthorizationList.make_update(
            [keys.public for keys in all_devices],
            action=AclAction.AUTHORIZE).to_bytes(),
        timestamp=1.0, branch=genesis.tx_hash, trunk=genesis.tx_hash,
        difficulty=1)
    acl_bytes = acl_tx.to_bytes()

    workload = ShardedWorkload(seed=seed, genesis=genesis)
    for s in range(shards):
        rng = random.Random(f"fleet-scale:{seed}:shard:{s}")
        reference = FullNode(f"scale-ref-{s}", genesis,
                             consensus=_new_consensus(params),
                             rng=random.Random(s), enforce_pow=True)
        if not reference.ingest_local(acl_tx):
            raise RuntimeError("shard reference rejected the ACL tx")
        shard: List[bytes] = [acl_bytes]
        virtual_time = 2.0
        for _ in range(transactions_per_shard - 1):
            tips = reference.tangle.tips()
            issuer = rng.choice(device_keys[s])
            if rng.random() < 0.25:
                recipient = rng.choice(
                    [keys for keys in device_keys[s]
                     if keys.node_id != issuer.node_id]
                    or [manager_keys])
                payload = TransferPayload(
                    sender=issuer.node_id, recipient=recipient.node_id,
                    amount=rng.randint(1, 3),
                    sequence=reference.ledger.next_sequence(
                        issuer.node_id)).to_bytes()
                kind = TransactionKind.TRANSFER
            else:
                payload = rng.randbytes(16)
                kind = TransactionKind.DATA
            tx = Transaction.create(
                issuer, kind=kind, payload=payload,
                timestamp=virtual_time, branch=rng.choice(tips),
                trunk=rng.choice(tips), difficulty=1)
            if not reference.ingest_local(tx):
                raise RuntimeError(
                    f"shard {s} reference rejected its own transaction")
            shard.append(tx.to_bytes())
            virtual_time += 0.5
        workload.shards.append(shard)
    return workload


class _BenchDriver(NetworkNode):
    """Concurrent submitter: one in-flight transaction per shard,
    responses matched on globally unique request ids."""

    def __init__(self):
        super().__init__("bench-driver")
        self.futures: Dict[int, "asyncio.Future"] = {}

    def submit(self, target: str, request_id: int,
               encoded: bytes) -> bool:
        return self.send(target, "submit_transaction",
                         {"transaction": encoded,
                          "request_id": request_id},
                         size_bytes=len(encoded))

    def handle_message(self, message: Message) -> None:
        if message.kind != "submit_response":
            return
        future = self.futures.pop(message.body.get("request_id"), None)
        if future is not None and not future.done():
            future.set_result((bool(message.body.get("ok")),
                               message.body.get("error")))


async def _bench_leg(workload: ShardedWorkload, *, processes: int,
                     run_dir: str, host: str,
                     crypto_backend: str) -> Dict[str, object]:
    """Spawn *processes* isolated nodes, pump one shard into each,
    and time the post-warmup stretch end to end."""
    loop = asyncio.get_running_loop()
    genesis_path = _write_genesis(workload.genesis, run_dir)
    addresses = [f"b{i}" for i in range(processes)]
    fleet = ProcessFleet(run_dir=run_dir)
    scheduler = AsyncioScheduler(time_scale=1.0)
    transport: Optional[AsyncioTransport] = None
    runner: Optional[NodeRunner] = None
    try:
        readies = {}
        for i, address in enumerate(addresses):
            spec = NodeProcessSpec(
                address=address, genesis_path=genesis_path, rng_seed=i,
                listen_host=host, listen_port=0,
                storage_backend="none", crypto_backend=crypto_backend,
                metrics_port=0, time_scale=1.0)
            readies[address] = await loop.run_in_executor(
                None, lambda spec=spec: fleet.spawn(spec))
        directory = {address: (info["host"], info["port"])
                     for address, info in readies.items()}
        driver = _BenchDriver()
        transport = AsyncioTransport(
            scheduler, directory=directory,
            rng=random.Random(f"bench:{workload.seed}:{processes}"))
        runner = NodeRunner(driver, transport, listen=None)
        await runner.start()

        async def submit_one(target: str, request_id: int,
                             encoded: bytes) -> None:
            for _ in range(_SUBMIT_ATTEMPTS):
                future = loop.create_future()
                driver.futures[request_id] = future
                driver.submit(target, request_id, encoded)
                try:
                    ok, error = await asyncio.wait_for(future,
                                                       timeout=20.0)
                except asyncio.TimeoutError:
                    driver.futures.pop(request_id, None)
                    continue
                if not ok and error != "duplicate":
                    raise FleetProcessError(
                        f"{target} rejected bench transaction "
                        f"{request_id}: {error}")
                return
            raise FleetProcessError(
                f"no submit_response from {target} for {request_id}")

        async def drive_shard(index: int, *, start: int) -> None:
            shard = workload.shards[index]
            target = addresses[index]
            for j in range(start, len(shard)):
                await submit_one(target, index * 1_000_000 + j, shard[j])

        # Warmup (untimed): the shared ACL transaction, which also
        # proves each process is dialable before the clock starts.
        for i in range(processes):
            await submit_one(addresses[i], i * 1_000_000,
                             workload.shards[i][0])

        begin = time.perf_counter()
        await asyncio.gather(
            *[drive_shard(i, start=1) for i in range(processes)])
        wall = time.perf_counter() - begin

        timed = sum(len(workload.shards[i]) - 1
                    for i in range(processes))
        return {
            "processes": processes,
            "transactions": timed,
            "wall_seconds": wall,
            "tx_per_s": timed / wall if wall > 0 else 0.0,
        }
    finally:
        fleet.shutdown()
        if runner is not None:
            await runner.stop()
        scheduler.cancel_all()


def run_scale_bench(*, seed: int, process_counts: Tuple[int, ...] = (1, 2, 4),
                    transactions_per_process: int = 120,
                    crypto_backend: str = "accel",
                    host: str = "127.0.0.1",
                    run_dir: Optional[str] = None,
                    smoke: bool = False) -> Dict[str, object]:
    """Measure wall-clock tx/s against 1/2/4-process fleets.

    The report records ``cpus`` (the scheduler-usable core count):
    scaling claims are only meaningful when the host can actually run
    the processes in parallel, so consumers gate their assertions on
    it rather than failing on single-core boxes.
    """
    import tempfile

    workload = build_sharded_workload(
        seed, shards=max(process_counts),
        transactions_per_shard=transactions_per_process)

    def run(directory: str) -> Dict[str, object]:
        points: Dict[str, Dict[str, object]] = {}
        for count in process_counts:
            leg_dir = os.path.join(directory, f"p{count}")
            point = asyncio.run(_bench_leg(
                workload, processes=count, run_dir=leg_dir, host=host,
                crypto_backend=crypto_backend))
            points[f"p{count}"] = point
        base = points[f"p{process_counts[0]}"]["tx_per_s"]
        for point in points.values():
            point["speedup"] = (point["tx_per_s"] / base
                                if base > 0 else 0.0)
        return {
            "bench": "fleet_scale",
            "seed": seed,
            "smoke": smoke,
            "cpus": len(os.sched_getaffinity(0)),
            "crypto_backend": crypto_backend,
            "transactions_per_process": transactions_per_process,
            "process_counts": list(process_counts),
            "points": points,
        }

    if run_dir is not None:
        return run(run_dir)
    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        return run(tmp)
