"""Length-prefixed TCP framing for B-IoT protocol messages.

One frame carries one :class:`~repro.network.transport.Message`::

    MAGIC(4) | VERSION(1) | LENGTH(4, big-endian) | PAYLOAD | CRC32(4)

``PAYLOAD`` is the canonical binary encoding (below) of the message
envelope — a dict of ``sender``, ``recipient``, ``kind``,
``message_id``, ``sent_at``, ``size_bytes`` and ``body``, plus an
optional ``trace`` header extension carrying the out-of-band
:class:`~repro.telemetry.tracer.TraceContext`.  Transaction bytes
inside ``body`` are the *existing* canonical wire encodings
(:meth:`~repro.tangle.transaction.Transaction.to_bytes`), carried
opaquely — framing adds an envelope, it never re-encodes protocol
payloads.

The canonical value encoding is type-tagged and length-prefixed::

    N                   None
    T / F               True / False
    I len(4) bytes      int   (signed big-endian two's complement)
    D 8 bytes           float (IEEE-754 big-endian double)
    S len(4) utf-8      str
    B len(4) raw        bytes
    L count(4) items    list (tuples encode as lists)
    M count(4) pairs    dict  (str keys only, sorted — canonical)

Every structural violation — bad magic, unknown version, length out of
bounds, CRC mismatch, trailing or missing payload bytes, an unknown
type tag — raises :class:`FrameError`; the CRC covers version + length
+ payload, so any single-byte corruption of a frame is refused rather
than decoded into a wrong message (the property
``tests/network/test_frame_properties.py`` sweeps).

:class:`FrameDecoder` is resumable: feed it arbitrary chunks (TCP read
boundaries never align with frames) and it yields each message exactly
once; :meth:`FrameDecoder.close` flags bytes left behind by a
truncated final frame.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, List, Optional, Tuple

from ..telemetry.tracer import TraceContext
from .transport import Message

__all__ = [
    "FrameError",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "encode_value",
    "decode_value",
    "MAGIC",
    "VERSION",
    "MAX_FRAME_BYTES",
]

MAGIC = b"BIOT"
VERSION = 1
MAX_FRAME_BYTES = 16 * 1024 * 1024
"""Upper bound on one frame's payload — a corrupted length field must
not make the decoder wait forever for bytes that will never come."""

_PREFIX_LEN = len(MAGIC) + 1 + 4  # magic + version + payload length
_CRC_LEN = 4

_ENVELOPE_KEYS = frozenset(
    {"sender", "recipient", "kind", "message_id", "sent_at",
     "size_bytes", "body", "trace"})


class FrameError(ValueError):
    """A frame (or canonical value) failed structural validation."""


# -- canonical value encoding ---------------------------------------------

def encode_value(value: Any) -> bytes:
    """Canonical binary encoding of a protocol body value."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1,
                             "big", signed=True)
        out.append(b"I" + len(raw).to_bytes(4, "big") + raw)
    elif isinstance(value, float):
        out.append(b"D" + struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"S" + len(raw).to_bytes(4, "big") + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(b"B" + len(raw).to_bytes(4, "big") + raw)
    elif isinstance(value, (list, tuple)):
        out.append(b"L" + len(value).to_bytes(4, "big"))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = list(value)
        if any(not isinstance(key, str) for key in keys):
            raise FrameError("canonical dicts require str keys")
        out.append(b"M" + len(keys).to_bytes(4, "big"))
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise FrameError(
            f"cannot encode {type(value).__name__} canonically")


def decode_value(data: bytes) -> Any:
    """Decode one canonical value; the buffer must be consumed exactly."""
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise FrameError(
            f"trailing bytes after canonical value "
            f"({len(data) - offset} left)")
    return value


def _take(data: bytes, offset: int, count: int) -> Tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise FrameError("canonical value truncated")
    return data[offset:end], end


def _decode_at(data: bytes, offset: int) -> Tuple[Any, int]:
    tag, offset = _take(data, offset, 1)
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"I":
        raw_len, offset = _take(data, offset, 4)
        length = int.from_bytes(raw_len, "big")
        if length == 0 or length > MAX_FRAME_BYTES:
            raise FrameError(f"invalid int length {length}")
        raw, offset = _take(data, offset, length)
        return int.from_bytes(raw, "big", signed=True), offset
    if tag == b"D":
        raw, offset = _take(data, offset, 8)
        return struct.unpack(">d", raw)[0], offset
    if tag == b"S":
        raw_len, offset = _take(data, offset, 4)
        raw, offset = _take(data, offset, int.from_bytes(raw_len, "big"))
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise FrameError(f"invalid utf-8 in canonical str: {exc}")
    if tag == b"B":
        raw_len, offset = _take(data, offset, 4)
        raw, offset = _take(data, offset, int.from_bytes(raw_len, "big"))
        return raw, offset
    if tag == b"L":
        raw_count, offset = _take(data, offset, 4)
        count = int.from_bytes(raw_count, "big")
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return items, offset
    if tag == b"M":
        raw_count, offset = _take(data, offset, 4)
        count = int.from_bytes(raw_count, "big")
        mapping = {}
        previous: Optional[str] = None
        for _ in range(count):
            key, offset = _decode_at(data, offset)
            if not isinstance(key, str):
                raise FrameError("canonical dict key is not a str")
            if previous is not None and key <= previous:
                raise FrameError("canonical dict keys out of order")
            previous = key
            value, offset = _decode_at(data, offset)
            mapping[key] = value
        return mapping, offset
    raise FrameError(f"unknown canonical type tag {tag!r}")


# -- frame encoding --------------------------------------------------------

def encode_frame(message: Message) -> bytes:
    """Serialise one message as a self-delimiting frame."""
    envelope = {
        "sender": message.sender,
        "recipient": message.recipient,
        "kind": message.kind,
        "message_id": int(message.message_id),
        "sent_at": float(message.sent_at),
        "size_bytes": int(message.size_bytes),
        "body": message.body,
    }
    trace = message.trace
    if trace is not None:
        # Header extension: the trace context stays envelope metadata —
        # it never touches the transaction codecs inside `body`.
        envelope["trace"] = {"trace_id": trace.trace_id,
                             "span_id": trace.span_id}
    payload = encode_value(envelope)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload {len(payload)} exceeds {MAX_FRAME_BYTES}")
    head = bytes([VERSION]) + len(payload).to_bytes(4, "big")
    crc = zlib.crc32(head + payload)
    return MAGIC + head + payload + crc.to_bytes(4, "big")


def _message_from_envelope(envelope: Any) -> Message:
    if not isinstance(envelope, dict):
        raise FrameError("frame payload is not an envelope dict")
    unknown = set(envelope) - _ENVELOPE_KEYS
    if unknown:
        raise FrameError(f"unknown envelope keys {sorted(unknown)}")
    try:
        sender = envelope["sender"]
        recipient = envelope["recipient"]
        kind = envelope["kind"]
        message_id = envelope["message_id"]
        sent_at = envelope["sent_at"]
        size_bytes = envelope["size_bytes"]
        body = envelope["body"]
    except KeyError as exc:
        raise FrameError(f"envelope missing {exc.args[0]!r}")
    if not (isinstance(sender, str) and isinstance(recipient, str)
            and isinstance(kind, str)):
        raise FrameError("envelope routing fields must be str")
    if not isinstance(message_id, int) or isinstance(message_id, bool):
        raise FrameError("message_id must be an int")
    if not isinstance(sent_at, float):
        raise FrameError("sent_at must be a float")
    if not isinstance(size_bytes, int) or isinstance(size_bytes, bool):
        raise FrameError("size_bytes must be an int")
    trace = None
    if "trace" in envelope:
        raw = envelope["trace"]
        if (not isinstance(raw, dict)
                or set(raw) != {"trace_id", "span_id"}
                or not isinstance(raw["trace_id"], str)
                or not isinstance(raw["span_id"], int)):
            raise FrameError("malformed trace extension")
        trace = TraceContext(trace_id=raw["trace_id"],
                             span_id=raw["span_id"])
    return Message(sender=sender, recipient=recipient, kind=kind,
                   body=body, sent_at=sent_at, size_bytes=size_bytes,
                   message_id=message_id, trace=trace)


def decode_frame(data: bytes) -> Message:
    """Decode exactly one frame; refuses partial or trailing bytes."""
    decoder = FrameDecoder()
    messages = decoder.feed(data)
    decoder.close()
    if len(messages) != 1:
        raise FrameError(f"expected one frame, decoded {len(messages)}")
    return messages[0]


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    A :class:`FrameError` poisons the decoder — a stream that framed
    garbage cannot be trusted to resynchronise, so the connection it
    feeds from must be dropped.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._failed = False
        self.frames_decoded = 0
        self.bytes_consumed = 0

    @property
    def buffered(self) -> int:
        """Bytes received but not yet part of a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Message]:
        """Absorb *data*; returns every message completed by it."""
        if self._failed:
            raise FrameError("decoder already failed; drop the stream")
        self._buffer.extend(data)
        messages: List[Message] = []
        try:
            while True:
                message, consumed = self._try_decode_one()
                if message is None:
                    break
                del self._buffer[:consumed]
                self.bytes_consumed += consumed
                self.frames_decoded += 1
                messages.append(message)
        except FrameError:
            self._failed = True
            raise
        return messages

    def _try_decode_one(self) -> Tuple[Optional[Message], int]:
        buffer = self._buffer
        if len(buffer) < _PREFIX_LEN:
            # Reject a bad magic as soon as the bytes we do have cannot
            # be a frame start, instead of waiting for a full prefix.
            if bytes(buffer[:len(MAGIC)]) != MAGIC[:len(buffer)]:
                raise FrameError("bad frame magic")
            return None, 0
        if bytes(buffer[:len(MAGIC)]) != MAGIC:
            raise FrameError("bad frame magic")
        version = buffer[len(MAGIC)]
        if version != VERSION:
            raise FrameError(f"unsupported frame version {version}")
        length = int.from_bytes(buffer[len(MAGIC) + 1:_PREFIX_LEN], "big")
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                f"frame payload {length} exceeds {MAX_FRAME_BYTES}")
        total = _PREFIX_LEN + length + _CRC_LEN
        if len(buffer) < total:
            return None, 0
        head = bytes(buffer[len(MAGIC):_PREFIX_LEN])
        payload = bytes(buffer[_PREFIX_LEN:_PREFIX_LEN + length])
        stored_crc = int.from_bytes(
            buffer[_PREFIX_LEN + length:total], "big")
        if zlib.crc32(head + payload) != stored_crc:
            raise FrameError("frame CRC mismatch")
        return _message_from_envelope(decode_value(payload)), total

    def close(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if not self._failed and self._buffer:
            self._failed = True
            raise FrameError(
                f"stream truncated mid-frame ({len(self._buffer)} "
                f"bytes buffered)")
