"""Flooding gossip with duplicate suppression and solidification.

Full nodes "keep the network secure and stable by broadcasting
transactions and keeping copies of the blockchain" (Section IV-A).  Two
mechanics make that work over a lossy asynchronous network:

* :class:`GossipRelay` — classic flood: relay each item to all peers
  the first time it is seen, never again (the seen-set bounds traffic).
* :class:`SolidificationBuffer` — out-of-order arrival handling: a
  transaction whose parents have not arrived yet is parked and retried
  when a parent attaches (IOTA calls this *solidification*).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, Generic, Iterable, List, Set, Tuple, TypeVar

from ..telemetry.registry import coerce_registry

__all__ = ["GossipRelay", "SolidificationBuffer"]

ItemT = TypeVar("ItemT")


class GossipRelay:
    """Duplicate-suppressed flooding over an explicit peer list.

    Args:
        peers: initial peer addresses.
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            gossip counters (``repro_network_gossip_*``).
        node: label value identifying the owning node in the metrics.
    """

    def __init__(self, peers: Iterable[str] = (), *, telemetry=None,
                 node: str = ""):
        self.peers: List[str] = []
        self._peer_set: Set[str] = set()
        for peer in peers:
            self.add_peer(peer)
        self._seen: Set[bytes] = set()
        self.relays = 0
        self.duplicates_suppressed = 0
        self._node_label = node
        registry = coerce_registry(telemetry)
        self._m_relays = registry.counter(
            "repro_network_gossip_relays_total",
            "Gossip flood fan-outs initiated, by node")
        self._m_duplicates = registry.counter(
            "repro_network_gossip_duplicates_total",
            "Gossip items suppressed as already seen, by node")

    def add_peer(self, address: str) -> None:
        # Set-backed membership: a 200-node mesh re-registering peers
        # must not pay an O(peers) list scan per registration.
        if address not in self._peer_set:
            self._peer_set.add(address)
            self.peers.append(address)

    def remove_peer(self, address: str) -> None:
        if address in self._peer_set:
            self._peer_set.discard(address)
            self.peers.remove(address)

    def has_peer(self, address: str) -> bool:
        """O(1) peer-membership test (``peers`` stays a list for
        deterministic round-robin indexing)."""
        return address in self._peer_set

    def mark_seen(self, item_id: bytes) -> bool:
        """Record *item_id*; returns True when it is new."""
        if item_id in self._seen:
            self.duplicates_suppressed += 1
            self._m_duplicates.inc(node=self._node_label)
            return False
        self._seen.add(item_id)
        return True

    def mark_seen_batch(self, item_ids: Iterable[bytes]) -> int:
        """Bulk :meth:`mark_seen` — one set merge instead of a Python
        loop; returns how many ids were new.  Duplicate suppressions are
        counted identically to the per-item path (snapshot adoption and
        sync batches mark thousands of ids at once).
        """
        ids = item_ids if isinstance(item_ids, (list, tuple)) else list(item_ids)
        new_ids = set(ids) - self._seen
        duplicates = len(ids) - len(new_ids)
        if duplicates:
            self.duplicates_suppressed += duplicates
            self._m_duplicates.inc(duplicates, node=self._node_label)
        self._seen |= new_ids
        return len(new_ids)

    def has_seen(self, item_id: bytes) -> bool:
        return item_id in self._seen

    def reset_seen(self) -> None:
        """Drop the duplicate-suppression set.  It is volatile node
        memory: a cold restart must not remember pre-crash floods, or
        the restored node would refuse legitimate re-deliveries."""
        self._seen.clear()

    def relay_targets(self, item_id: bytes, *, exclude: str = None) -> List[str]:
        """Peers to forward a newly seen item to (exclude its source)."""
        self.relays += 1
        self._m_relays.inc(node=self._node_label)
        return [peer for peer in self.peers if peer != exclude]

    @property
    def seen_count(self) -> int:
        return len(self._seen)


class SolidificationBuffer(Generic[ItemT]):
    """Parks items whose dependencies are missing; releases them as
    dependencies arrive.

    Dependencies are 32-byte ids (parent transaction hashes).  The
    buffer is bounded; overflow evicts the oldest parked item, which
    models a constrained gateway shedding unsolidifiable junk.
    """

    def __init__(self, *, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # parked item id -> (item, missing dependency ids), insertion
        # ordered: the OrderedDict *is* the eviction queue, so eviction
        # (popitem) and release (del) are O(1) — the former list-based
        # order index paid O(n) per pop(0)/remove().
        self._parked: "OrderedDict[bytes, Tuple[ItemT, Set[bytes]]]" = \
            OrderedDict()
        # dependency id -> parked item ids waiting on it
        self._waiters: Dict[bytes, Set[bytes]] = defaultdict(set)
        self.evictions = 0
        # High-water mark of parked items — health-digest material: a
        # deep buffer means the node spent the run waiting on parents.
        self.depth_peak = 0

    def __len__(self) -> int:
        return len(self._parked)

    def __contains__(self, item_id: bytes) -> bool:
        return item_id in self._parked

    def park(self, item_id: bytes, item: ItemT, missing: Iterable[bytes]) -> None:
        """Hold *item* until every id in *missing* has been satisfied."""
        missing_set = set(missing)
        if not missing_set:
            raise ValueError("park requires at least one missing dependency")
        if item_id in self._parked:
            return
        if len(self._parked) >= self.capacity:
            self._evict_oldest()
        self._parked[item_id] = (item, missing_set)
        if len(self._parked) > self.depth_peak:
            self.depth_peak = len(self._parked)
        for dependency in missing_set:
            self._waiters[dependency].add(item_id)

    def missing_dependencies(self) -> List[bytes]:
        """Dependency ids still being waited on, sorted — what a
        recovery sweep should go and fetch from peers."""
        return sorted(
            dependency for dependency, waiters in self._waiters.items()
            if waiters
        )

    def waiter_count(self, dependency_id: bytes) -> int:
        """How many parked items are blocked on *dependency_id*."""
        return len(self._waiters.get(dependency_id, ()))

    def satisfy(self, dependency_id: bytes) -> List[Tuple[bytes, ItemT]]:
        """Mark *dependency_id* as available; returns items that became
        fully solid (and removes them from the buffer)."""
        released: List[Tuple[bytes, ItemT]] = []
        for waiting_id in sorted(self._waiters.pop(dependency_id, ())):
            entry = self._parked.get(waiting_id)
            if entry is None:
                continue
            item, missing = entry
            missing.discard(dependency_id)
            if not missing:
                del self._parked[waiting_id]
                released.append((waiting_id, item))
        return released

    def _evict_oldest(self) -> None:
        oldest_id, (_, missing) = self._parked.popitem(last=False)
        for dependency in missing:
            self._waiters[dependency].discard(oldest_id)
        self.evictions += 1
