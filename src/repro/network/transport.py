"""Message and link models for the simulated IoT network.

Wireless sensors talk to gateways over links with latency, jitter and
loss; gateways talk to each other over a faster, more reliable
backbone.  :class:`LatencyModel` captures one link class; the
:class:`~repro.network.network.Network` assigns a model per node pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Message",
    "LatencyModel",
    "LinkOverlay",
    "WIRELESS_SENSOR_LINK",
    "BACKBONE_LINK",
    "LOCAL_LINK",
]


@dataclass(frozen=True)
class Message:
    """One network message between two simulated nodes.

    ``body`` is any Python object (transactions, protocol records);
    ``size_bytes`` drives transmission-delay accounting where relevant.

    ``message_id`` is allocated by the *transport* that routes the
    message (each :class:`~repro.network.network.Network` or
    :class:`~repro.network.aio.AsyncioTransport` keeps its own
    monotonically increasing counter), so two deployments in one
    process each see the deterministic sequence 1, 2, 3, …  A bare
    ``Message(...)`` constructed outside a transport carries id 0.

    ``trace`` is *out-of-band envelope metadata*: the sender's ambient
    :class:`~repro.telemetry.tracer.TraceContext`, stamped by
    :meth:`Network.send` and restored around delivery.  It never enters
    a transaction wire encoding (``body`` and the codecs are
    untouched), so golden wire-format pins are unaffected; it is
    excluded from equality.  The TCP frame codec carries it as a header
    extension (see :mod:`repro.network.frame`).
    """

    sender: str
    recipient: str
    kind: str
    body: Any
    sent_at: float
    size_bytes: int = 0
    message_id: int = 0
    trace: Any = field(default=None, compare=False)

    def __repr__(self) -> str:
        return (
            f"Message({self.kind!r}, {self.sender} -> {self.recipient}, "
            f"t={self.sent_at:.3f})"
        )


@dataclass(frozen=True)
class LatencyModel:
    """Propagation model for one link class.

    Attributes:
        base_latency: fixed one-way delay in seconds.
        jitter: uniform extra delay in [0, jitter].
        loss_rate: probability a message is silently dropped.
        bandwidth_bytes_per_second: when positive, adds a size-dependent
            transmission delay.
    """

    base_latency: float = 0.01
    jitter: float = 0.0
    loss_rate: float = 0.0
    bandwidth_bytes_per_second: float = 0.0

    def __post_init__(self):
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.bandwidth_bytes_per_second < 0:
            raise ValueError("bandwidth must be non-negative")

    def sample_delay(self, rng: random.Random, size_bytes: int = 0) -> Optional[float]:
        """One-way delay for a message, or None when the link drops it."""
        if self.loss_rate > 0.0 and rng.random() < self.loss_rate:
            return None
        delay = self.base_latency
        if self.jitter > 0.0:
            delay += rng.uniform(0.0, self.jitter)
        if self.bandwidth_bytes_per_second > 0.0 and size_bytes > 0:
            delay += size_bytes / self.bandwidth_bytes_per_second
        return delay


@dataclass(frozen=True)
class LinkOverlay:
    """A transient disturbance stacked on top of a link's base model.

    Fault-injection campaigns degrade links without touching the
    configured :class:`LatencyModel`: an overlay adds loss, delay,
    jitter (which reorders traffic) and probabilistic duplication, and
    is removed wholesale when the fault heals.

    Attributes:
        extra_loss: additional independent drop probability.
        extra_latency: fixed extra one-way delay in seconds.
        extra_jitter: uniform extra delay in [0, extra_jitter] — large
            values reorder messages relative to their send order.
        duplicate_probability: chance the message is delivered twice
            (the copy takes an independently jittered path).
    """

    extra_loss: float = 0.0
    extra_latency: float = 0.0
    extra_jitter: float = 0.0
    duplicate_probability: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.extra_loss < 1.0:
            raise ValueError("extra_loss must be in [0, 1)")
        if self.extra_latency < 0 or self.extra_jitter < 0:
            raise ValueError("overlay delays must be non-negative")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")


WIRELESS_SENSOR_LINK = LatencyModel(
    base_latency=0.02, jitter=0.03, loss_rate=0.01,
    bandwidth_bytes_per_second=250_000.0,
)
"""Sensor-to-gateway 802.15.4-class wireless link."""

BACKBONE_LINK = LatencyModel(
    base_latency=0.005, jitter=0.002, loss_rate=0.0,
    bandwidth_bytes_per_second=12_500_000.0,
)
"""Gateway-to-gateway wired backbone."""

LOCAL_LINK = LatencyModel(base_latency=0.0, jitter=0.0, loss_rate=0.0)
"""Zero-cost link for single-host tests."""
