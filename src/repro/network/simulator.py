"""Discrete-event simulation core.

All multi-node experiments run on this scheduler: events are
(time, sequence, callback, trace-context) entries on a heap, executed
in timestamp order against a shared
:class:`~repro.devices.clock.SimulatedClock`.  Determinism is
guaranteed by the monotonically increasing sequence number that breaks
timestamp ties in insertion order; the trace-context slot (populated
only when a ``trace_binder`` is installed) never participates in
ordering.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..devices.clock import SimulatedClock

__all__ = ["EventScheduler"]


class EventScheduler:
    """A deterministic future-event list.

    >>> scheduler = EventScheduler()
    >>> fired = []
    >>> _ = scheduler.schedule(1.0, lambda: fired.append("a"))
    >>> _ = scheduler.schedule(0.5, lambda: fired.append("b"))
    >>> scheduler.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, clock: Optional[SimulatedClock] = None):
        self.clock = clock if clock is not None else SimulatedClock()
        self._queue: List[Tuple[float, int, Callable[[], None], object]] = []
        self._sequence = 0
        # Optional causal-trace hook (a Tracer): when set, the ambient
        # trace context is captured at schedule time and restored around
        # the callback, so causality survives deferred execution.  The
        # heap still orders on (timestamp, event_id) alone — the context
        # slot never participates in comparisons and never changes
        # execution order.
        self.trace_binder = None
        self._cancelled: set = set()
        # Ids currently sitting in the queue (not fired, not cancelled).
        # Guarding cancel() with it keeps `_cancelled` from accumulating
        # ids that already fired — those would otherwise leak forever —
        # and makes the live pending count O(1).
        self._alive: set = set()
        self.events_executed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule *callback* to run *delay* seconds from now.

        Returns an event id usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now() + delay, callback)

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> int:
        """Schedule *callback* at an absolute *timestamp*."""
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past ({timestamp} < {self.clock.now()})"
            )
        event_id = self._sequence
        self._sequence += 1
        binder = self.trace_binder
        context = binder.capture() if binder is not None else None
        heapq.heappush(self._queue, (timestamp, event_id, callback, context))
        self._alive.add(event_id)
        return event_id

    def cancel(self, event_id: int) -> None:
        """Mark a scheduled event as cancelled (lazy heap removal).

        Cancelling an id that already fired (or was already cancelled)
        is a no-op — in particular it does not grow the tombstone set.
        """
        if event_id in self._alive:
            self._alive.discard(event_id)
            self._cancelled.add(event_id)

    def __len__(self) -> int:
        """Live pending events: scheduled, not fired, not cancelled."""
        return len(self._alive)

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones not
        yet lazily removed from the heap); ``len(scheduler)`` gives the
        live count."""
        return len(self._queue)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or None when idle."""
        while self._queue and self._queue[0][1] in self._cancelled:
            _, event_id, _, _ = heapq.heappop(self._queue)
            self._cancelled.discard(event_id)
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        next_time = self.peek_time()
        if next_time is None:
            return False
        timestamp, event_id, callback, context = heapq.heappop(self._queue)
        self._alive.discard(event_id)
        self.clock.advance_to(timestamp)
        self.events_executed += 1
        binder = self.trace_binder
        if binder is None:
            callback()
        else:
            # Restore the schedule-time context (None clears any stale
            # ambient context): every callback runs under exactly the
            # causal context it was scheduled from.
            with binder.activate(context):
                callback()
        return True

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or *max_events* fire); returns the
        number of events executed by this call."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed

    def run_until(self, deadline: float) -> int:
        """Run events with timestamps <= *deadline*, then advance the
        clock to exactly *deadline*; returns events executed."""
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
            executed += 1
        if self.clock.now() < deadline:
            self.clock.advance_to(deadline)
        return executed
