"""Real asyncio/TCP transport behind the Network interface.

Where :class:`~repro.network.network.Network` simulates delivery on a
discrete-event heap, :class:`AsyncioTransport` moves the same protocol
messages as length-prefixed frames (:mod:`repro.network.frame`) over
localhost/LAN TCP.  Each transport instance carries exactly one node —
a full node, a light node, or the manager — and a :class:`NodeRunner`
hosts the pair as asyncio tasks: accept loop (when listening), one
writer task per peer with reconnect-with-:class:`~repro.faults.backoff.
BackoffPolicy`, one reader task per live connection, and a graceful
shutdown that flushes outboxes before tearing sockets down.

Scheduling-facing node code is untouched: nodes read time through
``transport.scheduler.clock.now()`` and defer work through
``transport.scheduler.schedule(...)``, so :class:`AsyncioScheduler`
adapts those calls onto the running event loop (``loop.call_later``)
and :class:`AsyncClock` maps wall time into *simulated seconds* through
a configurable ``time_scale`` — protocol timers written in simulated
seconds (keydist retries, parent-fetch backoff) fire proportionally
faster when a test compresses time.

Peers are found through a shared *directory* (address -> (host, port)),
filled in as runners bind their listen sockets.  Replies to peers that
do not listen (light-node style clients, test drivers) travel the
*reverse route*: every decoded frame registers its sender's connection,
and ``send`` prefers a live reverse route over dialing out.

Determinism boundary: this transport is **convergence-deterministic** —
the byte schedule varies run to run (kernel timing), but the replicated
state it carries must converge to the same tangle/ledger/ACL/credit
hashes as the simulator for the same seeded scenario.  The fleet
differential harness (:mod:`repro.network.differential`) asserts
exactly that.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Set, Tuple

from ..devices.clock import Clock
from ..faults.backoff import DEFAULT_BACKOFF, BackoffPolicy
from ..telemetry.registry import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    coerce_registry,
)
from ..telemetry.tracer import NULL_TRACER
from .frame import FrameDecoder, FrameError, encode_frame
from .transport import Message

__all__ = ["AsyncClock", "AsyncioScheduler", "AsyncioTransport",
           "NodeRunner"]


class AsyncClock(Clock):
    """Monotonic wall time rescaled into simulated seconds.

    ``time_scale`` is simulated seconds per wall second: 1.0 runs in
    real time; 20.0 makes a 0.5 s protocol backoff fire after 25 ms of
    wall time.  Scaling keeps protocol timer *code* identical across
    transports while letting wire tests compress waiting.
    """

    def __init__(self, time_scale: float = 1.0):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = time_scale
        self._origin = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._origin) * self.time_scale

    def to_wall(self, sim_seconds: float) -> float:
        """Wall-clock seconds equivalent to *sim_seconds*."""
        return sim_seconds / self.time_scale


class AsyncioScheduler:
    """`EventScheduler`-shaped facade over the asyncio event loop.

    Implements the subset nodes use — ``clock``, ``schedule``,
    ``schedule_at``, ``cancel``, ``trace_binder``, ``len()`` — by
    delegating to ``loop.call_later``.  Calls must come from code
    running inside the event loop (node handlers always do).
    """

    def __init__(self, clock: Optional[AsyncClock] = None, *,
                 time_scale: float = 1.0):
        self.clock = clock if clock is not None else AsyncClock(time_scale)
        self.trace_binder = None
        self.events_executed = 0
        self._handles: Dict[int, asyncio.TimerHandle] = {}
        self._sequence = 0

    def schedule(self, delay: float, callback) -> int:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        loop = asyncio.get_running_loop()
        event_id = self._sequence
        self._sequence += 1
        binder = self.trace_binder
        context = binder.capture() if binder is not None else None

        def fire() -> None:
            self._handles.pop(event_id, None)
            self.events_executed += 1
            if binder is None:
                callback()
            else:
                with binder.activate(context):
                    callback()

        wall_delay = self.clock.to_wall(delay) \
            if isinstance(self.clock, AsyncClock) else delay
        self._handles[event_id] = loop.call_later(wall_delay, fire)
        return event_id

    def schedule_at(self, timestamp: float, callback) -> int:
        delay = timestamp - self.clock.now()
        if delay < 0:
            raise ValueError(
                f"cannot schedule in the past ({timestamp} < "
                f"{self.clock.now()})")
        return self.schedule(delay, callback)

    def cancel(self, event_id: int) -> None:
        handle = self._handles.pop(event_id, None)
        if handle is not None:
            handle.cancel()

    def __len__(self) -> int:
        return len(self._handles)

    def cancel_all(self) -> int:
        """Cancel every pending timer (shutdown); returns how many."""
        count = len(self._handles)
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()
        return count


class AsyncioTransport:
    """One node's TCP endpoint, satisfying the Transport contract.

    Args:
        scheduler: the shared :class:`AsyncioScheduler` (all runners in
            one process share one loop, one scheduler, one clock).
        directory: shared mutable address book
            (``address -> (host, port)``); runners add themselves as
            their listen sockets bind.
        rng: jitter source for reconnect backoff.
        reconnect_policy: :class:`~repro.faults.backoff.BackoffPolicy`
            pacing re-dials after connect failures or lost connections.
        telemetry: registry for the ``repro_transport_*`` instruments.
        tracer: trace contexts are stamped onto outgoing messages and
            restored around delivery, exactly as on the simulator; on
            the wire they ride the frame's header extension.
    """

    def __init__(self, scheduler: AsyncioScheduler, *,
                 directory: Optional[Dict[str, Tuple[str, int]]] = None,
                 rng: Optional[random.Random] = None,
                 reconnect_policy: Optional[BackoffPolicy] = None,
                 telemetry=None, tracer=None,
                 read_chunk: int = 65536):
        self.scheduler = scheduler
        self.directory = directory if directory is not None else {}
        self._rng = rng if rng is not None else random.Random()
        self.reconnect_policy = reconnect_policy if reconnect_policy \
            is not None else DEFAULT_BACKOFF
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = coerce_registry(telemetry)
        self._read_chunk = read_chunk
        self._node = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.listen_address: Optional[Tuple[str, int]] = None
        self.advertised_address: Optional[Tuple[str, int]] = None
        # kind -> callable(Message); consulted before node delivery so
        # out-of-band protocols (peer discovery, fleet control) can ride
        # the same framed envelopes without touching node handlers.
        self._handlers: Dict[str, object] = {}
        self._outboxes: Dict[str, asyncio.Queue] = {}
        self._writer_tasks: Dict[str, asyncio.Task] = {}
        self._reader_tasks: Set[asyncio.Task] = set()
        self._open_writers: Set[asyncio.StreamWriter] = set()
        self._reverse: Dict[str, asyncio.StreamWriter] = {}
        self._connected_once: Set[str] = set()
        self._taps: List = []
        self._closing = False
        self._message_sequence = 0
        # Counter parity with Network, so summaries read the same.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.reconnect_attempts = 0
        self._m_sent = self.telemetry.counter(
            "repro_network_messages_sent_total",
            "Messages handed to the network, by kind")
        self._m_delivered = self.telemetry.counter(
            "repro_network_messages_delivered_total",
            "Messages delivered to their recipient, by kind")
        self._m_dropped = self.telemetry.counter(
            "repro_network_messages_dropped_total",
            "Messages lost (down node, cut link, loss model)")
        self._m_latency = self.telemetry.histogram(
            "repro_network_delivery_latency_seconds",
            "Send-to-delivery simulated latency",
            buckets=SECONDS_BUCKETS)
        self._m_frames_sent = self.telemetry.counter(
            "repro_transport_frames_sent_total",
            "Frames written to TCP connections, by kind")
        self._m_frames_received = self.telemetry.counter(
            "repro_transport_frames_received_total",
            "Frames decoded off TCP connections, by kind")
        self._m_bytes_sent = self.telemetry.counter(
            "repro_transport_bytes_sent_total",
            "Bytes written to TCP connections")
        self._m_bytes_received = self.telemetry.counter(
            "repro_transport_bytes_received_total",
            "Bytes read from TCP connections")
        self._m_frame_bytes = self.telemetry.histogram(
            "repro_transport_frame_bytes",
            "Encoded frame sizes on the wire",
            buckets=BYTES_BUCKETS)
        self._m_reconnects = self.telemetry.counter(
            "repro_transport_reconnects_total",
            "Connection attempts beyond a peer's first (failure retries "
            "and re-dials after a lost connection)")
        self._m_frame_errors = self.telemetry.counter(
            "repro_transport_frame_errors_total",
            "Streams dropped for framing violations (bad magic/CRC/"
            "truncation)")
        self._m_connections = self.telemetry.gauge(
            "repro_transport_connections",
            "Currently open TCP connections (either direction)")

    # -- topology ----------------------------------------------------------

    def attach(self, node) -> None:
        """Bind the single local *node* this transport carries."""
        if self._node is not None:
            raise ValueError(
                f"transport already carries {self._node.address!r}; "
                f"AsyncioTransport is one-node-per-instance")
        self._node = node
        node.bind(self)
        if self.advertised_address is not None:
            # listen() ran before attach: publish now that the bound
            # address finally has a node name to file it under.
            self.directory[node.address] = self.advertised_address

    def node(self, address: str):
        if self._node is not None and self._node.address == address:
            return self._node
        raise KeyError(address)

    @property
    def local_address(self) -> Optional[str]:
        return self._node.address if self._node is not None else None

    @property
    def addresses(self) -> List[str]:
        known = set(self.directory) | set(self._reverse)
        if self._node is not None:
            known.add(self._node.address)
        return sorted(known)

    def add_tap(self, tap) -> None:
        """Observe every delivered message (metrics, debugging)."""
        self._taps.append(tap)

    def register_handler(self, kind: str, handler) -> None:
        """Route every received frame of *kind* to *handler* instead of
        the local node.

        Control-plane protocols (peer discovery ``disc_*``, fleet
        control ``fleet_*``) register here: their handlers run before
        the recipient check, so a frame addressed to a node name that
        has not bootstrapped yet — exactly the situation during
        discovery — is still answered instead of dropped.  One handler
        per kind; re-registering a kind replaces the previous handler.
        """
        self._handlers[kind] = handler

    # -- listening ---------------------------------------------------------

    _WILDCARD_HOSTS = frozenset({"0.0.0.0", "::", ""})

    async def listen(self, host: str = "127.0.0.1", port: int = 0, *,
                     advertise_host: Optional[str] = None
                     ) -> Tuple[str, int]:
        """Accept inbound connections; returns the bound (host, port).

        Port 0 picks an ephemeral port — the sandboxed fleet fixture's
        default, so parallel test runs never collide; the OS-assigned
        port is read back from the bound socket and surfaced through
        :attr:`listen_address` / :attr:`bound_port`.  The *advertised*
        address — what peers should dial — is published into the shared
        directory: ``advertise_host`` when given, otherwise the bind
        host, with wildcard binds (``0.0.0.0`` / ``::``) rewritten to
        ``127.0.0.1`` because a wildcard is listenable but not dialable.
        If no node is attached yet, publication is deferred until
        :meth:`attach` names one.
        """
        if self._server is not None:
            raise RuntimeError("transport is already listening")
        self._server = await asyncio.start_server(
            self._serve_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.listen_address = (sockname[0], sockname[1])
        if advertise_host is None:
            advertise_host = ("127.0.0.1" if host in self._WILDCARD_HOSTS
                              else host)
        self.advertised_address = (advertise_host, sockname[1])
        if self._node is not None:
            self.directory[self._node.address] = self.advertised_address
        return self.listen_address

    @property
    def bound_port(self) -> Optional[int]:
        """The OS-assigned listen port, or None when not listening."""
        return None if self.listen_address is None else \
            self.listen_address[1]

    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._reader_tasks.add(task)
        try:
            await self._read_loop(reader, writer)
        except asyncio.CancelledError:
            # Swallow shutdown cancellation: asyncio.streams inspects
            # this task's exception from its connection_made callback,
            # and a cancelled result would be re-raised into the loop's
            # exception handler as teardown noise.
            pass
        finally:
            self._reader_tasks.discard(task)

    # -- transmission ------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str, body, *,
             size_bytes: int = 0) -> bool:
        """Frame and enqueue one message; returns False when the
        recipient is not routable (not in the directory and no reverse
        route) or the transport is shutting down."""
        self.messages_sent += 1
        self._m_sent.inc(kind=kind)
        if self._closing:
            self._count_drop(kind)
            return False
        self._message_sequence += 1
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            body=body,
            sent_at=self.scheduler.clock.now(),
            size_bytes=size_bytes,
            message_id=self._message_sequence,
            trace=self.tracer.current,
        )
        if self._node is not None and recipient == self._node.address:
            # Loopback keeps the async-hop property: delivery happens
            # on a later loop iteration, never inside the send call.
            self.scheduler.schedule(0.0, lambda: self._dispatch(message))
            return True
        if recipient not in self.directory and recipient not in self._reverse:
            self._count_drop(kind)
            return False
        frame = encode_frame(message)
        self._m_frame_bytes.observe(len(frame))
        self._outbox(recipient).put_nowait((frame, kind))
        self._ensure_writer(recipient)
        return True

    def broadcast(self, sender: str, kind: str, body, *,
                  recipients: Optional[List[str]] = None,
                  size_bytes: int = 0) -> int:
        targets = recipients if recipients is not None else [
            addr for addr in self.addresses if addr != sender
        ]
        return sum(
            1 for addr in targets
            if self.send(sender, addr, kind, body, size_bytes=size_bytes)
        )

    def _count_drop(self, kind: str) -> None:
        self.messages_dropped += 1
        self._m_dropped.inc(kind=kind)

    def _outbox(self, peer: str) -> asyncio.Queue:
        queue = self._outboxes.get(peer)
        if queue is None:
            queue = asyncio.Queue()
            self._outboxes[peer] = queue
        return queue

    def _ensure_writer(self, peer: str) -> None:
        task = self._writer_tasks.get(peer)
        if task is None or task.done():
            self._writer_tasks[peer] = asyncio.get_running_loop() \
                .create_task(self._writer_loop(peer))

    async def _writer_loop(self, peer: str) -> None:
        """Drain *peer*'s outbox over a connection that is re-dialed
        (backoff-paced) whenever it drops.  Frames are FIFO per peer —
        TCP preserves their order, which is what keeps parents arriving
        before children along any single connection."""
        queue = self._outbox(peer)
        writer: Optional[asyncio.StreamWriter] = None
        while not self._closing:
            frame, kind = await queue.get()
            while not self._closing:
                if writer is None or writer.is_closing():
                    writer = self._usable_reverse(peer)
                if writer is None:
                    writer = await self._connect(peer)
                if writer is None:
                    # Reconnect exhausted: this frame (and the backlog
                    # behind it) is undeliverable right now.
                    self._count_drop(kind)
                    while not queue.empty():
                        _, queued_kind = queue.get_nowait()
                        self._count_drop(queued_kind)
                    break
                try:
                    writer.write(frame)
                    await writer.drain()
                except (ConnectionError, OSError):
                    self._discard_writer(writer)
                    writer = None
                    continue
                self._m_frames_sent.inc(kind=kind)
                self._m_bytes_sent.inc(len(frame))
                break

    def _usable_reverse(self, peer: str) -> Optional[asyncio.StreamWriter]:
        writer = self._reverse.get(peer)
        if writer is not None and writer.is_closing():
            self._reverse.pop(peer, None)
            return None
        return writer

    async def _connect(self, peer: str) -> Optional[asyncio.StreamWriter]:
        address = self.directory.get(peer)
        if address is None:
            return None
        attempt = 0
        while not self._closing:
            attempt += 1
            if attempt > 1 or peer in self._connected_once:
                self.reconnect_attempts += 1
                self._m_reconnects.inc(peer=peer)
            try:
                reader, writer = await asyncio.open_connection(*address)
            except OSError:
                if self.reconnect_policy.exhausted(attempt):
                    return None
                delay = self.reconnect_policy.delay(attempt, self._rng)
                clock = self.scheduler.clock
                wall = clock.to_wall(delay) \
                    if isinstance(clock, AsyncClock) else delay
                await asyncio.sleep(wall)
                continue
            self._connected_once.add(peer)
            self._track_connection(writer)
            task = asyncio.get_running_loop().create_task(
                self._read_loop(reader, writer))
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
            return writer
        return None

    # -- reception ---------------------------------------------------------

    def _track_connection(self, writer: asyncio.StreamWriter) -> None:
        self._open_writers.add(writer)
        self._m_connections.inc()

    def _untrack_connection(self, writer: asyncio.StreamWriter) -> None:
        if writer in self._open_writers:
            self._open_writers.discard(writer)
            self._m_connections.dec()

    def _discard_writer(self, writer: asyncio.StreamWriter) -> None:
        self._untrack_connection(writer)
        for peer, reverse in list(self._reverse.items()):
            if reverse is writer:
                self._reverse.pop(peer, None)
        try:
            writer.close()
        except Exception:
            pass

    async def _read_loop(self, reader, writer) -> None:
        """Decode frames off one connection until EOF or a framing
        violation (which drops the stream — a misframed peer cannot be
        resynchronised)."""
        if writer not in self._open_writers:
            self._track_connection(writer)
        decoder = FrameDecoder()
        try:
            while not self._closing:
                try:
                    data = await reader.read(self._read_chunk)
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                self._m_bytes_received.inc(len(data))
                try:
                    messages = decoder.feed(data)
                except FrameError:
                    self._m_frame_errors.inc()
                    break
                for message in messages:
                    self._m_frames_received.inc(kind=message.kind)
                    # Reverse route: replies reach peers that never
                    # listen (drivers, light-node-style clients).
                    self._reverse[message.sender] = writer
                    self._dispatch(message)
        finally:
            self._discard_writer(writer)

    def _dispatch(self, message: Message) -> None:
        if self._closing:
            self._count_drop(message.kind)
            return
        handler = self._handlers.get(message.kind)
        if handler is not None:
            self.messages_delivered += 1
            self._m_delivered.inc(kind=message.kind)
            handler(message)
            return
        node = self._node
        if node is None:
            self._count_drop(message.kind)
            return
        if message.recipient != node.address:
            self._count_drop(message.kind)
            return
        self.messages_delivered += 1
        self._m_delivered.inc(kind=message.kind)
        self._m_latency.observe(
            max(0.0, self.scheduler.clock.now() - message.sent_at))
        if message.trace is not None:
            with self.tracer.activate(message.trace):
                for tap in self._taps:
                    tap(message)
                node._deliver(message)
            return
        for tap in self._taps:
            tap(message)
        node._deliver(message)

    # -- shutdown ----------------------------------------------------------

    async def close(self, *, flush_timeout: float = 1.0) -> None:
        """Graceful shutdown: flush outboxes briefly, then tear down
        the server, every connection, and every task.  Idempotent."""
        if self._closing:
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + flush_timeout
        while (any(not q.empty() for q in self._outboxes.values())
               and loop.time() < deadline):
            await asyncio.sleep(0.01)
        self._closing = True
        tasks = list(self._writer_tasks.values()) + list(self._reader_tasks)
        for task in tasks:
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._open_writers):
            self._discard_writer(writer)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._writer_tasks.clear()
        self._reader_tasks.clear()
        self._reverse.clear()


class NodeRunner:
    """Hosts one node on one :class:`AsyncioTransport`.

    ``listen=(host, port)`` (port 0 = ephemeral) starts an accept loop
    and publishes the bound address into the shared directory;
    ``listen=None`` makes a connect-only runner (light nodes, drivers).
    """

    def __init__(self, node, transport: AsyncioTransport, *,
                 listen: Optional[Tuple[str, int]] = None,
                 advertise_host: Optional[str] = None):
        self.node = node
        self.transport = transport
        self._listen = listen
        self._advertise_host = advertise_host
        self.bound_address: Optional[Tuple[str, int]] = None
        self.started = False
        transport.attach(node)

    @property
    def address(self) -> str:
        return self.node.address

    @property
    def bound_port(self) -> Optional[int]:
        """The OS-assigned listen port (after start), or None."""
        return None if self.bound_address is None else \
            self.bound_address[1]

    async def start(self) -> "NodeRunner":
        if self._listen is not None:
            self.bound_address = await self.transport.listen(
                *self._listen, advertise_host=self._advertise_host)
        self.started = True
        return self

    async def stop(self) -> None:
        await self.transport.close()
        self.started = False
