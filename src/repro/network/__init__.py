"""Simulated network substrate: discrete-event scheduling, lossy links,
message routing, gossip and solidification."""

from .gossip import GossipRelay, SolidificationBuffer
from .network import Network, NetworkNode
from .simulator import EventScheduler
from .transport import (
    BACKBONE_LINK,
    LOCAL_LINK,
    WIRELESS_SENSOR_LINK,
    LatencyModel,
    Message,
)

__all__ = [
    "EventScheduler",
    "Network",
    "NetworkNode",
    "Message",
    "LatencyModel",
    "WIRELESS_SENSOR_LINK",
    "BACKBONE_LINK",
    "LOCAL_LINK",
    "GossipRelay",
    "SolidificationBuffer",
]
