"""Network substrate behind the :class:`~repro.network.base.Transport`
contract: a discrete-event simulator (:class:`SimTransport`, the
bit-deterministic reference) and a real asyncio/TCP transport
(:class:`AsyncioTransport`, convergence-deterministic), plus the
length-prefixed frame codec, gossip and solidification, seed-node peer
discovery (:class:`DiscoveryService`) and the one-node-per-OS-process
lane (:class:`NodeProcessSpec` / :class:`ProcessFleet`)."""

from .aio import AsyncClock, AsyncioScheduler, AsyncioTransport, NodeRunner
from .base import SchedulerLike, Transport, is_transport
from .discovery import DiscoveryService, PeerInfo, parse_seed
from .frame import (
    FrameDecoder,
    FrameError,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
)
from .gossip import GossipRelay, SolidificationBuffer
from .network import Network, NetworkNode, SimTransport
from .proc import NodeProcessSpec, run_node_process
from .simulator import EventScheduler
from .transport import (
    BACKBONE_LINK,
    LOCAL_LINK,
    WIRELESS_SENSOR_LINK,
    LatencyModel,
    Message,
)

__all__ = [
    "EventScheduler",
    "Network",
    "NetworkNode",
    "SimTransport",
    "Transport",
    "SchedulerLike",
    "is_transport",
    "AsyncClock",
    "AsyncioScheduler",
    "AsyncioTransport",
    "NodeRunner",
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "Message",
    "LatencyModel",
    "WIRELESS_SENSOR_LINK",
    "BACKBONE_LINK",
    "LOCAL_LINK",
    "GossipRelay",
    "SolidificationBuffer",
    "DiscoveryService",
    "PeerInfo",
    "parse_seed",
    "NodeProcessSpec",
    "run_node_process",
]
