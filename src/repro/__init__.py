"""B-IoT: Blockchain Driven Internet of Things with Credit-Based
Consensus Mechanism — a full reproduction of the ICDCS 2019 paper.

The package is layered bottom-up:

* :mod:`repro.crypto` — hashing, AES, Ed25519/X25519, ECIES, identities;
* :mod:`repro.pow` — hashcash proof-of-work and device-charged solving;
* :mod:`repro.devices` — device profiles (the Raspberry Pi substitution),
  clocks and smart-factory sensor models;
* :mod:`repro.tangle` — the DAG-structured ledger (tips, weights, tip
  selection, token ledger, validation);
* :mod:`repro.chain` — the chain-structured baseline the paper argues
  against;
* :mod:`repro.network` — discrete-event simulator, lossy links, gossip;
* :mod:`repro.core` — **the contribution**: credit model, credit-based
  PoW consensus, ACL device management, data authority management, and
  the B-IoT system facade;
* :mod:`repro.nodes` — light node / gateway / manager roles;
* :mod:`repro.attacks` — threat-model attack harnesses;
* :mod:`repro.analysis` — metrics and credit tracing.

Quickstart::

    from repro.core import BIoTSystem, BIoTConfig, run_workflow
    system = BIoTSystem.build(BIoTConfig(device_count=4, seed=1))
    print(run_workflow(system).format())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
