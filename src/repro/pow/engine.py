"""PoW execution engine: real grinding plus device-profile accounting.

The engine is where hash attempts become *time*.  It solves the
hashcash puzzle (really, below a configurable difficulty threshold;
sampled from the geometric attempt distribution above it), charges the
cost to the node's :class:`~repro.devices.profiles.DeviceProfile`, and
advances the shared :class:`~repro.devices.clock.SimulatedClock`.

This is the substitution point for the paper's Raspberry Pi testbed:
every figure that reports "running time of PoW" reads the simulated
seconds produced here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..devices.clock import Clock, SimulatedClock
from ..devices.profiles import DeviceProfile
from ..telemetry.registry import DIFFICULTY_BUCKETS, SECONDS_BUCKETS, coerce_registry
from . import hashcash
from .hashcash import ProofOfWork

__all__ = ["PowResult", "PowEngine", "DEFAULT_REAL_DIFFICULTY_LIMIT"]

DEFAULT_REAL_DIFFICULTY_LIMIT = 20
"""Above this difficulty the engine samples attempt counts instead of
grinding (2^20 ≈ 1M double-SHA256 calls ≈ a second of real CPU)."""


@dataclass(frozen=True)
class PowResult:
    """Outcome of one PoW execution.

    Attributes:
        proof: the :class:`~repro.pow.hashcash.ProofOfWork` found.
        elapsed_seconds: simulated time charged to the device.
        started_at: clock reading when the solve began.
        finished_at: clock reading when the solve completed.
    """

    proof: ProofOfWork
    elapsed_seconds: float
    started_at: float
    finished_at: float


class PowEngine:
    """Solves PoW puzzles on behalf of one device.

    Args:
        profile: hardware model the cost is charged to.
        clock: clock to advance; when it is a
            :class:`~repro.devices.clock.SimulatedClock` the engine
            advances it by the simulated solve time.
        rng: randomness source for nonce starting points and attempt
            sampling (seed it for reproducible experiments).
        real_difficulty_limit: difficulties at or below this are ground
            for real; above it, attempts are sampled.
        advance_clock: when True (single-node experiments) a solve
            advances the simulated clock directly.  Multi-node
            simulations set False and instead schedule a completion
            event ``elapsed_seconds`` in the future, so concurrent
            nodes' compute overlaps correctly.
        pool: optional :class:`~repro.crypto.accel.CryptoPool`; real
            grinding fans the nonce scan across its worker processes.
            The pooled scan returns the identical ``(nonce, attempts)``
            pair as the sequential one (see the pool's module
            docstring), so simulated time and ledger content are
            unchanged — only wall-clock time shrinks.
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` for the
            ``repro_pow_*`` metrics (attempts, solves, solve-time and
            difficulty distributions, labelled by hardware profile).
    """

    def __init__(self, profile: DeviceProfile, clock: Clock = None, *,
                 rng: random.Random = None,
                 real_difficulty_limit: int = DEFAULT_REAL_DIFFICULTY_LIMIT,
                 advance_clock: bool = True,
                 pool=None,
                 telemetry=None):
        self.profile = profile
        self.clock = clock if clock is not None else SimulatedClock()
        self._rng = rng if rng is not None else random.Random()
        self._pool = pool
        self.advance_clock = advance_clock
        if real_difficulty_limit < 0:
            raise ValueError("real_difficulty_limit must be non-negative")
        self.real_difficulty_limit = real_difficulty_limit
        self.total_attempts = 0
        self.total_seconds = 0.0
        self.solve_count = 0
        self.telemetry = coerce_registry(telemetry)
        self._profile_label = getattr(profile, "name", "unknown")
        self._m_solves = self.telemetry.counter(
            "repro_pow_solves_total", "PoW puzzles solved")
        self._m_attempts = self.telemetry.counter(
            "repro_pow_attempts_total", "Hash attempts spent on PoW")
        self._m_seconds = self.telemetry.histogram(
            "repro_pow_solve_seconds",
            "Simulated seconds per PoW solve, by hardware profile",
            buckets=SECONDS_BUCKETS)
        self._m_difficulty = self.telemetry.histogram(
            "repro_pow_difficulty",
            "Difficulty of solved puzzles (credit-assigned)",
            buckets=DIFFICULTY_BUCKETS)

    def solve(self, challenge: bytes, difficulty: int) -> PowResult:
        """Solve *challenge* at *difficulty* and charge the cost.

        Returns a :class:`PowResult`; the engine's lifetime counters
        (:attr:`total_attempts`, :attr:`total_seconds`) accumulate, which
        is what the energy/cost analyses read.
        """
        started_at = self.clock.now()
        if difficulty <= self.real_difficulty_limit:
            start_nonce = self._rng.randrange(2 ** 62)
            if self._pool is not None:
                proof = self._pool.solve(challenge, difficulty,
                                         start_nonce=start_nonce)
            else:
                proof = hashcash.solve(challenge, difficulty,
                                       start_nonce=start_nonce)
        else:
            attempts = hashcash.sample_attempts(difficulty, self._rng)
            proof = ProofOfWork(nonce=0, attempts=attempts,
                                difficulty=difficulty, simulated=True)
        elapsed = self.profile.pow_seconds(proof.attempts)
        if self.advance_clock and isinstance(self.clock, SimulatedClock):
            self.clock.advance(elapsed)
        self.total_attempts += proof.attempts
        self.total_seconds += elapsed
        self.solve_count += 1
        self._m_solves.inc(profile=self._profile_label)
        self._m_attempts.inc(proof.attempts, profile=self._profile_label)
        self._m_seconds.observe(elapsed, profile=self._profile_label)
        self._m_difficulty.observe(difficulty, profile=self._profile_label)
        return PowResult(
            proof=proof,
            elapsed_seconds=elapsed,
            started_at=started_at,
            finished_at=started_at + elapsed,
        )

    @property
    def mean_seconds_per_solve(self) -> float:
        """Average simulated solve time so far (0.0 before any solve)."""
        if self.solve_count == 0:
            return 0.0
        return self.total_seconds / self.solve_count
