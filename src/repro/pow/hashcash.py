"""Hashcash-style proof-of-work (Eqn. 6 of the paper).

A new tangle transaction must bundle with the two tips it approves by
finding a nonce such that::

    output = hash{ hash(TX1) || hash(TX2) || nonce }

has at least ``D`` leading zero bits, where ``D`` is the difficulty the
credit-based mechanism assigns to the issuing node.  We additionally
bind the digest of the new transaction's own body into the challenge so
the proof cannot be replayed onto different content (the paper's
equation leaves this implicit; IOTA binds the full bundle).

The hash is double SHA-256 and difficulty counts leading zero *bits*,
so the expected number of attempts at difficulty ``D`` is ``2^D``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..crypto.hashing import double_sha256, hash_concat, leading_zero_bits

__all__ = [
    "MIN_DIFFICULTY",
    "MAX_DIFFICULTY",
    "NONCE_SIZE",
    "ProofOfWork",
    "pow_challenge",
    "solve",
    "verify",
    "sample_attempts",
]

MIN_DIFFICULTY = 1
"""Smallest difficulty the paper sweeps (Fig. 7)."""

MAX_DIFFICULTY = 256
"""Upper bound: a SHA-256 digest cannot have more leading zero bits."""

NONCE_SIZE = 8
"""Nonce width in bytes."""


@dataclass(frozen=True)
class ProofOfWork:
    """A solved (or sampled) proof of work.

    Attributes:
        nonce: the nonce value satisfying the target (0 when sampled).
        attempts: how many hash evaluations were (or would be) spent.
        difficulty: the leading-zero-bit requirement that was met.
        simulated: True when the solution was *sampled* (attempt count
            drawn from the geometric distribution) rather than computed;
            sampled proofs carry no verifiable nonce and are only valid
            inside pure-simulation experiments.
    """

    nonce: int
    attempts: int
    difficulty: int
    simulated: bool = False


def pow_challenge(parent1_hash: bytes, parent2_hash: bytes,
                  body_digest: bytes) -> bytes:
    """Build the PoW challenge binding both approved tips and the body."""
    return hash_concat(parent1_hash, parent2_hash, body_digest)


def _check_difficulty(difficulty: int) -> None:
    if not MIN_DIFFICULTY <= difficulty <= MAX_DIFFICULTY:
        raise ValueError(
            f"difficulty must be in [{MIN_DIFFICULTY}, {MAX_DIFFICULTY}], got {difficulty}"
        )


def solve(challenge: bytes, difficulty: int, *, start_nonce: int = 0,
          max_attempts: int = None) -> ProofOfWork:
    """Find a nonce whose digest meets *difficulty* leading zero bits.

    Iterates nonces from *start_nonce*; raises ``RuntimeError`` if
    *max_attempts* is exhausted first (used by DDoS/time-out tests).
    """
    _check_difficulty(difficulty)
    attempts = 0
    # Wrap the *iteration*, not just the digest input: a start_nonce near
    # 2**64 must continue the scan at 0 with the loop counter in step, or
    # the returned nonce and the attempt count stop describing the same
    # sequence of distinct candidates.
    nonce = start_nonce % 2 ** 64
    while True:
        attempts += 1
        digest = double_sha256(challenge + nonce.to_bytes(NONCE_SIZE, "big"))
        if leading_zero_bits(digest) >= difficulty:
            return ProofOfWork(nonce=nonce, attempts=attempts,
                               difficulty=difficulty)
        if max_attempts is not None and attempts >= max_attempts:
            raise RuntimeError(
                f"PoW at difficulty {difficulty} unsolved after {attempts} attempts"
            )
        nonce = (nonce + 1) % 2 ** 64


def verify(challenge: bytes, nonce: int, difficulty: int) -> bool:
    """Check that (*challenge*, *nonce*) meets *difficulty*."""
    if not MIN_DIFFICULTY <= difficulty <= MAX_DIFFICULTY:
        return False
    if not 0 <= nonce < 2 ** 64:
        return False
    digest = double_sha256(challenge + nonce.to_bytes(NONCE_SIZE, "big"))
    return leading_zero_bits(digest) >= difficulty


def sample_attempts(difficulty: int, rng: random.Random) -> int:
    """Draw an attempt count from the true PoW distribution.

    The number of tries to first success with per-try probability
    ``p = 2^-D`` is geometric; sampling it lets experiments model
    difficulties that would be too slow to actually grind, while
    preserving the (large) variance that makes single-run paper numbers
    noisy.
    """
    _check_difficulty(difficulty)
    success_probability = 2.0 ** -difficulty
    # Inverse-CDF sampling of the geometric distribution.  The
    # denominator must be log1p(-p), not log(1-p): for difficulty >= 53
    # the float 1.0 - 2**-D rounds to exactly 1.0 and log(1.0) == 0.0
    # divides by zero, while log1p keeps full precision out to the
    # 2**-256 tail (MAX_DIFFICULTY).
    uniform = rng.random()
    while uniform <= 0.0:  # guard against random() == 0.0
        uniform = rng.random()
    return max(1, math.ceil(math.log(uniform) / math.log1p(-success_probability)))
