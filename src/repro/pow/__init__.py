"""Proof-of-work substrate: hashcash puzzles and device-charged solving.

* :mod:`~repro.pow.hashcash` — Eqn. 6 challenge construction, solver,
  verifier, and geometric attempt sampling;
* :mod:`~repro.pow.engine` — per-device execution with simulated-time
  accounting (the Raspberry Pi substitution point).
"""

from .engine import DEFAULT_REAL_DIFFICULTY_LIMIT, PowEngine, PowResult
from .hashcash import (
    MAX_DIFFICULTY,
    MIN_DIFFICULTY,
    NONCE_SIZE,
    ProofOfWork,
    pow_challenge,
    sample_attempts,
    solve,
    verify,
)

__all__ = [
    "MIN_DIFFICULTY",
    "MAX_DIFFICULTY",
    "NONCE_SIZE",
    "ProofOfWork",
    "pow_challenge",
    "solve",
    "verify",
    "sample_attempts",
    "PowEngine",
    "PowResult",
    "DEFAULT_REAL_DIFFICULTY_LIMIT",
]
