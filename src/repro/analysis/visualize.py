"""Tangle visualisation: Graphviz DOT export and text summaries.

The paper's Figs. 1–2 contrast the chain and DAG structures visually;
this module produces the same pictures from live ledgers —
:func:`tangle_to_dot` renders any tangle for Graphviz, and
:func:`tangle_summary` prints the structural statistics (size, tips,
depth, weight distribution) that the figures encode.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from ..tangle.tangle import Tangle
from .metrics import format_table

__all__ = ["tangle_to_dot", "tangle_summary", "chain_to_dot"]


def _default_label(tx) -> str:
    return f"{tx.short_hash}\\n{tx.kind}"


def tangle_to_dot(tangle: Tangle, *,
                  label: Optional[Callable] = None,
                  highlight: Optional[Dict[bytes, str]] = None,
                  max_transactions: Optional[int] = None) -> str:
    """Render *tangle* as a Graphviz DOT digraph.

    Approval edges point from the approving transaction to its parents
    (the direction of Fig. 2).  Tips are drawn gray (the paper's
    unverified squares), everything else white; *highlight* maps
    transaction hashes to fill colours (e.g. an attacker's transactions
    in red).  *max_transactions* truncates to the most recent N by
    arrival order for very large tangles.
    """
    label = label if label is not None else _default_label
    highlight = highlight or {}
    transactions = list(tangle)
    if max_transactions is not None and len(transactions) > max_transactions:
        transactions = transactions[-max_transactions:]
    included = {tx.tx_hash for tx in transactions}

    lines = [
        "digraph tangle {",
        "  rankdir=RL;",  # genesis on the right, tips on the left
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    for tx in transactions:
        if tx.tx_hash in highlight:
            colour = highlight[tx.tx_hash]
        elif tangle.is_tip(tx.tx_hash):
            colour = "gray80"  # the paper's "tips" shading
        else:
            colour = "white"
        lines.append(
            f'  "{tx.tx_hash.hex()[:12]}" '
            f'[label="{label(tx)}", fillcolor="{colour}"];'
        )
    for tx in transactions:
        if tx.is_genesis:
            continue
        for parent in dict.fromkeys((tx.branch, tx.trunk)):
            if parent in included:
                lines.append(
                    f'  "{tx.tx_hash.hex()[:12]}" -> "{parent.hex()[:12]}";'
                )
            elif tangle.is_entry_point(parent):
                anchor = parent.hex()[:12]
                lines.append(
                    f'  "{anchor}" [label="pruned\\n{anchor[:8]}", '
                    f'fillcolor="gray50", shape=octagon];'
                )
                lines.append(
                    f'  "{tx.tx_hash.hex()[:12]}" -> "{anchor}";'
                )
    lines.append("}")
    return "\n".join(lines)


def tangle_summary(tangle: Tangle) -> str:
    """A text panel of the tangle's structural statistics."""
    sizes = Counter(tx.kind for tx in tangle)
    weights = [tangle.weight(tx.tx_hash) for tx in tangle]
    heights = [tangle.height(tx.tx_hash) for tx in tangle]
    issuers = {tx.issuer.node_id for tx in tangle}
    rows = [
        ("transactions", len(tangle)),
        ("tips", tangle.tip_count),
        ("distinct issuers", len(issuers)),
        ("max height (genesis distance)", max(heights)),
        ("mean cumulative weight", f"{sum(weights) / len(weights):.1f}"),
        ("entry points (pruned refs)", len(tangle.entry_points())),
    ]
    rows.extend((f"kind: {kind}", count) for kind, count in sorted(sizes.items()))
    return format_table(rows, headers=["metric", "value"])


def chain_to_dot(blockchain) -> str:
    """Render a chain baseline's block tree (Fig. 1: main chain white,
    orphaned forks gray)."""
    main_hashes = {b.block_hash for b in blockchain.main_chain()}
    lines = [
        "digraph chain {",
        "  rankdir=RL;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    blocks = [blockchain.get(h) for h in
              sorted(main_hashes | {b.block_hash
                                    for b in blockchain.orphaned_blocks()})]
    for block in blocks:
        colour = "white" if block.block_hash in main_hashes else "gray80"
        lines.append(
            f'  "{block.block_hash.hex()[:12]}" '
            f'[label="h={block.height}\\n{block.short_hash}", '
            f'fillcolor="{colour}"];'
        )
        if not block.is_genesis and block.prev_hash.hex():
            lines.append(
                f'  "{block.block_hash.hex()[:12]}" -> '
                f'"{block.prev_hash.hex()[:12]}";'
            )
    lines.append("}")
    return "\n".join(lines)
