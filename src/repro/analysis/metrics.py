"""Measurement utilities shared by tests, examples and benchmarks.

Nothing here is paper-specific; it is the plumbing that turns raw node
statistics into the series and tables the evaluation section reports:
throughput meters, summary statistics, and plain-text table/series
formatting for benchmark output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..telemetry.series import TimeSeries

__all__ = [
    "ThroughputMeter",
    "summary_stats",
    "SummaryStats",
    "format_table",
    "format_series",
]


class ThroughputMeter:
    """Counts timestamped events and reports rates.

    A thin adapter over :class:`~repro.telemetry.series.TimeSeries`:
    every ``tps`` window resolves by bisecting the bounds (O(log n))
    instead of rescanning all recorded events, so ``windowed_tps`` over
    a long run is linear in the number of windows, not windows×events.

    >>> meter = ThroughputMeter()
    >>> for t in (0.5, 1.0, 1.5, 9.0):
    ...     meter.record(t)
    >>> meter.tps(start=0.0, end=10.0)
    0.4
    """

    def __init__(self, events: Iterable[float] = ()):
        self._series = TimeSeries()
        for timestamp in events:
            self._series.append(timestamp)

    def record(self, timestamp: float) -> None:
        self._series.append(timestamp)

    @property
    def events(self) -> List[float]:
        """Recorded timestamps, in time order."""
        return self._series.timestamps

    @property
    def count(self) -> int:
        return len(self._series)

    def tps(self, *, start: float, end: float) -> float:
        """Events per second inside [start, end]."""
        if end <= start:
            raise ValueError("end must exceed start")
        return self._series.window_count(start, end) / (end - start)

    def windowed_tps(self, *, start: float, end: float,
                     window: float) -> List[Tuple[float, float]]:
        """A (window_end, tps) series for plotting throughput over time."""
        if window <= 0:
            raise ValueError("window must be positive")
        series = []
        cursor = start + window
        while cursor <= end + 1e-9:
            series.append((cursor, self.tps(start=cursor - window, end=cursor)))
            cursor += window
        return series


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summary_stats(samples: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats`; raises on an empty sample."""
    if not samples:
        raise ValueError("cannot summarise an empty sample")
    ordered = sorted(samples)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / n
    if n % 2 == 1:
        median = ordered[n // 2]
    else:
        median = (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    return SummaryStats(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


def format_table(rows: Iterable[Sequence[object]],
                 headers: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned plain-text table (benchmark output)."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    if headers is not None:
        materialised.insert(0, [str(h) for h in headers])
    if not materialised:
        return ""
    widths = [
        max(len(row[col]) for row in materialised if col < len(row))
        for col in range(max(len(row) for row in materialised))
    ]
    lines = []
    for index, row in enumerate(materialised):
        padded = [cell.ljust(widths[col]) for col, cell in enumerate(row)]
        lines.append("  ".join(padded).rstrip())
        if headers is not None and index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(series: Iterable[Tuple[float, float]], *,
                  x_label: str = "x", y_label: str = "y",
                  precision: int = 4) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [
        (f"{x:.{precision}g}", f"{y:.{precision}g}")
        for x, y in series
    ]
    return format_table(rows, headers=[x_label, y_label])
