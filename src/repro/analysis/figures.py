"""Experiment drivers for every figure in the paper's evaluation.

Each function reproduces one figure of Section VI as a pure,
deterministic computation over the library; the benchmark harness under
``benchmarks/`` wraps these in pytest-benchmark and prints the same
series the paper plots, next to the paper's anchor values.

* :func:`fig7_pow_running_time` — PoW running time vs difficulty 1..14;
* :func:`fig8_credit_trace` — the credit curves (w, Cr, CrP, CrN) with
  one or two malicious attacks;
* :func:`fig9_pow_comparison` — mean PoW time per transaction for the
  four control regimes over 90 s;
* :func:`fig10_aes_timing` — AES encryption time vs message length.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.consensus import (
    CreditBasedConsensus,
    DEFAULT_INITIAL_DIFFICULTY,
    DifficultyPolicy,
    FixedDifficultyPolicy,
    InverseDifficultyPolicy,
)
from ..core.credit import CreditParameters, CreditRegistry, MaliciousBehaviour
from ..crypto import aes
from ..crypto.keys import KeyPair
from ..devices.clock import SimulatedClock
from ..devices.profiles import RASPBERRY_PI_3B, DeviceProfile
from ..pow.engine import PowEngine
from ..tangle.tangle import Tangle
from ..tangle.transaction import Transaction
from .tracing import CreditTracer

__all__ = [
    "Fig7Point",
    "fig7_pow_running_time",
    "Fig8Result",
    "fig8_credit_trace",
    "Fig9Regime",
    "fig9_pow_comparison",
    "Fig10Point",
    "fig10_aes_timing",
    "PAPER_FIG7_ANCHORS",
    "PAPER_FIG9_MEANS",
    "PAPER_FIG10_ANCHORS",
]

PAPER_FIG7_ANCHORS = {1: 0.162, 12: 10.98, 14: 245.3}
"""Fig. 7 data-tip values from the paper (single-run samples)."""

PAPER_FIG9_MEANS = {
    "original-pow": 0.7,
    "credit-normal": 0.118,
    "credit-1-attack": 1.667,
    "credit-2-attacks": 3.75,
}
"""Fig. 9's four control-experiment means (seconds per transaction)."""

PAPER_FIG10_ANCHORS = {64: 0.000205, 2 ** 16: 0.09322,
                       2 ** 18: 0.373, 2 ** 20: 1.491}
"""Fig. 10 data-tip values (message bytes -> seconds)."""


# ---------------------------------------------------------------------------
# Fig. 7 — Running time of PoW algorithm with increasing difficulty
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Point:
    """One difficulty level of the Fig. 7 sweep."""

    difficulty: int
    expected_seconds: float
    sampled_seconds: float
    paper_seconds: Optional[float]


def fig7_pow_running_time(*, profile: DeviceProfile = RASPBERRY_PI_3B,
                          max_difficulty: int = 14,
                          samples_per_level: int = 5,
                          seed: int = 7) -> List[Fig7Point]:
    """Reproduce Fig. 7 on the modelled Raspberry Pi.

    For every difficulty 1..14 the point carries both the *expected*
    solve time (2^D attempts at the profile's hash rate) and the mean of
    ``samples_per_level`` solves with geometric attempt counts — the
    latter is what a measurement like the paper's would observe, noise
    included.
    """
    rng = random.Random(seed)
    points = []
    for difficulty in range(1, max_difficulty + 1):
        engine = PowEngine(profile, SimulatedClock(), rng=rng,
                           real_difficulty_limit=0)  # sample everything
        for _ in range(samples_per_level):
            engine.solve(b"fig7-challenge", difficulty)
        points.append(Fig7Point(
            difficulty=difficulty,
            expected_seconds=profile.expected_pow_seconds(difficulty),
            sampled_seconds=engine.mean_seconds_per_solve,
            paper_seconds=PAPER_FIG7_ANCHORS.get(difficulty),
        ))
    return points


# ---------------------------------------------------------------------------
# Fig. 8 — Credit value changes based on nodes' behaviours
# ---------------------------------------------------------------------------

@dataclass
class Fig8Result:
    """The Fig. 8 trace and its headline observations."""

    tracer: CreditTracer
    attack_times: List[float]
    transaction_times: List[float]
    minimum_credit: float
    recovery_seconds: Optional[float]

    @property
    def longest_transaction_gap(self) -> float:
        """The largest spacing between consecutive transactions — the
        paper's "it takes 37 seconds to recover the normal transaction"
        observation for Fig. 8(a)."""
        if len(self.transaction_times) < 2:
            return 0.0
        gaps = [
            b - a for a, b in zip(self.transaction_times,
                                  self.transaction_times[1:])
        ]
        return max(gaps)


def fig8_credit_trace(*, attack_times: Tuple[float, ...] = (24.0,),
                      duration: float = 100.0,
                      submit_interval: float = 3.0,
                      params: Optional[CreditParameters] = None,
                      seed: int = 8) -> Fig8Result:
    """Reproduce Fig. 8(a) (one attack) or 8(b) (two attacks).

    A single light node submits a transaction every ``submit_interval``
    seconds to a private tangle (so transaction weights grow exactly as
    approvals accumulate), conducts double-spending at ``attack_times``,
    and pauses submission while its punished PoW would still be running
    — which recreates the paper's "spacing" between the attack and the
    recovery transaction.
    """
    params = params if params is not None else CreditParameters()
    keys = KeyPair.generate(seed=f"fig8-{seed}".encode())
    tangle = Tangle(Transaction.create_genesis(keys))
    registry = CreditRegistry(params, weight_provider=tangle.weight)
    # Lazy-tips detection is disabled: this is a single-node scripted
    # trace, so nobody refreshes the tip pool while the node serves its
    # punishment — its resume transaction would approve stale tips and
    # be re-punished, an artifact a real network (with background
    # traffic) does not produce.  The paper's Fig. 8 scripts only the
    # double-spending behaviour.
    consensus = CreditBasedConsensus(
        registry, policy=InverseDifficultyPolicy(),
        max_parent_age=float("inf"),
    )
    # Push-mode weight wiring: recorded weights are cached, so the
    # tangle must stream cumulative-weight updates into the registry.
    consensus.bind_tangle(tangle)
    profile = RASPBERRY_PI_3B
    tracer = CreditTracer(registry, keys.node_id)
    node_id = keys.node_id

    # Attacks are recorded upfront: credit evaluation ignores events
    # with timestamps in the future, so this is equivalent to injecting
    # them live, without coupling to the submission loop's progress.
    for attack_time in attack_times:
        registry.record_malicious(
            node_id, MaliciousBehaviour.DOUBLE_SPENDING, attack_time)
    transaction_times: List[float] = []
    now = 0.0
    while now <= duration:
        difficulty = consensus.required_difficulty(node_id, now)
        solve_seconds = profile.expected_pow_seconds(difficulty)
        finished = now + solve_seconds
        if finished > duration:
            break
        tips = tangle.tips()
        branch = tips[0]
        trunk = tips[-1]
        tx = Transaction.create(
            keys, kind="data", payload=b"fig8", timestamp=finished,
            branch=branch, trunk=trunk, difficulty=1,  # content only
        )
        result = tangle.attach(tx, arrival_time=finished)
        consensus.observe_attach(result)
        transaction_times.append(finished)
        now = max(finished, now + submit_interval)

    tracer.sample_range(0.0, duration, 0.5)
    for attack_time in attack_times:
        tracer.mark_event(attack_time, "attack", -1.0)
    recovery = None
    if attack_times:
        recovery = tracer.recovery_time(after=max(attack_times),
                                        threshold=-0.5)
    return Fig8Result(
        tracer=tracer,
        attack_times=list(attack_times),
        transaction_times=transaction_times,
        minimum_credit=tracer.minimum_credit(),
        recovery_seconds=recovery,
    )


# ---------------------------------------------------------------------------
# Fig. 9 — Performance evaluation in credit-based PoW mechanism
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9Regime:
    """One of Fig. 9's four control experiments."""

    name: str
    mean_pow_seconds: float
    transactions: int
    paper_seconds: float


def _run_fig9_regime(name: str, policy: DifficultyPolicy,
                     attack_times: Tuple[float, ...], *,
                     duration: float, submit_interval: float,
                     seed: int) -> Fig9Regime:
    keys = KeyPair.generate(seed=f"fig9-{name}".encode())
    tangle = Tangle(Transaction.create_genesis(keys))
    params = CreditParameters()
    registry = CreditRegistry(params, weight_provider=tangle.weight)
    # Single-node trace: see fig8_credit_trace for why lazy detection
    # is off here.
    consensus = CreditBasedConsensus(registry, policy=policy,
                                     max_parent_age=float("inf"))
    consensus.bind_tangle(tangle)
    profile = RASPBERRY_PI_3B
    engine = PowEngine(profile, SimulatedClock(), rng=random.Random(seed),
                       real_difficulty_limit=0)
    node_id = keys.node_id

    for attack_time in attack_times:
        registry.record_malicious(
            node_id, MaliciousBehaviour.DOUBLE_SPENDING, attack_time)
    pow_times: List[float] = []
    now = 0.0
    while now <= duration:
        difficulty = consensus.required_difficulty(node_id, now)
        result = engine.solve(b"fig9" + bytes([difficulty]), difficulty)
        pow_times.append(result.elapsed_seconds)
        finished = now + result.elapsed_seconds
        tips = tangle.tips()
        tx = Transaction.create(
            keys, kind="data", payload=b"fig9", timestamp=finished,
            branch=tips[0], trunk=tips[-1], difficulty=1,
        )
        attach_result = tangle.attach(tx, arrival_time=finished)
        consensus.observe_attach(attach_result)
        now = max(finished, now + submit_interval)
    return Fig9Regime(
        name=name,
        mean_pow_seconds=sum(pow_times) / len(pow_times),
        transactions=len(pow_times),
        paper_seconds=PAPER_FIG9_MEANS[name],
    )


def fig9_pow_comparison(*, duration: float = 90.0,
                        submit_interval: float = 3.0,
                        initial_difficulty: int = DEFAULT_INITIAL_DIFFICULTY,
                        seed: int = 9) -> List[Fig9Regime]:
    """Reproduce Fig. 9's four control experiments.

    The regimes, matching the paper's bar chart: original (fixed) PoW,
    credit-based PoW with normal behaviour, with one malicious attack
    (t = 24 s, as in Fig. 8a), and with two attacks (t = 24 s and 60 s,
    as in Fig. 8b's two dips).  90 s = 3ΔT.
    """
    regimes = [
        ("original-pow", FixedDifficultyPolicy(initial_difficulty), ()),
        ("credit-normal",
         InverseDifficultyPolicy(initial_difficulty=initial_difficulty), ()),
        ("credit-1-attack",
         InverseDifficultyPolicy(initial_difficulty=initial_difficulty),
         (24.0,)),
        ("credit-2-attacks",
         InverseDifficultyPolicy(initial_difficulty=initial_difficulty),
         (24.0, 60.0)),
    ]
    return [
        _run_fig9_regime(name, policy, attacks, duration=duration,
                         submit_interval=submit_interval, seed=seed)
        for name, policy, attacks in regimes
    ]


# ---------------------------------------------------------------------------
# Fig. 10 — Impact of symmetric encryption on transaction efficiency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Point:
    """One message length of the Fig. 10 sweep."""

    message_bytes: int
    measured_seconds: float
    modelled_rpi_seconds: float
    paper_seconds: Optional[float]


def fig10_aes_timing(*, min_exponent: int = 6, max_exponent: int = 20,
                     profile: DeviceProfile = RASPBERRY_PI_3B,
                     repeats: int = 1, seed: int = 10) -> List[Fig10Point]:
    """Reproduce Fig. 10: AES encryption time vs message length.

    ``measured_seconds`` is real wall-clock time of this library's AES
    (CTR mode) on the host running the benchmark; ``modelled_rpi_seconds``
    is the calibrated Raspberry Pi cost model for the same length.  The
    figure's shape — linear in message length on the log scale — holds
    for both.
    """
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(32))
    cipher = aes.AES(key)
    points = []
    for exponent in range(min_exponent, max_exponent + 1):
        length = 2 ** exponent
        message = bytes(length)
        best = None
        for _ in range(max(1, repeats)):
            nonce = bytes(rng.randrange(256) for _ in range(8))
            start = time.perf_counter()
            aes.ctr_encrypt(cipher, nonce, message)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        points.append(Fig10Point(
            message_bytes=length,
            measured_seconds=best,
            modelled_rpi_seconds=profile.aes_seconds(length),
            paper_seconds=PAPER_FIG10_ANCHORS.get(length),
        ))
    return points
