"""Measurement and trace utilities for the evaluation harness."""

from .energy import EnergyBreakdown, energy_for_stats, energy_per_transaction
from .metrics import (
    SummaryStats,
    ThroughputMeter,
    format_series,
    format_table,
    summary_stats,
)
from .tracing import CreditTracePoint, CreditTracer
from .visualize import chain_to_dot, tangle_summary, tangle_to_dot
from .workloads import ParallelGrowth, confirmation_times, grow_parallel_tangle

__all__ = [
    "tangle_to_dot",
    "tangle_summary",
    "chain_to_dot",
    "ParallelGrowth",
    "grow_parallel_tangle",
    "confirmation_times",
    "ThroughputMeter",
    "SummaryStats",
    "summary_stats",
    "format_table",
    "format_series",
    "CreditTracer",
    "CreditTracePoint",
    "EnergyBreakdown",
    "energy_for_stats",
    "energy_per_transaction",
]
