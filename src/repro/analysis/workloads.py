"""Reusable workload generators for throughput/latency experiments.

The DAG-vs-chain comparison (Ext-1), the confirmation-latency sweep
(Ext-6) and the ``dag_vs_chain`` example all need the same substrate: a
fleet of devices growing one tangle *in parallel*, each paying real
simulated PoW time on its own clock.  :func:`grow_parallel_tangle`
implements it once; :func:`confirmation_times` computes the
time-to-cumulative-weight metric over the result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crypto.keys import KeyPair
from ..devices.clock import SimulatedClock
from ..devices.profiles import RASPBERRY_PI_3B, DeviceProfile
from ..pow.engine import PowEngine
from ..tangle.tangle import Tangle
from ..tangle.tip_selection import TipSelector, UniformRandomTipSelector
from ..tangle.transaction import Transaction

__all__ = ["ParallelGrowth", "grow_parallel_tangle", "confirmation_times"]


@dataclass
class ParallelGrowth:
    """Outcome of one parallel-growth run.

    Attributes:
        tangle: the grown ledger.
        attach_times: transaction hash -> simulated attach time.
        makespan: when the slowest device finished (the fleet works
            concurrently, so this is the wall-clock analogue).
    """

    tangle: Tangle
    attach_times: Dict[bytes, float]
    makespan: float

    @property
    def transaction_count(self) -> int:
        return len(self.attach_times)

    @property
    def throughput(self) -> float:
        """Attached transactions per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.transaction_count / self.makespan


def grow_parallel_tangle(*, device_count: int, tx_per_device: int,
                         difficulty: int, seed: int,
                         profile: DeviceProfile = RASPBERRY_PI_3B,
                         selector: Optional[TipSelector] = None,
                         track_cumulative_weight: bool = True) -> ParallelGrowth:
    """Grow a tangle with *device_count* devices working concurrently.

    Each device owns its own clock and PoW engine; the global
    interleaving always advances the device whose clock is furthest
    behind — exactly how the concurrent execution would unfold, without
    a full network simulation.
    """
    if device_count < 1 or tx_per_device < 1:
        raise ValueError("need at least one device and one transaction")
    manager = KeyPair.generate(seed=f"workload-mgr-{seed}".encode())
    tangle = Tangle(Transaction.create_genesis(manager),
                    track_cumulative_weight=track_cumulative_weight)
    selector = selector if selector is not None else UniformRandomTipSelector()
    rng = random.Random(seed)
    states = []
    for index in range(device_count):
        clock = SimulatedClock()
        states.append({
            "keys": KeyPair.generate(seed=f"workload-dev-{index}".encode()),
            "clock": clock,
            "engine": PowEngine(profile, clock,
                                rng=random.Random(seed * 1009 + index)),
            "remaining": tx_per_device,
            "index": index,
        })
    attach_times: Dict[bytes, float] = {}
    while any(state["remaining"] for state in states):
        state = min((s for s in states if s["remaining"]),
                    key=lambda s: s["clock"].now())
        branch, trunk = selector.select(tangle, rng)
        draft = Transaction(
            kind="data", issuer=state["keys"].public,
            payload=f'{state["index"]}-{state["remaining"]}'.encode(),
            timestamp=state["clock"].now(), branch=branch, trunk=trunk,
            difficulty=difficulty, nonce=0, signature=b"",
        )
        result = state["engine"].solve(draft.pow_challenge, difficulty)
        tx = Transaction.create(
            state["keys"], kind=draft.kind, payload=draft.payload,
            timestamp=draft.timestamp, branch=draft.branch,
            trunk=draft.trunk, difficulty=difficulty,
            nonce=result.proof.nonce,
        )
        tangle.attach(tx, arrival_time=result.finished_at)
        attach_times[tx.tx_hash] = result.finished_at
        state["remaining"] -= 1
    return ParallelGrowth(
        tangle=tangle,
        attach_times=attach_times,
        makespan=max(s["clock"].now() for s in states),
    )


def confirmation_times(growth: ParallelGrowth, *,
                       threshold: int = 6) -> List[float]:
    """Per-transaction time from attach to cumulative weight *threshold*.

    Transactions never buried deeply enough within the run are skipped
    (the trailing tips of any finite experiment).
    """
    if threshold < 2:
        raise ValueError("threshold must be >= 2 (weight 1 is the tx itself)")
    tangle = growth.tangle
    attach_times = growth.attach_times
    latencies: List[float] = []
    for tx_hash, attached_at in attach_times.items():
        if tangle.weight(tx_hash) < threshold:
            continue
        descendant_times = sorted(
            attach_times[other] for other in attach_times
            if tx_hash in tangle.ancestors(other)
        )
        confirmed_at = descendant_times[threshold - 2]
        latencies.append(max(0.0, confirmed_at - attached_at))
    return latencies
