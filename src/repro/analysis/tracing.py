"""Credit-trace recording — the machinery behind Fig. 8.

Fig. 8 plots four curves against time for one node: transaction weights
``w`` (as bars), the credit ``Cr`` and its components ``CrP``/``CrN``.
:class:`CreditTracer` samples a :class:`~repro.core.credit.
CreditRegistry` on a fixed grid and exposes the same four series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.credit import CreditRegistry

__all__ = ["CreditTracePoint", "CreditTracer"]


@dataclass(frozen=True)
class CreditTracePoint:
    """One sample of the Fig. 8 curves."""

    time: float
    credit: float
    positive: float
    negative: float


@dataclass
class CreditTracer:
    """Samples one node's credit over time.

    Args:
        registry: the registry being traced.
        node_id: whose credit to sample.
    """

    registry: CreditRegistry
    node_id: bytes
    points: List[CreditTracePoint] = field(default_factory=list)
    events: List[Tuple[float, str, float]] = field(default_factory=list)

    def sample(self, now: float) -> CreditTracePoint:
        """Record one sample at time *now*."""
        breakdown = self.registry.breakdown(self.node_id, now)
        point = CreditTracePoint(
            time=now,
            credit=breakdown.credit,
            positive=breakdown.positive,
            negative=breakdown.negative,
        )
        self.points.append(point)
        return point

    def sample_range(self, start: float, end: float, step: float) -> None:
        """Sample on a uniform grid [start, end] inclusive."""
        if step <= 0:
            raise ValueError("step must be positive")
        t = start
        while t <= end + 1e-9:
            self.sample(t)
            t += step

    def mark_event(self, time: float, label: str, value: float = 0.0) -> None:
        """Annotate the trace (transaction weights / attack markers —
        the bars of Fig. 8)."""
        self.events.append((time, label, value))

    # -- series accessors (what the bench prints) -------------------------

    def credit_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.credit) for p in self.points]

    def positive_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.positive) for p in self.points]

    def negative_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.negative) for p in self.points]

    def minimum_credit(self) -> Optional[float]:
        if not self.points:
            return None
        return min(p.credit for p in self.points)

    def recovery_time(self, *, after: float, threshold: float) -> Optional[float]:
        """Seconds from *after* until credit first returns above
        *threshold* (Fig. 8's "takes 37 seconds to recover" metric)."""
        for point in self.points:
            if point.time >= after and point.credit >= threshold:
                return point.time - after
        return None
