"""Credit-trace recording — the machinery behind Fig. 8.

Fig. 8 plots four curves against time for one node: transaction weights
``w`` (as bars), the credit ``Cr`` and its components ``CrP``/``CrN``.
:class:`CreditTracer` samples a :class:`~repro.core.credit.
CreditRegistry` on a fixed grid and exposes the same four series.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import List, Optional, Tuple

from ..core.credit import CreditRegistry
from ..telemetry.registry import coerce_registry

__all__ = ["CreditTracePoint", "CreditTracer"]


@dataclass(frozen=True)
class CreditTracePoint:
    """One sample of the Fig. 8 curves."""

    time: float
    credit: float
    positive: float
    negative: float


@dataclass
class CreditTracer:
    """Samples one node's credit over time.

    Besides its own point list (the Fig. 8 series), the tracer is an
    adapter onto the unified telemetry registry: pass ``telemetry=`` and
    every sample also lands in the ``repro_credit_traced_value`` gauge
    (labelled per component) and the event stream, so credit traces
    appear in the same JSONL/Prometheus exports as everything else.

    Args:
        registry: the registry being traced.
        node_id: whose credit to sample.
        telemetry: optional :class:`~repro.telemetry.MetricsRegistry`
            to mirror samples into.
    """

    registry: CreditRegistry
    node_id: bytes
    points: List[CreditTracePoint] = field(default_factory=list)
    events: List[Tuple[float, str, float]] = field(default_factory=list)
    telemetry: InitVar = None

    def __post_init__(self, telemetry):
        metrics = coerce_registry(telemetry)
        self._m_traced = metrics.gauge(
            "repro_credit_traced_value",
            "Last sampled credit trace value, by component")
        self._m_trace_events = metrics.counter(
            "repro_credit_trace_events_total",
            "Trace annotations (attack markers, weight bars), by label")

    def sample(self, now: float) -> CreditTracePoint:
        """Record one sample at time *now*."""
        breakdown = self.registry.breakdown(self.node_id, now)
        point = CreditTracePoint(
            time=now,
            credit=breakdown.credit,
            positive=breakdown.positive,
            negative=breakdown.negative,
        )
        self.points.append(point)
        self._m_traced.set(point.credit, component="credit")
        self._m_traced.set(point.positive, component="positive")
        self._m_traced.set(point.negative, component="negative")
        return point

    def sample_range(self, start: float, end: float, step: float) -> None:
        """Sample on a uniform grid [start, end] inclusive."""
        if step <= 0:
            raise ValueError("step must be positive")
        t = start
        while t <= end + 1e-9:
            self.sample(t)
            t += step

    def mark_event(self, time: float, label: str, value: float = 0.0) -> None:
        """Annotate the trace (transaction weights / attack markers —
        the bars of Fig. 8)."""
        self.events.append((time, label, value))
        self._m_trace_events.inc(label=label)

    # -- series accessors (what the bench prints) -------------------------

    def credit_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.credit) for p in self.points]

    def positive_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.positive) for p in self.points]

    def negative_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.negative) for p in self.points]

    def minimum_credit(self) -> Optional[float]:
        if not self.points:
            return None
        return min(p.credit for p in self.points)

    def recovery_time(self, *, after: float, threshold: float) -> Optional[float]:
        """Seconds from *after* until credit first returns above
        *threshold* (Fig. 8's "takes 37 seconds to recover" metric)."""
        for point in self.points:
            if point.time >= after and point.credit >= threshold:
                return point.time - after
        return None
