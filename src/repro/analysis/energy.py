"""Per-device energy accounting.

The paper's core motivation is power: "blockchains are power-intensive
... which may not [be] suitable for power-constrained IoT devices", and
the credit mechanism "decreases power consumption for honest nodes".
This module turns the simulation's compute/transmit statistics into
joules via the :class:`~repro.devices.profiles.DeviceProfile` energy
model, so that claim can be measured (bench Ext-5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.profiles import DeviceProfile
from ..nodes.light_node import LightNodeStats

__all__ = ["EnergyBreakdown", "energy_for_stats", "energy_per_transaction"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules a device spent, by cause."""

    pow_joules: float
    aes_joules: float
    signature_joules: float
    radio_joules: float

    @property
    def total_joules(self) -> float:
        return (self.pow_joules + self.aes_joules
                + self.signature_joules + self.radio_joules)

    def per_transaction(self, transactions: int) -> float:
        """Mean joules per submitted transaction."""
        if transactions <= 0:
            raise ValueError("transactions must be positive")
        return self.total_joules / transactions


def energy_for_stats(profile: DeviceProfile, stats: LightNodeStats, *,
                     mean_payload_bytes: float = 256.0) -> EnergyBreakdown:
    """Convert a light node's accumulated statistics into energy.

    Radio energy is estimated from ``mean_payload_bytes`` per submitted
    transaction (the simulator tracks per-message sizes at the network
    layer; per-device byte totals are approximated here).
    """
    pow_joules = profile.compute_energy_joules(stats.pow_seconds_total)
    aes_joules = profile.compute_energy_joules(stats.aes_seconds_total)
    signature_joules = profile.compute_energy_joules(
        stats.submissions_sent * profile.signature_seconds
    )
    radio_joules = profile.radio_energy_joules(
        int(stats.submissions_sent * mean_payload_bytes)
    )
    return EnergyBreakdown(
        pow_joules=pow_joules,
        aes_joules=aes_joules,
        signature_joules=signature_joules,
        radio_joules=radio_joules,
    )


def energy_per_transaction(profile: DeviceProfile,
                           mean_pow_seconds: float, *,
                           payload_bytes: int = 256,
                           encrypts: bool = False) -> float:
    """Joules one transaction costs a device, given its mean PoW time.

    Used by the Fig. 9 → energy translation (Ext-5): the dominant term
    is PoW compute; AES and radio are added when applicable.
    """
    if mean_pow_seconds < 0:
        raise ValueError("mean_pow_seconds must be non-negative")
    joules = profile.compute_energy_joules(
        mean_pow_seconds + profile.signature_seconds
    )
    if encrypts:
        joules += profile.compute_energy_joules(
            profile.aes_seconds(payload_bytes)
        )
    joules += profile.radio_energy_joules(payload_bytes)
    return joules
