"""Full nodes (gateways) — Section IV-A.2.

"Gateways play the role of full nodes, which are committed to
maintaining the tangle network ... they receive the requests from
various sensors, verify and broadcast the transactions in the tangle,
they only process transactions from legal sensors that are authorized
by the manager."

A :class:`FullNode` keeps a complete tangle replica with the token
ledger and ACL state layered on as validators, runs the credit-based
consensus bookkeeping, serves the light-node RPC interface (the
reproduction of IRI's HTTP API), and floods new transactions to peer
full nodes with solidification for out-of-order arrivals.

RPC message kinds:

* ``get_tips_request`` → ``get_tips_response`` — returns two tips to
  approve *and* the credit-assigned PoW difficulty for the caller
  (workflow step 4, Fig. 6);
* ``submit_transaction`` → ``submit_response`` — validate, attach,
  gossip (workflow step 5);
* ``gossip_transaction`` — full-node flood traffic;
* ``sync_request`` → ``sync_response`` — anti-entropy: a (re)joining
  full node announces the transactions it knows; the peer returns what
  is missing, in arrival order, so gossip gaps (crashes, partitions)
  heal without replaying the whole history.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.acl import AuthorizationList, GenesisConfig
from ..core.consensus import CreditBasedConsensus
from ..devices.profiles import PC, DeviceProfile
from ..faults.backoff import DEFAULT_BACKOFF, BackoffPolicy
from ..network.gossip import GossipRelay, SolidificationBuffer
from ..network.network import NetworkNode
from ..network.transport import Message
from ..tangle.errors import (
    DuplicateTransactionError,
    UnknownParentError,
    ValidationError,
)
from ..tangle.ledger import TokenLedger
from ..tangle.tangle import DEFAULT_WEIGHT_FLUSH_INTERVAL, Tangle
from ..telemetry.lifecycle import coerce_lifecycle
from ..telemetry.registry import SECONDS_BUCKETS, coerce_registry
from ..tangle.tip_selection import TipSelector, UniformRandomTipSelector
from ..tangle.transaction import (
    Transaction,
    TransactionDecodeCache,
    TransactionKind,
)
from ..tangle.validation import (
    PreverifiedSet,
    VerificationCache,
    crypto_validator,
)

__all__ = ["FullNode", "FullNodeStats"]


@dataclass
class FullNodeStats:
    """Counters a gateway accumulates while serving the network."""

    tips_served: int = 0
    submissions_accepted: int = 0
    submissions_rejected: int = 0
    gossip_accepted: int = 0
    gossip_duplicates: int = 0
    gossip_parked: int = 0
    double_spends_detected: int = 0
    unauthorized_rejected: int = 0
    sync_requests_served: int = 0
    sync_transactions_sent: int = 0
    sync_transactions_received: int = 0
    parent_requests_sent: int = 0
    parent_requests_served: int = 0
    parent_fetch_recoveries: int = 0
    parent_fetch_exhausted: int = 0
    malformed_messages: int = 0
    rejection_reasons: Dict[str, int] = field(default_factory=dict)

    def count_rejection(self, error: Exception) -> None:
        reason = type(error).__name__
        self.rejection_reasons[reason] = self.rejection_reasons.get(reason, 0) + 1


class FullNode(NetworkNode):
    """A gateway: tangle replica + validation + gossip + light-node RPC.

    Args:
        address: network address.
        genesis: the shared genesis transaction (carries the
            :class:`~repro.core.acl.GenesisConfig` trust anchor).
        consensus: the node's credit-based consensus instance (each
            replica tracks credit from its own observations).
        tip_selector: strategy used to answer ``get_tips_request``.
        profile: hardware class (gateways default to the PC profile).
        rng: seeded randomness for tip selection.
        enforce_pow: verify nonces cryptographically; pure-simulation
            sweeps with sampled PoW disable this.
        quality_monitor: optional
            :class:`~repro.core.quality.ReadingQualityMonitor`; when
            present, plaintext sensor readings are screened and flagged
            issuers are punished through the credit mechanism
            (``bad-data`` behaviour).  Off by default: monitor state
            depends on per-replica arrival order, so deployments that
            enable it should pair it with a difficulty tolerance ≥ 1.
        retry_policy: the :class:`~repro.faults.backoff.BackoffPolicy`
            pacing parent re-requests (and, on the manager subclass,
            key-distribution retransmissions).  ``None`` uses
            :data:`~repro.faults.backoff.DEFAULT_BACKOFF`.
        weight_flush_interval: batching epoch of the tangle's lazy
            cumulative-weight engine (see
            :data:`~repro.tangle.tangle.DEFAULT_WEIGHT_FLUSH_INTERVAL`).
            Weights stay exact at every read; the interval only trades
            flush frequency against per-attach cost on the gossip/sync
            ingest hot path.
        verification_cache: optional
            :class:`~repro.tangle.validation.VerificationCache`; on a
            hit, signature+PoW re-verification of an already-verified
            transaction is skipped.  Deployments share one cache across
            their full nodes so each transaction is verified once, not
            once per hop.
        decode_cache: optional :class:`~repro.tangle.transaction.
            TransactionDecodeCache`; gossip/sync/submit payload bytes
            already decoded (by this node or a cache-sharing peer) are
            served as the same immutable instance instead of re-parsed.
        crypto_backend: name of the Ed25519 implementation verifying
            signatures — ``"reference"`` (the from-scratch module) or
            ``"accel"`` (precomputed tables, wNAF, batch equation; see
            :mod:`repro.crypto.accel`).  Both accept exactly the same
            signatures; multi-transaction messages (sync, parent and
            ``gossip_batch`` responses) are verified through the
            backend's batch path.
        crypto_pool: optional :class:`~repro.crypto.accel.CryptoPool`;
            when present, batch signature checks fan out across its
            worker processes (same verdicts, more cores).  Shared at
            deployment level — see ``BIoTConfig.pow_workers``.
        gossip_batch_size: max transactions coalesced into one outgoing
            ``gossip_batch`` message when a burst ingests together.  1
            (default) floods every transaction individually the moment
            it attaches — byte-identical wire behaviour to nodes
            without batching.
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` shared
            across the deployment; threaded into this node's tangle,
            gossip relay and solidification accounting.  ``None`` keeps
            the zero-overhead null registry.
        lifecycle: a :class:`~repro.telemetry.lifecycle.LifecycleTracker`
            shared across the deployment; the ingest path records
            per-node lifecycle stages (received/verified/attached/…)
            and opens causal hop spans for sampled transactions.
            ``None`` keeps the zero-overhead null tracker.
    """

    def __init__(self, address: str, genesis: Transaction, *,
                 consensus: Optional[CreditBasedConsensus] = None,
                 tip_selector: Optional[TipSelector] = None,
                 profile: DeviceProfile = PC,
                 rng: Optional[random.Random] = None,
                 enforce_pow: bool = True,
                 quality_monitor=None,
                 retry_policy: Optional[BackoffPolicy] = None,
                 weight_flush_interval: int = DEFAULT_WEIGHT_FLUSH_INTERVAL,
                 verification_cache: Optional[VerificationCache] = None,
                 decode_cache: Optional[TransactionDecodeCache] = None,
                 crypto_backend: str = "reference",
                 crypto_pool=None,
                 gossip_batch_size: int = 1,
                 telemetry=None, lifecycle=None):
        super().__init__(address)
        self.telemetry = coerce_registry(telemetry)
        self.lifecycle = coerce_lifecycle(lifecycle)
        self.retry_policy = retry_policy if retry_policy is not None \
            else DEFAULT_BACKOFF
        self.quality_monitor = quality_monitor
        self.profile = profile
        self.rng = rng if rng is not None else random.Random()
        self.consensus = consensus if consensus is not None else CreditBasedConsensus()
        self.tip_selector = tip_selector if tip_selector is not None else UniformRandomTipSelector()

        config = GenesisConfig.from_genesis(genesis)
        self.acl = AuthorizationList(config.manager, config.extra_managers)
        self.ledger = TokenLedger(dict(config.token_allocations))
        # NOTE: the token ledger is deliberately NOT an attach validator.
        # Conflicting transfers must still *attach* (and gossip) so every
        # replica holds the same DAG; their ledger effect is arbitrated
        # deterministically afterwards (TokenLedger.apply_or_conflict).
        # Refusing them structurally would strand all their descendants
        # in the solidification buffer on replicas that saw the other
        # conflict branch first.
        # Only *stateless* checks gate replication: structurally valid
        # transactions must attach identically everywhere.  Stateful
        # policy (ACL membership, credit-required difficulty) is an
        # ADMISSION rule applied on the submission path below — replicas
        # evaluate credit from whatever subset of history has reached
        # them, so making policy a replication-validity rule would let
        # knowledge races fork the replicas permanently.
        self.weight_flush_interval = weight_flush_interval
        self.verification_cache = verification_cache
        self.decode_cache = decode_cache
        self._enforce_pow = enforce_pow
        # Imported lazily: repro.crypto.accel pulls in repro.pow, which
        # this module's own import chain already passes through.
        from ..crypto.accel import get_backend
        if gossip_batch_size < 1:
            raise ValueError(
                f"gossip_batch_size must be >= 1, got {gossip_batch_size}")
        self._crypto_backend = get_backend(crypto_backend)
        self._crypto_pool = crypto_pool
        self.gossip_batch_size = gossip_batch_size
        self._preverified = PreverifiedSet()
        # peer -> pending encoded floods, non-None only while a batch
        # entry point is coalescing (see _batched_flood).
        self._flood_buffer: Optional[Dict[str, List[bytes]]] = None
        self.tangle = Tangle(genesis, validators=self._base_validators(),
                             weight_flush_interval=weight_flush_interval,
                             telemetry=self.telemetry)
        self.consensus.bind_tangle(self.tangle)
        self.relay = GossipRelay(telemetry=self.telemetry, node=address)
        self.relay.mark_seen(genesis.tx_hash)
        self.solidification: SolidificationBuffer = SolidificationBuffer()
        self.stats = FullNodeStats()
        self._m_gossip_duplicates = self.telemetry.counter(
            "repro_network_gossip_duplicates_total",
            "Gossip items suppressed as already seen, by node")
        self._m_retry_attempts = self.telemetry.counter(
            "repro_retry_attempts_total",
            "Recovery retransmissions sent, by protocol")
        self._m_retry_exhausted = self.telemetry.counter(
            "repro_retry_exhausted_total",
            "Recovery loops that gave up after max_attempts, by protocol")
        self._m_retry_recoveries = self.telemetry.counter(
            "repro_retry_recoveries_total",
            "Recovery loops that succeeded after at least one retry, "
            "by protocol")
        self._m_retry_backoff = self.telemetry.histogram(
            "repro_retry_backoff_seconds",
            "Jittered backoff delays armed by recovery loops",
            buckets=SECONDS_BUCKETS)
        self._m_crypto_batch_rounds = self.telemetry.counter(
            "repro_crypto_batch_rounds_total",
            "Batch signature-verification rounds run on ingest bursts")
        self._m_crypto_batch_verified = self.telemetry.counter(
            "repro_crypto_batch_verified_total",
            "Signatures accepted through batch verification")
        self._m_crypto_batch_fallback = self.telemetry.counter(
            "repro_crypto_batch_fallback_total",
            "Batch items rejected by the combined equation and settled "
            "by individual verification")
        self._m_crypto_batch_size = self.telemetry.histogram(
            "repro_crypto_batch_size",
            "Transactions per batch signature-verification round",
            buckets=(2, 4, 8, 16, 32, 64, 128, 256))
        # parent hash -> {"attempt": int, "source": peer or None}
        self._parent_requests: Dict[bytes, Dict] = {}
        # Transactions at or before this ledger time have their credit
        # effects already baked into the registry (imported snapshot
        # state); re-ingesting them must not re-record behaviour.
        self.credit_horizon = -float("inf")
        # Durable journalling (repro.storage): None keeps the node
        # fully in-memory, exactly as before the storage layer existed.
        self.persistence = None

    def _base_validators(self):
        """The stateless replication validators every tangle this node
        owns (initial, snapshot-restored, cold-restored) must run."""
        return [
            crypto_validator(allow_simulated_pow=not self._enforce_pow,
                             cache=self.verification_cache,
                             backend=self._crypto_backend,
                             preverified=self._preverified),
        ]

    # -- peers -------------------------------------------------------------

    def add_peer(self, address: str) -> None:
        """Register another full node for gossip flooding."""
        self.relay.add_peer(address)

    # -- snapshots / bootstrap -----------------------------------------------

    def export_snapshot(self, *, now: float,
                        keep_recent_seconds: float = 60.0,
                        min_weight_to_prune: int = 5) -> "NodeSnapshot":
        """Capture this node's state as a :class:`~repro.nodes.snapshot.
        NodeSnapshot`: the pruned tangle plus ACL, ledger and credit
        state — storage control for this node, bootstrap artifact for a
        new one."""
        from ..tangle.snapshot import take_snapshot
        from .snapshot import NodeSnapshot

        tangle_snapshot = take_snapshot(
            self.tangle, now=now,
            keep_recent_seconds=keep_recent_seconds,
            min_weight_to_prune=min_weight_to_prune,
        )
        return NodeSnapshot(
            tangle=tangle_snapshot,
            acl_state=self.acl.export_state(),
            ledger_state=self.ledger.export_state(),
            credit_state=self.consensus.registry.export_state(now=now),
            created_at=now,
        )

    def adopt_snapshot(self, snapshot: "NodeSnapshot") -> None:
        """Replace this node's ledger state with *snapshot* (storage
        reclamation on a live node, or the second half of bootstrap).

        Behaviour observed in the snapshot's history is final: the
        credit horizon is advanced so re-ingesting pre-snapshot
        transactions (e.g. via sync) cannot double-count credit.
        """
        validators = self.tangle._validators
        self.tangle = snapshot.tangle.restore(
            track_cumulative_weight=True,
            weight_flush_interval=self.weight_flush_interval,
        )
        for validator in validators:
            self.tangle.add_validator(validator)
        self.acl.import_state(snapshot.acl_state)
        self.ledger.import_state(snapshot.ledger_state)
        # Reversal payloads are not part of the ledger wire state;
        # rebuild them from the retained region so conflict arbitration
        # spanning the snapshot boundary replays exactly.
        self.ledger.rehydrate(tx for tx, _ in snapshot.tangle.retained)
        self.consensus.registry.import_state(snapshot.credit_state)
        # Re-bind: the provider, flush listener and refresh hook must all
        # point at the freshly restored tangle, not the discarded one.
        self.consensus.bind_tangle(self.tangle)
        self.credit_horizon = snapshot.created_at
        self.relay.mark_seen_batch(
            [snapshot.tangle.genesis.tx_hash]
            + [tx.tx_hash for tx, _ in snapshot.tangle.retained])

    @classmethod
    def bootstrap_from_snapshot(cls, address: str, snapshot: "NodeSnapshot",
                                **kwargs) -> "FullNode":
        """Build a brand-new gateway from a peer's :class:`~repro.nodes.
        snapshot.NodeSnapshot`.

        The newcomer starts with the snapshot's DAG region and the full
        derived state (who is authorised, who owns what, who behaved
        how), then anti-entropy sync fills whatever arrived after the
        snapshot was taken.
        """
        node = cls(address, snapshot.tangle.genesis, **kwargs)
        node.adopt_snapshot(snapshot)
        return node

    # -- durability (repro.storage) ------------------------------------------

    def attach_persistence(self, persistence) -> None:
        """Start journalling to *persistence* (a :class:`~repro.storage.
        persistence.NodePersistence`).

        The store is bound to this node's genesis; any transactions
        already attached before the journal existed are backfilled so
        the log covers the whole history (skipped when the store already
        holds that history — a checkpoint or journal records).
        """
        persistence.initialize(self.tangle.genesis)
        if persistence.epoch == 0 and persistence.transactions_logged == 0:
            for tx in self.tangle:
                if not tx.is_genesis:
                    persistence.record_transaction(
                        tx, self.tangle.arrival_time(tx.tx_hash))
        self.persistence = persistence

    def replay_attach(self, tx: Transaction, *, arrival_time: float) -> bool:
        """Re-attach one journalled transaction during a restore.

        Replay is trusted local history, not network traffic: no
        admission policy, no flooding, no parent fetching — and credit
        *is* observed regardless of the horizon, because the journal
        tail postdates the snapshot that set the horizon by
        construction.  A journalled transaction whose parents are
        missing means the log and snapshot disagree, which is
        corruption, not gossip reordering.
        """
        from ..storage.errors import StorageCorruptionError

        try:
            result = self.tangle.attach(tx, arrival_time=arrival_time)
        except DuplicateTransactionError:
            return False
        except UnknownParentError as exc:
            raise StorageCorruptionError(
                f"journal replay references a missing parent "
                f"({exc}) — log and snapshot disagree") from exc
        self.consensus.observe_attach(result)
        self._apply_side_effects(tx, arrival_time)
        self.relay.mark_seen(tx.tx_hash)
        return True

    def cold_restore(self) -> int:
        """Rebuild this node's entire state from its durable store.

        This is the crash/restart path: volatile state (tangle, ledger,
        ACL, credit, gossip memory, solidification buffer) is discarded
        and reconstructed from the newest checkpoint plus the journal
        tail.  Anti-entropy (:meth:`resync_with_peers`) then covers
        whatever the journal missed.  Returns the number of journal
        records replayed.
        """
        from ..storage.errors import StorageError

        if self.persistence is None:
            raise StorageError(
                f"cold restart of {self.address} has no durable store to "
                f"restore from — the node would silently regenerate "
                f"genesis state; configure BIoTConfig.storage_backend/"
                f"storage_dir")
        persistence, self.persistence = self.persistence, None
        restore = persistence.load()
        genesis = restore.genesis
        if genesis.tx_hash != self.tangle.genesis.tx_hash:
            self.persistence = persistence
            raise StorageError(
                f"store genesis does not match {self.address}'s deployment")

        config = GenesisConfig.from_genesis(genesis)
        self.acl = AuthorizationList(config.manager, config.extra_managers)
        self.ledger = TokenLedger(dict(config.token_allocations))
        self.consensus.registry.import_state({"nodes": {}})
        self.tangle = Tangle(genesis, validators=self._base_validators(),
                             weight_flush_interval=self.weight_flush_interval,
                             telemetry=self.telemetry)
        self.consensus.bind_tangle(self.tangle)
        self.relay.reset_seen()
        self.relay.mark_seen(genesis.tx_hash)
        self.solidification = SolidificationBuffer()
        self._parent_requests.clear()
        self.credit_horizon = -float("inf")

        if restore.snapshot is not None:
            self.adopt_snapshot(restore.snapshot)
        replayed = 0
        for tx, arrival_time in restore.tail:
            if self.replay_attach(tx, arrival_time=arrival_time):
                replayed += 1
        self.persistence = persistence
        return replayed

    def _check_admission(self, tx: Transaction) -> Optional[str]:
        """Stateful admission policy for directly submitted transactions.

        Gateways "only process transactions from legal sensors that are
        authorized by the manager" and assign the credit-required PoW
        difficulty — both checks belong at the service boundary, where
        this gateway's own state is authoritative for its own clients.
        Gossip and sync traffic skips them: the admitting peer already
        applied policy, and re-judging with *different local knowledge*
        (a malice report still in flight, a pruned credit window) would
        desynchronise the replicas.

        Transactions at or before the credit horizon are settled history
        vouched for by an adopted snapshot and are never re-judged.
        Returns an error string, or None when admitted.
        """
        if tx.timestamp <= self.credit_horizon:
            return None
        try:
            self.acl.validator(self.tangle, tx)
            self.consensus.validator(self.tangle, tx)
        except ValidationError as exc:
            self.stats.count_rejection(exc)
            return str(exc)
        return None

    # -- message handling ----------------------------------------------------

    def handle_message(self, message: Message) -> None:
        handler = {
            "get_tips_request": self._handle_get_tips,
            "submit_transaction": self._handle_submit,
            "gossip_transaction": self._handle_gossip,
            "gossip_batch": self._handle_gossip_batch,
            "sync_request": self._handle_sync_request,
            "sync_response": self._handle_sync_response,
            "parent_request": self._handle_parent_request,
            "parent_response": self._handle_parent_response,
        }.get(message.kind)
        if handler is None:
            return  # unknown kinds are dropped silently (open network)
        try:
            handler(message)
        except (ValueError, KeyError, TypeError) as exc:
            # A malformed message from the open network must never take
            # the gateway down — count it and move on.
            self.stats.malformed_messages += 1
            self.stats.rejection_reasons.setdefault("malformed", 0)
            self.stats.rejection_reasons["malformed"] += 1

    def _now(self) -> float:
        if self.network is None:
            return 0.0
        return self.network.scheduler.clock.now()

    def _decode(self, data: bytes) -> Transaction:
        """Decode wire bytes, through the shared decode LRU when one is
        wired (the same bytes object reaches every node on a flood)."""
        if self.decode_cache is not None:
            return self.decode_cache.decode(data)
        return Transaction.from_bytes(data)

    def _handle_get_tips(self, message: Message) -> None:
        body = message.body
        issuer_node_id = body["node_id"]
        if not self.acl.is_authorized(issuer_node_id):
            self.stats.unauthorized_rejected += 1
            self.send(message.sender, "get_tips_response", {
                "request_id": body.get("request_id"),
                "ok": False,
                "error": "unauthorized",
            })
            return
        branch, trunk = self.tip_selector.select(self.tangle, self.rng)
        difficulty = self.consensus.required_difficulty(issuer_node_id, self._now())
        self.stats.tips_served += 1
        self.send(message.sender, "get_tips_response", {
            "request_id": body.get("request_id"),
            "ok": True,
            "branch": branch,
            "trunk": trunk,
            "difficulty": difficulty,
        })

    def _handle_submit(self, message: Message) -> None:
        tx = self._decode(message.body["transaction"])
        ok, error = self._ingest(tx, source=None, admit=True)
        if ok:
            self.stats.submissions_accepted += 1
        else:
            self.stats.submissions_rejected += 1
        self.send(message.sender, "submit_response", {
            "request_id": message.body.get("request_id"),
            "ok": ok,
            "error": error,
            "tx_hash": tx.tx_hash,
        })

    def _handle_gossip(self, message: Message) -> None:
        tx = self._decode(message.body["transaction"])
        self._ingest(tx, source=message.sender, admit=False)

    def _handle_gossip_batch(self, message: Message) -> None:
        self._ingest_batch(message.body.get("transactions", ()),
                           source=message.sender)

    # -- anti-entropy sync -------------------------------------------------

    def request_sync(self, peer: str) -> bool:
        """Ask *peer* for everything we are missing.

        Used by a gateway rejoining after a crash or partition: gossip
        is fire-and-forget, so anything flooded while we were down is
        gone unless explicitly reconciled.
        """
        known = [tx.tx_hash for tx in self.tangle]
        return self.send(peer, "sync_request", {"known": known},
                         size_bytes=32 * len(known))

    def _handle_sync_request(self, message: Message) -> None:
        known = set(message.body.get("known", ()))
        missing = [
            tx.to_bytes() for tx in self.tangle  # arrival order: parents first
            if tx.tx_hash not in known and not tx.is_genesis
        ]
        self.stats.sync_requests_served += 1
        self.stats.sync_transactions_sent += len(missing)
        self.send(message.sender, "sync_response", {"transactions": missing},
                  size_bytes=sum(len(m) for m in missing))

    def _handle_sync_response(self, message: Message) -> None:
        accepted = self._ingest_batch(message.body.get("transactions", ()),
                                      source=message.sender)
        self.stats.sync_transactions_received += accepted

    def resync_with_peers(self) -> int:
        """Anti-entropy sweep against every gossip peer (post-heal or
        post-restart recovery).  Returns the number of peers reached."""
        reached = 0
        for peer in self.relay.peers:
            if self.request_sync(peer):
                reached += 1
        return reached

    # -- targeted parent recovery ------------------------------------------

    _PARENT_RESPONSE_BUDGET = 32
    """Max transactions returned per parent request: the asked-for tx
    plus its nearest ancestors (deeper gaps re-request recursively)."""

    def _schedule_parent_fetch(self, missing, source: Optional[str]) -> None:
        """Arm a backoff-paced re-request loop for each missing parent.

        Gossip is fire-and-forget, so a dropped parent strands its whole
        subtree in the solidification buffer.  Instead of waiting for a
        global sync, ask a peer for the specific hash, retrying on the
        node's :class:`~repro.faults.backoff.BackoffPolicy` until the
        parent attaches or attempts are exhausted.
        """
        if self.network is None or not self.relay.peers:
            return
        for parent in missing:
            if parent in self._parent_requests or parent in self.tangle:
                continue
            self._parent_requests[parent] = {
                "attempt": 0, "sent": 0, "source": source,
            }
            self._arm_parent_fetch(parent)

    def _arm_parent_fetch(self, parent: bytes) -> None:
        state = self._parent_requests.get(parent)
        if state is None:
            return
        state["attempt"] += 1
        attempt = state["attempt"]
        delay = self.retry_policy.delay(attempt, self.rng)
        self._m_retry_backoff.observe(delay)

        def fire() -> None:
            current = self._parent_requests.get(parent)
            if current is None or current["attempt"] != attempt:
                return  # resolved, superseded, or cancelled
            if parent in self.tangle:
                self._parent_requests.pop(parent, None)
                return
            peer = self._parent_fetch_peer(current["source"], attempt)
            if peer is not None:
                current["sent"] += 1
                self.stats.parent_requests_sent += 1
                self._m_retry_attempts.inc(protocol="parent_fetch")
                self.send(peer, "parent_request", {"hashes": [parent]},
                          size_bytes=32)
            if self.retry_policy.exhausted(attempt):
                self._parent_requests.pop(parent, None)
                self.stats.parent_fetch_exhausted += 1
                self._m_retry_exhausted.inc(protocol="parent_fetch")
            else:
                self._arm_parent_fetch(parent)

        self.network.scheduler.schedule(delay, fire)

    def _parent_fetch_peer(self, source: Optional[str],
                           attempt: int) -> Optional[str]:
        """The peer to ask: the gossip source first, then round-robin
        over the peer list so a dead source does not starve recovery."""
        if source is not None and attempt == 1 and self.relay.has_peer(source):
            return source
        if not self.relay.peers:
            return source
        return self.relay.peers[(attempt - 1) % len(self.relay.peers)]

    def _settle_parent_fetch(self, tx_hash: bytes) -> None:
        """A transaction attached: stop any re-request loop for it."""
        state = self._parent_requests.pop(tx_hash, None)
        if state is not None and state["sent"] >= 1:
            self.stats.parent_fetch_recoveries += 1
            self._m_retry_recoveries.inc(protocol="parent_fetch")

    def _handle_parent_request(self, message: Message) -> None:
        transactions = []
        for tx_hash in message.body.get("hashes", ()):
            if tx_hash not in self.tangle:
                continue
            transactions.extend(self._parent_response_chain(tx_hash))
        self.stats.parent_requests_served += 1
        self.send(message.sender, "parent_response",
                  {"transactions": transactions},
                  size_bytes=sum(len(t) for t in transactions))

    def _parent_response_chain(self, tx_hash: bytes) -> list:
        """The requested transaction plus its nearest non-genesis
        ancestors (parents-first order), bounded by the response budget.

        We cannot know which ancestors the requester already holds;
        sending the closest ones covers the common a-few-drops gap, and
        anything still missing parks again and re-requests recursively.
        """
        ancestors = [
            h for h in self.tangle.ancestors(tx_hash)
            if not self.tangle.get(h).is_genesis
        ]
        ancestors.sort(key=lambda h: self.tangle.arrival_time(h))
        chain = ancestors[-(self._PARENT_RESPONSE_BUDGET - 1):] + [tx_hash]
        return [self.tangle.get(h).to_bytes() for h in chain]

    def _handle_parent_response(self, message: Message) -> None:
        self._ingest_batch(message.body.get("transactions", ()),
                           source=message.sender)

    # -- ingestion -------------------------------------------------------

    def ingest_local(self, tx: Transaction) -> bool:
        """Attach a locally created transaction (manager/gateway own
        traffic) and gossip it."""
        ok, _ = self._ingest(tx, source=None, admit=True)
        return ok

    def _ingest_batch(self, encoded_transactions, *, source: Optional[str]) -> int:
        """Shared path for multi-transaction messages (sync, parent and
        gossip-batch responses): decode everything, batch-verify the
        signatures once, then attach in order.  Returns how many
        attached.  Corrupt entries are skipped without poisoning the
        rest, exactly as the per-item loops did."""
        transactions: List[Transaction] = []
        for encoded in encoded_transactions:
            try:
                transactions.append(self._decode(encoded))
            except ValueError:
                continue
        self._preverify(transactions)
        accepted = 0
        with self._batched_flood():
            for tx in transactions:
                ok, _ = self._ingest(tx, source=source, admit=False)
                if ok:
                    accepted += 1
        return accepted

    def _preverify(self, transactions: List[Transaction]) -> None:
        """Batch-verify a burst's signatures ahead of per-item attach.

        Instances already verified (verification cache) or already
        batch-verified (preverified set) are skipped; everything else
        goes through the backend's batch equation in one round — for
        the accel backend that is one multi-scalar multiplication
        instead of N sequential verifies.  Positive verdicts are parked
        in the :class:`~repro.tangle.validation.PreverifiedSet` for the
        validator to consume; negative ones are left for the validator
        to re-verify (and reject) individually, so batch and sequential
        ingestion always agree transaction by transaction.
        """
        pending: List[Transaction] = []
        seen = set()
        for tx in transactions:
            digest = tx.full_digest
            if digest in seen or digest in self._preverified:
                continue
            if (self.verification_cache is not None
                    and digest in self.verification_cache):
                continue
            seen.add(digest)
            pending.append(tx)
        if len(pending) < 2:
            return  # nothing to amortise; the validator handles singles
        items = [(tx.issuer.sign_public, tx.tx_hash, tx.signature)
                 for tx in pending]
        if self._crypto_pool is not None:
            verdicts = self._crypto_pool.verify_many(items)
        else:
            verdicts = self._crypto_backend.verify_batch(items)
        passed = 0
        for tx, ok in zip(pending, verdicts):
            if ok:
                self._preverified.add(tx.full_digest)
                passed += 1
        self._m_crypto_batch_rounds.inc()
        self._m_crypto_batch_size.observe(len(pending))
        self._m_crypto_batch_verified.inc(passed)
        if passed != len(pending):
            self._m_crypto_batch_fallback.inc(len(pending) - passed)

    @contextmanager
    def _batched_flood(self):
        """Coalesce floods emitted while the body runs into per-peer
        ``gossip_batch`` messages (chunked at ``gossip_batch_size``).

        With batch size 1 — the default — this is a no-op and every
        attach floods immediately as its own ``gossip_transaction``,
        preserving the exact pre-batching wire behaviour and event
        schedule.  Chunks of one are likewise sent as plain
        ``gossip_transaction`` so peers see no format change.
        """
        if self.gossip_batch_size <= 1 or self._flood_buffer is not None:
            yield
            return
        self._flood_buffer = {}
        try:
            yield
        finally:
            buffer, self._flood_buffer = self._flood_buffer, None
            for peer, encoded_list in buffer.items():
                for start in range(0, len(encoded_list),
                                   self.gossip_batch_size):
                    chunk = encoded_list[start:start + self.gossip_batch_size]
                    if len(chunk) == 1:
                        self.send(peer, "gossip_transaction",
                                  {"transaction": chunk[0]},
                                  size_bytes=len(chunk[0]))
                    else:
                        self.send(peer, "gossip_batch",
                                  {"transactions": chunk},
                                  size_bytes=sum(len(c) for c in chunk))

    def _ingest(self, tx: Transaction, *, source: Optional[str],
                admit: bool) -> tuple:
        """Shared attach path for submissions, gossip and local issues.

        *admit* runs the stateful admission policy (ACL + credit
        difficulty) — True on the service boundary (submissions, local
        issues), False for peer traffic (gossip, sync, solidification
        releases of peer traffic).  Returns ``(ok, error_string)``.
        """
        if self.relay.has_seen(tx.tx_hash) and tx.tx_hash in self.tangle:
            if source is not None:
                self.stats.gossip_duplicates += 1
                self._m_gossip_duplicates.inc(node=self.address)
            return False, "duplicate"
        if admit:
            admission_error = self._check_admission(tx)
            if admission_error is not None:
                return False, admission_error
        now = self._now()
        self.lifecycle.record(tx.tx_hash, "received", self.address)
        try:
            result = self.tangle.attach(tx, arrival_time=now)
        except UnknownParentError:
            missing = [p for p in (tx.branch, tx.trunk) if p not in self.tangle]
            self.solidification.park(tx.tx_hash, (tx, admit), missing)
            self.stats.gossip_parked += 1
            self._schedule_parent_fetch(missing, source)
            return False, "parked-missing-parent"
        except DuplicateTransactionError:
            self.stats.gossip_duplicates += 1
            self._m_gossip_duplicates.inc(node=self.address)
            return False, "duplicate"
        except ValidationError as exc:
            self.stats.count_rejection(exc)
            return False, str(exc)

        # Attach success implies the stateless validators (signature +
        # PoW) all passed — "verified" and "attached" are one event on
        # this code path, recorded as two stages for the timeline.
        self.lifecycle.record(tx.tx_hash, "verified", self.address)
        self.lifecycle.record(tx.tx_hash, "attached", self.address)
        # For sampled transactions the whole post-attach tail (side
        # effects, flood, solid-child releases) runs under a tx.ingest
        # hop span, so downstream gossip chains onto this node causally.
        with self.lifecycle.ingest(tx.tx_hash, node=self.address,
                                   source=source):
            if self.persistence is not None:
                self.persistence.record_transaction(tx, now)
            if tx.timestamp > self.credit_horizon:
                self.consensus.observe_attach(result)
                self.lifecycle.record(tx.tx_hash, "credit_observed",
                                      self.address)
            self._settle_parent_fetch(tx.tx_hash)
            error = self._apply_side_effects(tx, now)
            self.relay.mark_seen(tx.tx_hash)
            if source is not None:
                self.stats.gossip_accepted += 1
            self._flood(tx, exclude=source)
            self._release_solid_children(tx)
        if error is not None:
            return False, error
        return True, None

    def _apply_side_effects(self, tx: Transaction, now: float) -> Optional[str]:
        """Post-attach state updates; returns an error string when the
        transaction attached but its *effect* was voided (conflicts)."""
        if tx.kind == TransactionKind.TRANSFER:
            try:
                outcome = self.ledger.apply_or_conflict(tx, now=now)
            except ValidationError as exc:
                self.stats.count_rejection(exc)
                return str(exc)
            if outcome in ("conflict-rejected", "conflict-replaced"):
                self.stats.double_spends_detected += 1
                # Attribute at the ledger timestamp so every replica
                # derives the same credit penalty for the same conflict.
                self.consensus.report_double_spend(tx.issuer.node_id,
                                                   tx.timestamp)
                return "double-spend conflict (transfer canceled)"
            if outcome == "insufficient":
                return "insufficient funds (transfer void)"
        elif tx.kind == TransactionKind.ACL:
            self.acl.apply(tx)
        elif tx.kind == TransactionKind.DATA:
            self._screen_data_quality(tx)
        return None

    def _screen_data_quality(self, tx: Transaction) -> None:
        """Optional quality control over plaintext readings (the data
        transaction still stands; bad data costs credit, not attach)."""
        if self.quality_monitor is None:
            return
        from ..core.authority import DataProtector
        from ..core.quality import BAD_DATA_BEHAVIOUR
        from ..devices.sensors import SensorReading
        if DataProtector.is_encrypted(tx.payload):
            return  # opaque by design; key holders screen these
        if not tx.payload or tx.payload[0] != 0x00:
            return  # not a protector-framed payload
        try:
            reading = SensorReading.from_bytes(tx.payload[1:])
        except ValueError:
            return  # free-form data payloads are not screened
        verdict = self.quality_monitor.assess(tx.issuer.node_id, reading)
        if not verdict.ok:
            self.consensus.registry.record_malicious(
                tx.issuer.node_id, BAD_DATA_BEHAVIOUR, tx.timestamp)

    def _flood(self, tx: Transaction, *, exclude: Optional[str]) -> None:
        encoded = tx.to_bytes()
        targets = self.relay.relay_targets(tx.tx_hash, exclude=exclude)
        if self._flood_buffer is not None:
            for peer in targets:
                self._flood_buffer.setdefault(peer, []).append(encoded)
            return
        for peer in targets:
            self.send(peer, "gossip_transaction", {"transaction": encoded},
                      size_bytes=len(encoded))

    def _release_solid_children(self, tx: Transaction) -> None:
        for child_hash, (parked_tx, admit) in \
                self.solidification.satisfy(tx.tx_hash):
            self.lifecycle.record(child_hash, "solidified", self.address)
            self._ingest(parked_tx, source=None, admit=admit)

    # -- convenience -----------------------------------------------------

    def health_digest(self) -> Dict[str, object]:
        """Deterministic per-node health snapshot for convergence
        reports: solidification pressure, recovery backlog, gossip and
        cache effectiveness.  Uses only plain simulation state (no
        telemetry), so it is byte-identical run to run with telemetry
        on or off.  The cache blocks reflect the *deployment-shared*
        caches when those are wired (see ``BIoTSystem.build``)."""
        digest: Dict[str, object] = {
            "tangle_size": len(self.tangle),
            "tips": self.tangle.tip_count,
            "solidification_depth": len(self.solidification),
            "solidification_peak": self.solidification.depth_peak,
            "solidification_evictions": self.solidification.evictions,
            "pending_parent_requests": len(self._parent_requests),
            "parent_fetch_recoveries": self.stats.parent_fetch_recoveries,
            "parent_fetch_exhausted": self.stats.parent_fetch_exhausted,
            "gossip_seen": self.relay.seen_count,
            "gossip_relays": self.relay.relays,
            "gossip_duplicates": self.relay.duplicates_suppressed,
            "malformed_messages": self.stats.malformed_messages,
        }
        if self.verification_cache is not None:
            cache = self.verification_cache
            total = cache.hits + cache.misses
            digest["verify_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hits / total if total else 0.0,
                "evictions": cache.evictions,
            }
        if self.decode_cache is not None:
            cache = self.decode_cache
            total = cache.hits + cache.misses
            digest["decode_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hits / total if total else 0.0,
                "evictions": cache.evictions,
            }
        return digest

    @property
    def tangle_size(self) -> int:
        return len(self.tangle)

    def confirmed_count(self, threshold: int) -> int:
        """Transactions whose cumulative weight reached *threshold*."""
        return sum(
            1 for tx in self.tangle
            if self.tangle.is_confirmed(tx.tx_hash, threshold)
        )
