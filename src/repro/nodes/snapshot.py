"""Full-node snapshots: pruned ledger + derived application state.

A :class:`~repro.tangle.snapshot.TangleSnapshot` alone is not enough to
bootstrap a gateway: the authorisation list, token balances and credit
histories derived from the *pruned* region would be lost, and the new
node would reject the very history its peers consider settled.  A
:class:`NodeSnapshot` bundles all four, and is the artifact a
constrained gateway persists (storage control) or ships to a new peer
(bootstrap).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict

from ..tangle.snapshot import TangleSnapshot

__all__ = ["NodeSnapshot"]


@dataclass(frozen=True)
class NodeSnapshot:
    """Everything a new full node needs to stand in for an old one.

    Attributes:
        tangle: the pruned DAG (retained region + entry points).
        acl_state: authorisation list as of the snapshot.
        ledger_state: balances and spent sequence slots.
        credit_state: behaviour histories (malicious history in full).
        created_at: ledger time of the snapshot — also the *credit
            horizon*: a restored node must not re-record behaviour for
            transactions at or before this time.
    """

    tangle: TangleSnapshot
    acl_state: Dict[str, object]
    ledger_state: Dict[str, object]
    credit_state: Dict[str, object]
    created_at: float

    def to_json(self) -> str:
        return json.dumps({
            "tangle": self.tangle.to_json(),
            "acl_state": self.acl_state,
            "ledger_state": self.ledger_state,
            "credit_state": self.credit_state,
            "created_at": self.created_at,
        })

    @classmethod
    def from_json(cls, data: str) -> "NodeSnapshot":
        try:
            fields = json.loads(data)
            return cls(
                tangle=TangleSnapshot.from_json(fields["tangle"]),
                acl_state=fields["acl_state"],
                ledger_state=fields["ledger_state"],
                credit_state=fields["credit_state"],
                created_at=float(fields["created_at"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed node snapshot: {exc}") from exc
