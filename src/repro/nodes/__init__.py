"""Node roles of the Fig. 3 architecture: light nodes (wireless
sensors), full nodes (gateways) and the manager."""

from .full_node import FullNode, FullNodeStats
from .light_node import LightNode, LightNodeStats
from .manager import ManagerNode
from .snapshot import NodeSnapshot

__all__ = [
    "LightNode",
    "LightNodeStats",
    "FullNode",
    "FullNodeStats",
    "ManagerNode",
    "NodeSnapshot",
]
