"""Light nodes (wireless sensors) — Section IV-A.1.

"Light nodes are those power-constrained devices like IoT devices.
They do not store blockchain information due to their constrained
nature.  What they can do are to verify tips, run PoW consensus
algorithm and send new transactions to full nodes."

A :class:`LightNode` runs the device half of the Fig. 6 workflow on the
simulated network:

1. read its sensor;
2. protect the payload (AES when the stream is sensitive — charged to
   the device profile);
3. ask its gateway for two tips and its current PoW difficulty;
4. grind the PoW locally (compute time scheduled, not blocking the
   simulation);
5. sign and submit the transaction;
6. repeat.

It also answers the manager's key-distribution messages (Fig. 4),
installing received group keys into its :class:`~repro.core.authority.
DataProtector`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.authority import DataProtector, DeviceKeyAgent, KeyDistributionError
from ..crypto.keys import KeyPair, PublicIdentity
from ..devices.profiles import RASPBERRY_PI_3B, DeviceProfile
from ..devices.sensors import ReadingBatch, Sensor
from ..network.network import NetworkNode
from ..network.transport import Message
from ..pow.engine import PowEngine
from ..tangle.transaction import Transaction, TransactionKind
from ..telemetry.lifecycle import coerce_lifecycle
from ..telemetry.registry import coerce_registry

__all__ = ["LightNode", "LightNodeStats"]


@dataclass
class LightNodeStats:
    """What a device experiences, for the evaluation harness."""

    readings_taken: int = 0
    submissions_sent: int = 0
    submissions_accepted: int = 0
    submissions_rejected: int = 0
    tips_refused: int = 0
    pow_seconds_total: float = 0.0
    pow_solves: int = 0
    aes_seconds_total: float = 0.0
    submit_latencies: List[float] = field(default_factory=list)
    pow_times: List[float] = field(default_factory=list)
    assigned_difficulties: List[int] = field(default_factory=list)

    @property
    def mean_pow_seconds(self) -> float:
        if not self.pow_times:
            return 0.0
        return sum(self.pow_times) / len(self.pow_times)

    @property
    def mean_submit_latency(self) -> float:
        if not self.submit_latencies:
            return 0.0
        return sum(self.submit_latencies) / len(self.submit_latencies)


class LightNode(NetworkNode):
    """An IoT device submitting sensor readings through a gateway.

    Args:
        address: network address.
        keypair: the device account (PK, SK).
        gateway: address of the full node this device talks to.
        manager: the manager's public identity (trust anchor for key
            distribution).
        sensor: the attached sensor model.
        profile: hardware class (defaults to the paper's Raspberry Pi 3B).
        report_interval: seconds between reading submissions.
        rng: seeded randomness for the PoW engine.
        protect_group: data group used when the sensor is sensitive.
        request_timeout: seconds to wait for a gateway reply before
            abandoning the in-flight request and retrying on the next
            report interval (covers gateway crashes and lost packets).
        batch_size: readings carried per transaction.  1 (default) posts
            each reading individually (the paper's behaviour); larger
            values amortise PoW/signature/approval cost across readings
            at the price of data latency (Ext-7 sweeps this).
        pow_pool: optional :class:`~repro.crypto.accel.CryptoPool`
            handed to this device's :class:`~repro.pow.engine.
            PowEngine`; real nonce grinding fans out across its worker
            processes with identical results (deployment-level opt-in
            via ``BIoTConfig.pow_workers``).
        telemetry: a :class:`~repro.telemetry.MetricsRegistry` shared
            across the deployment (PoW engine metrics, key-install
            counts).  ``None`` keeps the zero-overhead null registry.
        lifecycle: a :class:`~repro.telemetry.lifecycle.LifecycleTracker`
            shared across the deployment; submit rounds it samples get
            a causal trace root and per-stage timeline.  ``None`` keeps
            the zero-overhead null tracker.
    """

    def __init__(self, address: str, keypair: KeyPair, *, gateway: str,
                 manager: PublicIdentity, sensor: Sensor,
                 profile: DeviceProfile = RASPBERRY_PI_3B,
                 report_interval: float = 3.0,
                 rng: Optional[random.Random] = None,
                 protect_group: str = "sensitive",
                 request_timeout: float = 10.0,
                 batch_size: int = 1,
                 pow_pool=None,
                 telemetry=None, lifecycle=None):
        super().__init__(address)
        if report_interval <= 0:
            raise ValueError("report_interval must be positive")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.request_timeout = request_timeout
        self.batch_size = batch_size
        self._batch_buffer: List = []
        self.timeouts = 0
        self.keypair = keypair
        self.gateway = gateway
        self.sensor = sensor
        self.profile = profile
        self.report_interval = report_interval
        self.protect_group = protect_group
        self.rng = rng if rng is not None else random.Random()
        self.key_agent = DeviceKeyAgent(keypair, manager)
        self.protector = DataProtector()
        self.stats = LightNodeStats()
        self.telemetry = coerce_registry(telemetry)
        self.lifecycle = coerce_lifecycle(lifecycle)
        self._m_keys_installed = self.telemetry.counter(
            "repro_keydist_keys_installed_total",
            "Group keys installed on devices (M3 verified)")
        self.engine: Optional[PowEngine] = None
        self._pow_pool = pow_pool
        self._running = False
        self._request_counter = 0
        self._pending: Dict[int, Dict] = {}
        # sessions whose M3 we already installed and acked; a
        # retransmitted M3 is re-acked without touching the key agent
        self._keydist_acked: set = set()

    # -- lifecycle ---------------------------------------------------------

    def bind(self, network) -> None:
        super().bind(network)
        self.engine = PowEngine(
            self.profile, network.scheduler.clock,
            rng=self.rng, advance_clock=False,
            pool=self._pow_pool,
            telemetry=self.telemetry,
        )

    def start(self, *, initial_delay: float = 0.0) -> None:
        """Begin the periodic reporting loop."""
        if self.network is None:
            raise RuntimeError("attach the node to a network before starting")
        self._running = True
        self._scheduler.schedule(initial_delay, self._tick)

    def stop(self) -> None:
        self._running = False

    @property
    def _scheduler(self):
        return self.network.scheduler

    def _now(self) -> float:
        return self._scheduler.clock.now()

    # -- reporting loop ----------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        reading = self.sensor.read(self._now())
        self.stats.readings_taken += 1
        if self.batch_size > 1:
            self._batch_buffer.append(reading)
            if len(self._batch_buffer) < self.batch_size:
                self._schedule_next_tick()
                return
            batch = ReadingBatch(readings=tuple(self._batch_buffer))
            self._batch_buffer = []
            sensitive = batch.sensitive
            try:
                payload = self.protector.protect_batch(
                    batch, group=self.protect_group)
            except KeyError:
                # No key yet: never post sensitive data in clear.
                self._schedule_next_tick()
                return
        else:
            sensitive = reading.sensitive
            try:
                payload = self.protector.protect(reading,
                                                 group=self.protect_group)
            except KeyError:
                # Sensitive stream without a key yet: skip this reading
                # and retry next interval.
                self._schedule_next_tick()
                return
        aes_cost = self.profile.aes_seconds(len(payload)) if sensitive else 0.0
        self.stats.aes_seconds_total += aes_cost
        # AES compute happens before the tips request leaves the device.
        self._scheduler.schedule(aes_cost, lambda: self._request_tips(payload))

    def _request_tips(self, payload: bytes) -> None:
        request_id = self._next_request_id()
        self._pending[request_id] = {
            "payload": payload,
            "tick_started": self._now(),
            # None for unsampled rounds; the tracker's handle otherwise.
            "trace": self.lifecycle.begin_submission(self.address),
        }
        sent = self.send(self.gateway, "get_tips_request", {
            "request_id": request_id,
            "node_id": self.keypair.node_id,
        })
        if not sent:
            # Gateway unreachable (crash/DDoS experiments): retry later.
            self._pending.pop(request_id, None)
            self._schedule_next_tick()
        else:
            self._arm_timeout(request_id)

    def handle_message(self, message: Message) -> None:
        handler = {
            "get_tips_response": self._handle_tips_response,
            "submit_response": self._handle_submit_response,
            "keydist_m1": self._handle_keydist_m1,
            "keydist_m3": self._handle_keydist_m3,
        }.get(message.kind)
        if handler is None:
            return
        try:
            handler(message)
        except (ValueError, KeyError, TypeError):
            # A forged or corrupt message must not wedge the device:
            # drop it and let the reporting loop's timeout recover.
            pass

    def _handle_tips_response(self, message: Message) -> None:
        body = message.body
        context = self._pending.pop(body.get("request_id"), None)
        if context is None:
            return
        if not body.get("ok"):
            self.stats.tips_refused += 1
            self._schedule_next_tick()
            return
        try:
            self._build_and_submit(
                context,
                branch=body["branch"],
                trunk=body["trunk"],
                difficulty=body["difficulty"],
            )
        except (ValueError, KeyError, TypeError):
            # A malformed (or forged) response consumed our pending
            # context; resume the loop rather than wedging until the
            # next timeout.
            self._schedule_next_tick()

    def _build_and_submit(self, context: Dict, *, branch: bytes,
                          trunk: bytes, difficulty: int) -> None:
        """Grind PoW (as scheduled compute) then sign and submit."""
        self.lifecycle.record_handle(context.get("trace"), "tips_received",
                                     self.address)
        draft = Transaction(
            kind=TransactionKind.DATA,
            issuer=self.keypair.public,
            payload=context["payload"],
            timestamp=self._now(),
            branch=branch,
            trunk=trunk,
            difficulty=difficulty,
            nonce=0,
            signature=b"",
        )
        result = self.engine.solve(draft.pow_challenge, difficulty)
        self.stats.pow_seconds_total += result.elapsed_seconds
        self.stats.pow_solves += 1
        self.stats.pow_times.append(result.elapsed_seconds)
        self.stats.assigned_difficulties.append(difficulty)
        compute_delay = result.elapsed_seconds + self.profile.signature_seconds

        def finish_submission():
            tx = Transaction.create(
                self.keypair,
                kind=draft.kind,
                payload=draft.payload,
                timestamp=draft.timestamp,
                branch=draft.branch,
                trunk=draft.trunk,
                difficulty=draft.difficulty,
                nonce=result.proof.nonce,
            )
            handle = context.get("trace")
            # Bind now (after the modelled compute delay): this is the
            # sim-time at which the PoW is actually solved.
            self.lifecycle.bind(handle, tx.tx_hash,
                                difficulty=draft.difficulty,
                                pow_seconds=result.elapsed_seconds)
            request_id = self._next_request_id()
            self._pending[request_id] = context
            encoded = tx.to_bytes()
            self.stats.submissions_sent += 1
            # Send under the trace root so the submit hop (and every
            # relay after it) chains onto this transaction's trace.
            root_context = handle.context if handle is not None else None
            with self.lifecycle.tracer.activate(root_context):
                sent = self.send(self.gateway, "submit_transaction", {
                    "request_id": request_id,
                    "transaction": encoded,
                }, size_bytes=len(encoded))
            if not sent:
                self._pending.pop(request_id, None)
                self._schedule_next_tick()
            else:
                self._arm_timeout(request_id)

        self._scheduler.schedule(compute_delay, finish_submission)

    def _handle_submit_response(self, message: Message) -> None:
        body = message.body
        context = self._pending.pop(body.get("request_id"), None)
        if context is None:
            return
        if body.get("ok"):
            self.stats.submissions_accepted += 1
            self.stats.submit_latencies.append(
                self._now() - context["tick_started"]
            )
        else:
            self.stats.submissions_rejected += 1
        self._schedule_next_tick()

    def _arm_timeout(self, request_id: int) -> None:
        """Abandon the request if no reply lands in time; the reporting
        loop resumes at the next interval instead of wedging forever."""

        def expire():
            if self._pending.pop(request_id, None) is not None:
                self.timeouts += 1
                self._schedule_next_tick()

        self._scheduler.schedule(self.request_timeout, expire)

    def _schedule_next_tick(self) -> None:
        if self._running:
            self._scheduler.schedule(self.report_interval, self._tick)

    def _next_request_id(self) -> int:
        self._request_counter += 1
        return self._request_counter

    # -- key distribution --------------------------------------------------

    def _handle_keydist_m1(self, message: Message) -> None:
        try:
            m2 = self.key_agent.handle_m1(message.body["m1"], now=self._now())
        except KeyDistributionError:
            return  # forged or replayed M1: ignore
        self.send(message.sender, "keydist_m2", {
            "m2": m2,
            "session_id": message.body.get("session_id"),
        }, size_bytes=len(m2))

    def _handle_keydist_m3(self, message: Message) -> None:
        session_id = message.body.get("session_id")
        if session_id is not None and session_id in self._keydist_acked:
            # Retransmitted M3 (our ack was lost): just re-ack.
            self._send_keydist_ack(message.sender, session_id)
            return
        try:
            group = self.key_agent.handle_m3(message.body["m3"], now=self._now())
        except KeyDistributionError:
            return
        self.protector.install_key(group, self.key_agent.key_for(group))
        self._m_keys_installed.inc()
        if session_id is not None:
            self._keydist_acked.add(session_id)
            self._send_keydist_ack(message.sender, session_id)

    def _send_keydist_ack(self, manager_address: str,
                          session_id: bytes) -> None:
        self.send(manager_address, "keydist_ack", {"session_id": session_id},
                  size_bytes=len(session_id))
