"""The manager — Section IV-A.3.

"Manager is a specific full node, which is responsible for managing IoT
devices in a smart factory.  The public key of the manager will be
hard-coded into genesis config of blockchain, which means only the
manager has the rights to publish or update the authorization list of
devices."

:class:`ManagerNode` extends :class:`~repro.nodes.full_node.FullNode`
with the three manager duties of the Fig. 6 workflow:

1. create the genesis configuration (trust anchor);
2. authorise/deauthorise devices and register gateways by posting ACL
   transactions (Eqn. 1);
3. drive the Fig. 4 key-distribution handshakes with devices that
   collect sensitive data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..core.acl import AclAction, AuthorizationList, GenesisConfig, Role
from ..core.authority import KeyDistributionError, ManagerKeyDistributor
from ..crypto.keys import KeyPair, PublicIdentity
from ..network.transport import Message
from ..pow.engine import PowEngine
from ..tangle.transaction import Transaction, TransactionKind
from ..telemetry.registry import SECONDS_BUCKETS
from .full_node import FullNode

__all__ = ["ManagerNode"]


class ManagerNode(FullNode):
    """The trusted management full node.

    Besides everything a gateway does, the manager issues ACL updates
    and distributes symmetric group keys.  Construct the shared genesis
    with :meth:`create_genesis`, then instantiate every full node
    (including the manager itself) from it.
    """

    def __init__(self, address: str, keypair: KeyPair, genesis: Transaction,
                 **kwargs):
        super().__init__(address, genesis, **kwargs)
        config = GenesisConfig.from_genesis(genesis)
        manager_ids = {identity.node_id for identity in config.all_managers}
        if keypair.node_id not in manager_ids:
            raise ValueError(
                "manager keypair does not match the genesis trust anchor"
            )
        self.keypair = keypair
        self.distributor = ManagerKeyDistributor(keypair)
        self._keydist_sessions: Dict[bytes, str] = {}  # session id -> device addr
        self._keydist_started: Dict[bytes, float] = {}  # session id -> start time
        # session id -> retry context for the M1/M2 half of the handshake
        self._keydist_meta: Dict[bytes, Dict] = {}
        # device node_id -> in-flight session id (dedups distribute_key)
        self._keydist_active: Dict[bytes, bytes] = {}
        # session id -> retransmit context for the M3/ack half
        self._keydist_m3: Dict[bytes, Dict] = {}
        self.keydist_retries = 0
        self.keydist_exhausted = 0
        self.engine: Optional[PowEngine] = None
        self._m_keydist_initiated = self.telemetry.counter(
            "repro_keydist_initiated_total",
            "Key-distribution handshakes initiated (M1 sent)")
        self._m_keydist_completed = self.telemetry.counter(
            "repro_keydist_completed_total",
            "Key-distribution handshakes completed (M2 verified, M3 sent)")
        self._m_keydist_roundtrip = self.telemetry.histogram(
            "repro_keydist_roundtrip_seconds",
            "Manager-observed handshake round-trip (initiate to M2 verified)",
            buckets=SECONDS_BUCKETS)

    # -- genesis -----------------------------------------------------------

    @staticmethod
    def create_genesis(keypair: KeyPair, *, network_name: str = "b-iot",
                       token_allocations: Iterable[Tuple[bytes, int]] = (),
                       extra_managers: Iterable[PublicIdentity] = (),
                       timestamp: float = 0.0) -> Transaction:
        """Create the genesis transaction embedding the manager public
        key(s) and optional initial token balances.

        *extra_managers* federates several factories' managers onto one
        ledger (Section IV-A permits "one or more managers").
        """
        config = GenesisConfig(
            manager=keypair.public,
            network_name=network_name,
            token_allocations=tuple(token_allocations),
            extra_managers=tuple(extra_managers),
        )
        return Transaction.create_genesis(
            keypair, payload=config.to_bytes(), timestamp=timestamp
        )

    # -- lifecycle -----------------------------------------------------------

    def bind(self, network) -> None:
        super().bind(network)
        self.engine = PowEngine(
            self.profile, network.scheduler.clock,
            rng=self.rng, advance_clock=False,
            pool=self._crypto_pool,
            telemetry=self.telemetry,
        )

    def _issue_transaction(self, kind: str, payload: bytes) -> Transaction:
        """Create, seal and locally ingest a manager transaction.

        The manager follows the same tangle rules as everyone: select
        two tips, solve PoW at its credit-assigned difficulty, sign.
        """
        branch, trunk = self.tip_selector.select(self.tangle, self.rng)
        now = self._now()
        difficulty = self.consensus.required_difficulty(self.keypair.node_id, now)
        draft = Transaction(
            kind=kind,
            issuer=self.keypair.public,
            payload=payload,
            timestamp=now,
            branch=branch,
            trunk=trunk,
            difficulty=difficulty,
            nonce=0,
            signature=b"",
        )
        if self.engine is not None:
            result = self.engine.solve(draft.pow_challenge, difficulty)
            nonce = result.proof.nonce
        else:
            nonce = None
        tx = Transaction.create(
            self.keypair,
            kind=kind,
            payload=payload,
            timestamp=now,
            branch=branch,
            trunk=trunk,
            difficulty=difficulty,
            nonce=nonce,
        )
        self.ingest_local(tx)
        return tx

    # -- device management (workflow steps 1-2) -------------------------------

    def register_gateways(self, identities: Iterable[PublicIdentity]) -> Transaction:
        """Record gateway identifiers on the ledger (workflow step 1)."""
        payload = AuthorizationList.make_update(
            identities, action=AclAction.AUTHORIZE, role=Role.GATEWAY
        )
        return self._issue_transaction(TransactionKind.ACL, payload.to_bytes())

    def authorize_devices(self, identities: Iterable[PublicIdentity]) -> Transaction:
        """Publish an authorisation-list update (Eqn. 1, workflow step 2)."""
        payload = AuthorizationList.make_update(
            identities, action=AclAction.AUTHORIZE, role=Role.DEVICE
        )
        return self._issue_transaction(TransactionKind.ACL, payload.to_bytes())

    def deauthorize_devices(self, identities: Iterable[PublicIdentity]) -> Transaction:
        """Revoke devices; gateways stop serving them at once."""
        payload = AuthorizationList.make_update(
            identities, action=AclAction.DEAUTHORIZE, role=Role.DEVICE
        )
        return self._issue_transaction(TransactionKind.ACL, payload.to_bytes())

    # -- key distribution (workflow step 3) ------------------------------------

    def distribute_key(self, device_address: str, device: PublicIdentity, *,
                       group: str = "sensitive") -> None:
        """Start the Fig. 4 handshake with one device.

        The handshake is retried end-to-end on the node's
        :class:`~repro.faults.backoff.BackoffPolicy`: if M1 or M2 is
        lost, a *fresh* session is initiated per attempt (a replayed M1
        would trip the device's nonce_a replay defence), and after M2
        verifies, M3 is retransmitted until the device acknowledges it.
        A handshake already in flight for the device is not duplicated.
        """
        if device.node_id in self._keydist_active:
            return
        self._m_keydist_initiated.inc()
        self._start_keydist_attempt(device_address, device, group,
                                    attempt=1, started=self._now())

    def _start_keydist_attempt(self, device_address: str,
                               device: PublicIdentity, group: str, *,
                               attempt: int, started: float) -> None:
        session_id, m1 = self.distributor.initiate(
            device, now=self._now(), group=group
        )
        self._keydist_sessions[session_id] = device_address
        self._keydist_started[session_id] = started
        self._keydist_meta[session_id] = {
            "device": device, "address": device_address,
            "group": group, "attempt": attempt, "started": started,
        }
        self._keydist_active[device.node_id] = session_id
        self.send(device_address, "keydist_m1", {
            "session_id": session_id,
            "m1": m1,
        }, size_bytes=len(m1))
        timeout = self.retry_policy.delay(attempt, self.rng)
        self._m_retry_backoff.observe(timeout)
        self.network.scheduler.schedule(
            timeout, lambda: self._keydist_m1_expired(session_id))

    def _keydist_m1_expired(self, session_id: bytes) -> None:
        """No M2 verified within the attempt's window: abandon the
        session (late M2s for it are dropped — retransmit dedup) and
        either start a fresh attempt or give up."""
        meta = self._keydist_meta.get(session_id)
        if meta is None or self.distributor.is_completed(session_id):
            return  # handshake advanced to the M3 stage (or finished)
        self._keydist_meta.pop(session_id, None)
        self._keydist_sessions.pop(session_id, None)
        self._keydist_started.pop(session_id, None)
        attempt = meta["attempt"]
        if self.retry_policy.exhausted(attempt):
            self._keydist_active.pop(meta["device"].node_id, None)
            self.keydist_exhausted += 1
            self._m_retry_exhausted.inc(protocol="keydist_m1")
            return
        self.keydist_retries += 1
        self._m_retry_attempts.inc(protocol="keydist_m1")
        self._start_keydist_attempt(
            meta["address"], meta["device"], meta["group"],
            attempt=attempt + 1, started=meta["started"])

    def handle_message(self, message: Message) -> None:
        if message.kind == "keydist_m2":
            try:
                self._handle_keydist_m2(message)
            except (ValueError, KeyError, TypeError):
                self.stats.malformed_messages += 1
            return
        if message.kind == "keydist_ack":
            try:
                self._handle_keydist_ack(message)
            except (ValueError, KeyError, TypeError):
                self.stats.malformed_messages += 1
            return
        super().handle_message(message)

    def _handle_keydist_m2(self, message: Message) -> None:
        session_id = message.body.get("session_id")
        device_address = self._keydist_sessions.get(session_id)
        if device_address is None or device_address != message.sender:
            return
        try:
            m3 = self.distributor.handle_m2(
                session_id, message.body["m2"], now=self._now()
            )
        except KeyDistributionError:
            return  # forged/stale response: abandon the session
        started = self._keydist_started.pop(session_id, None)
        if started is not None:
            self._m_keydist_completed.inc()
            self._m_keydist_roundtrip.observe(self._now() - started)
        meta = self._keydist_meta.pop(session_id, None)
        self._keydist_m3[session_id] = {
            "address": device_address,
            "m3": m3,
            "attempt": 1,
            "m1_attempts": meta["attempt"] if meta else 1,
            "node_id": meta["device"].node_id if meta else None,
        }
        self.send(device_address, "keydist_m3", {
            "m3": m3,
            "session_id": session_id,
        }, size_bytes=len(m3))
        self._arm_keydist_m3(session_id)

    def _arm_keydist_m3(self, session_id: bytes) -> None:
        """Retransmit M3 until the device acknowledges installation."""
        entry = self._keydist_m3.get(session_id)
        if entry is None:
            return
        attempt = entry["attempt"]
        timeout = self.retry_policy.delay(attempt, self.rng)
        self._m_retry_backoff.observe(timeout)

        def expire() -> None:
            current = self._keydist_m3.get(session_id)
            if current is None or current["attempt"] != attempt:
                return  # acked, or a later retransmit owns the timer
            if self.retry_policy.exhausted(attempt):
                self._keydist_m3.pop(session_id, None)
                if current["node_id"] is not None:
                    self._keydist_active.pop(current["node_id"], None)
                self.keydist_exhausted += 1
                self._m_retry_exhausted.inc(protocol="keydist_m3")
                return
            current["attempt"] = attempt + 1
            self.keydist_retries += 1
            self._m_retry_attempts.inc(protocol="keydist_m3")
            self.send(current["address"], "keydist_m3", {
                "m3": current["m3"],
                "session_id": session_id,
            }, size_bytes=len(current["m3"]))
            self._arm_keydist_m3(session_id)

        self.network.scheduler.schedule(timeout, expire)

    def _handle_keydist_ack(self, message: Message) -> None:
        session_id = message.body.get("session_id")
        entry = self._keydist_m3.pop(session_id, None)
        if entry is None:
            return  # duplicate ack (or ack for an abandoned session)
        if entry["address"] != message.sender:
            self._keydist_m3[session_id] = entry  # forged ack: keep waiting
            return
        if entry["node_id"] is not None:
            self._keydist_active.pop(entry["node_id"], None)
        if entry["attempt"] > 1 or entry["m1_attempts"] > 1:
            self._m_retry_recoveries.inc(protocol="keydist")

    def key_distribution_complete(self, device_count: int) -> bool:
        """Whether at least *device_count* handshakes have completed."""
        return self.distributor.completed_distributions >= device_count
