"""Smart-factory sensor models.

The case study (Section IV-A) deploys wireless sensors in a smart
factory; sensors are the light nodes that submit readings as tangle
transactions.  Readings are deterministic functions of a seed so every
experiment is reproducible.

Each sensor produces :class:`SensorReading` values; ``to_bytes`` gives
the canonical payload posted to the ledger (optionally AES-encrypted by
the data-authority layer for sensitive streams).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass

__all__ = [
    "SensorReading",
    "ReadingBatch",
    "Sensor",
    "TemperatureSensor",
    "VibrationSensor",
    "HumiditySensor",
    "PowerMeterSensor",
    "MachineStatusSensor",
    "SENSOR_TYPES",
    "make_sensor",
]


@dataclass(frozen=True)
class SensorReading:
    """One sample from a factory sensor."""

    sensor_type: str
    value: float
    unit: str
    timestamp: float
    sensitive: bool = False

    def to_bytes(self) -> bytes:
        """Canonical JSON payload (stable key order)."""
        return json.dumps(
            {
                "sensor_type": self.sensor_type,
                "value": self.value,
                "unit": self.unit,
                "timestamp": self.timestamp,
                "sensitive": self.sensitive,
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SensorReading":
        try:
            fields = json.loads(data.decode())
            return cls(
                sensor_type=fields["sensor_type"],
                value=float(fields["value"]),
                unit=fields["unit"],
                timestamp=float(fields["timestamp"]),
                sensitive=bool(fields["sensitive"]),
            )
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise ValueError(f"malformed sensor reading payload: {exc}") from exc


@dataclass(frozen=True)
class ReadingBatch:
    """Several readings carried by one ledger transaction.

    Batching amortises the per-transaction costs (PoW, signatures,
    approvals) across readings — the throughput/latency trade-off the
    Ext-7 bench sweeps.
    """

    readings: tuple

    def __post_init__(self):
        if not self.readings:
            raise ValueError("a batch needs at least one reading")

    @property
    def sensitive(self) -> bool:
        """A batch is sensitive if any member is."""
        return any(reading.sensitive for reading in self.readings)

    def to_bytes(self) -> bytes:
        return json.dumps(
            [json.loads(r.to_bytes().decode()) for r in self.readings],
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadingBatch":
        try:
            entries = json.loads(data.decode())
            readings = tuple(
                SensorReading.from_bytes(json.dumps(e, sort_keys=True).encode())
                for e in entries
            )
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            raise ValueError(f"malformed reading batch: {exc}") from exc
        return cls(readings=readings)

    def __len__(self) -> int:
        return len(self.readings)


class Sensor:
    """Base class: a seeded generator of :class:`SensorReading` values.

    Subclasses implement :meth:`_sample` and declare ``sensor_type``,
    ``unit`` and whether their stream is ``sensitive`` (which drives the
    data-authority layer's decision to encrypt).
    """

    sensor_type = "generic"
    unit = ""
    sensitive = False

    def __init__(self, seed: int = 0):
        self._rng = random.Random(f"{self.sensor_type}:{seed}")
        self._sample_index = 0

    def read(self, timestamp: float) -> SensorReading:
        """Produce the next reading stamped with *timestamp*."""
        value = self._sample(self._sample_index)
        self._sample_index += 1
        return SensorReading(
            sensor_type=self.sensor_type,
            value=value,
            unit=self.unit,
            timestamp=timestamp,
            sensitive=self.sensitive,
        )

    def _sample(self, index: int) -> float:
        raise NotImplementedError


class TemperatureSensor(Sensor):
    """Ambient temperature: slow sinusoidal drift plus Gaussian noise."""

    sensor_type = "temperature"
    unit = "celsius"
    sensitive = False

    def __init__(self, seed: int = 0, base: float = 24.0, swing: float = 3.0):
        super().__init__(seed)
        self._base = base
        self._swing = swing

    def _sample(self, index: int) -> float:
        drift = self._swing * math.sin(index / 50.0)
        return self._base + drift + self._rng.gauss(0.0, 0.2)


class VibrationSensor(Sensor):
    """Machine-tool vibration RMS; occasionally spikes (bearing wear)."""

    sensor_type = "vibration"
    unit = "mm/s"
    sensitive = False

    def _sample(self, index: int) -> float:
        baseline = 1.5 + self._rng.gauss(0.0, 0.1)
        if self._rng.random() < 0.02:
            baseline += self._rng.uniform(3.0, 8.0)
        return max(0.0, baseline)


class HumiditySensor(Sensor):
    """Relative humidity, mean-reverting random walk clipped to [0, 100]."""

    sensor_type = "humidity"
    unit = "percent"
    sensitive = False

    def __init__(self, seed: int = 0, base: float = 45.0):
        super().__init__(seed)
        self._level = base
        self._base = base

    def _sample(self, index: int) -> float:
        self._level += 0.1 * (self._base - self._level) + self._rng.gauss(0.0, 0.5)
        self._level = min(100.0, max(0.0, self._level))
        return self._level


class PowerMeterSensor(Sensor):
    """Per-machine power draw — *sensitive*: reveals production volume.

    This is the class of data the paper's data-authority method exists
    for: competitively sensitive telemetry that still benefits from the
    tamper-proof ledger.
    """

    sensor_type = "power"
    unit = "watts"
    sensitive = True

    def _sample(self, index: int) -> float:
        # Duty cycle: machine alternates idle (~200 W) and load (~1800 W).
        on_load = (index // 20) % 2 == 1
        base = 1800.0 if on_load else 200.0
        return base + self._rng.gauss(0.0, 25.0)


class MachineStatusSensor(Sensor):
    """Operating-parameter channel — *sensitive*: process recipes.

    Carries the "machines operating parameters" that Section IV-A's
    cross-factory sharing scenario exchanges between factories.
    """

    sensor_type = "machine-status"
    unit = "code"
    sensitive = True

    def _sample(self, index: int) -> float:
        return float(self._rng.choice((0, 1, 2, 3)))


SENSOR_TYPES = {
    cls.sensor_type: cls
    for cls in (
        TemperatureSensor,
        VibrationSensor,
        HumiditySensor,
        PowerMeterSensor,
        MachineStatusSensor,
    )
}
"""Registry mapping ``sensor_type`` strings to classes."""


def make_sensor(sensor_type: str, seed: int = 0) -> Sensor:
    """Instantiate a registered sensor by type name."""
    try:
        sensor_cls = SENSOR_TYPES[sensor_type]
    except KeyError:
        raise ValueError(
            f"unknown sensor type {sensor_type!r}; known: {sorted(SENSOR_TYPES)}"
        ) from None
    return sensor_cls(seed=seed)
