"""Clock abstractions separating simulated from wall-clock time.

All timing-sensitive components (credit model, PoW accounting, network
simulator) read time through a :class:`Clock` so that experiments run in
*simulated seconds*: a PoW solve that "takes" 245 s on the modelled
Raspberry Pi advances the simulation clock without burning real CPU.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SimulatedClock", "WallClock"]


class Clock:
    """Minimal clock interface: read the current time in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class SimulatedClock(Clock):
    """A manually advanced clock for deterministic experiments.

    >>> clock = SimulatedClock()
    >>> clock.advance(2.5)
    >>> clock.now()
    2.5
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time ({seconds})")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump forward to an absolute *timestamp* (monotonicity enforced)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards ({timestamp} < {self._now})"
            )
        self._now = timestamp


class WallClock(Clock):
    """Real monotonic time, for benchmarks that measure actual compute."""

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin
