"""Device performance profiles: the Raspberry Pi substitution.

The paper evaluates everything on a Raspberry Pi 3B (Quad Core @
1.2 GHz).  We do not have that hardware, so experiments charge costs to
a :class:`DeviceProfile` — hash rate, fixed PoW call overhead, and AES
throughput — and report *simulated* seconds on a
:class:`~repro.devices.clock.SimulatedClock`.

Calibration (documented in DESIGN.md §4): the paper's own PoW anchor
points are single-run samples of a geometric random variable and are
mutually inconsistent, so the ``RASPBERRY_PI_3B`` profile is anchored on
the figure that exercises the *mechanism* (Fig. 9: 0.7 s mean PoW at the
initial difficulty 11):

    0.05 s overhead + 2^11 attempts / 3000 H/s ≈ 0.73 s.

AES throughput is anchored on Fig. 10's 256 KB → 0.373 s point
(≈ 700 KB/s).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "RASPBERRY_PI_3B", "PC", "MALICIOUS_RIG", "PROFILES"]


@dataclass(frozen=True)
class DeviceProfile:
    """Performance model of one hardware class.

    Attributes:
        name: human-readable profile name.
        hash_rate: PoW hash attempts per second.
        pow_overhead_s: fixed per-PoW-call cost (serialisation, RPC).
        aes_bytes_per_second: AES encryption throughput.
        signature_seconds: cost of one Ed25519 sign/verify.
        is_full_node_capable: whether the device can store the ledger.
        active_watts: power draw while computing (PoW, AES, signing).
        radio_joules_per_byte: transmit energy per payload byte
            (802.15.4-class radios land around 1–2 µJ/byte).
    """

    name: str
    hash_rate: float
    pow_overhead_s: float
    aes_bytes_per_second: float
    signature_seconds: float
    is_full_node_capable: bool
    active_watts: float = 3.5
    radio_joules_per_byte: float = 1.5e-6

    def __post_init__(self):
        if self.hash_rate <= 0:
            raise ValueError("hash_rate must be positive")
        if self.pow_overhead_s < 0:
            raise ValueError("pow_overhead_s must be non-negative")
        if self.aes_bytes_per_second <= 0:
            raise ValueError("aes_bytes_per_second must be positive")
        if self.signature_seconds < 0:
            raise ValueError("signature_seconds must be non-negative")
        if self.active_watts <= 0:
            raise ValueError("active_watts must be positive")
        if self.radio_joules_per_byte < 0:
            raise ValueError("radio_joules_per_byte must be non-negative")

    def pow_seconds(self, attempts: int) -> float:
        """Simulated time to perform *attempts* hash attempts."""
        if attempts < 0:
            raise ValueError("attempts must be non-negative")
        return self.pow_overhead_s + attempts / self.hash_rate

    def expected_pow_seconds(self, difficulty: int) -> float:
        """Expected PoW time at *difficulty* leading zero bits (2^D tries)."""
        if difficulty < 0:
            raise ValueError("difficulty must be non-negative")
        return self.pow_seconds(2 ** difficulty)

    def aes_seconds(self, message_length: int) -> float:
        """Simulated time to AES-encrypt *message_length* bytes."""
        if message_length < 0:
            raise ValueError("message_length must be non-negative")
        return message_length / self.aes_bytes_per_second

    # -- energy model ------------------------------------------------------

    def compute_energy_joules(self, compute_seconds: float) -> float:
        """Energy for *compute_seconds* of active computation."""
        if compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        return compute_seconds * self.active_watts

    def pow_energy_joules(self, attempts: int) -> float:
        """Energy burned grinding *attempts* hash attempts."""
        return self.compute_energy_joules(self.pow_seconds(attempts))

    def radio_energy_joules(self, payload_bytes: int) -> float:
        """Energy to transmit *payload_bytes* over the device radio."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return payload_bytes * self.radio_joules_per_byte


RASPBERRY_PI_3B = DeviceProfile(
    name="raspberry-pi-3b",
    hash_rate=3_000.0,
    pow_overhead_s=0.05,
    aes_bytes_per_second=700_000.0,
    signature_seconds=0.004,
    is_full_node_capable=False,
    active_watts=3.7,          # RPi 3B under full CPU load
    radio_joules_per_byte=1.5e-6,
)
"""The paper's evaluation device (light node)."""

PC = DeviceProfile(
    name="pc",
    hash_rate=300_000.0,
    pow_overhead_s=0.002,
    aes_bytes_per_second=80_000_000.0,
    signature_seconds=0.0002,
    is_full_node_capable=True,
    active_watts=65.0,
    radio_joules_per_byte=0.0,  # wired backbone
)
"""The paper's gateway/manager machine (full node)."""

MALICIOUS_RIG = DeviceProfile(
    name="malicious-rig",
    hash_rate=6_000.0,
    pow_overhead_s=0.05,
    aes_bytes_per_second=700_000.0,
    signature_seconds=0.004,
    is_full_node_capable=False,
    active_watts=7.4,           # twice the Pi's compute, twice the draw
    radio_joules_per_byte=1.5e-6,
)
"""Attacker hardware: the threat model assumes computation capability
"close to IoT devices in the system" (Section III); we grant a 2x edge."""

PROFILES = {
    profile.name: profile for profile in (RASPBERRY_PI_3B, PC, MALICIOUS_RIG)
}
"""Registry of built-in profiles, keyed by name."""
