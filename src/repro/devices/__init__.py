"""Device layer: hardware performance profiles, clocks, sensor models.

This package is the substitution for the paper's physical testbed (a
Raspberry Pi 3B light node and a PC full node): costs are charged to a
:class:`~repro.devices.profiles.DeviceProfile` against a
:class:`~repro.devices.clock.SimulatedClock`.
"""

from .clock import Clock, SimulatedClock, WallClock
from .profiles import MALICIOUS_RIG, PC, PROFILES, RASPBERRY_PI_3B, DeviceProfile
from .sensors import (
    SENSOR_TYPES,
    HumiditySensor,
    MachineStatusSensor,
    PowerMeterSensor,
    Sensor,
    SensorReading,
    TemperatureSensor,
    VibrationSensor,
    make_sensor,
)

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "DeviceProfile",
    "RASPBERRY_PI_3B",
    "PC",
    "MALICIOUS_RIG",
    "PROFILES",
    "Sensor",
    "SensorReading",
    "TemperatureSensor",
    "VibrationSensor",
    "HumiditySensor",
    "PowerMeterSensor",
    "MachineStatusSensor",
    "SENSOR_TYPES",
    "make_sensor",
]
