"""Crash/restart differential harness for the storage layer.

The proof obligation of ISSUE 6: a node killed and restored from its
durable store must be *byte-identical* — tangle, ledger, ACL and
credit hashes — to a reference node that never crashed.  This module
runs one seeded workload against both nodes side by side, cold-restores
the durable node at randomized kill points, and compares content hashes
at every kill and at the end of the run; a final "cold" node rebuilt
from a reopened store on a brand-new process boundary closes the loop.

Everything in the returned result dict is a pure function of
``(seed, backend, steps, kills, checkpoints)`` — no paths, no wall
clock — so CI can run the harness twice and byte-diff the JSON, the
same determinism gate the chaos reports already pass.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.acl import AclAction, AuthorizationList
from ..core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
from ..core.credit import CreditParameters, CreditRegistry
from ..crypto.keys import KeyPair
from ..faults.report import acl_hash, credit_hash, ledger_hash, tangle_hash
from ..network.network import Network
from ..network.simulator import EventScheduler
from ..tangle.ledger import TransferPayload
from ..tangle.transaction import Transaction, TransactionKind
from .persistence import NodePersistence
from .store import open_store

__all__ = ["run_differential", "node_hashes"]

TOKEN_GRANT = 500
"""Initial balance of every transacting identity in the workload."""


def node_hashes(node, *, now: float) -> Dict[str, str]:
    """The four content hashes the differential compares."""
    return {
        "tangle": tangle_hash(node.tangle),
        "ledger": ledger_hash(node.ledger),
        "acl": acl_hash(node.acl),
        "credit": credit_hash(node.consensus.registry, now=now),
    }


def _new_consensus(params: CreditParameters) -> CreditBasedConsensus:
    return CreditBasedConsensus(
        CreditRegistry(params),
        policy=InverseDifficultyPolicy(initial_difficulty=1),
        max_parent_age=params.delta_t,
    )


def run_differential(*, seed: int, storage_dir: str,
                     backend: str = "file", steps: int = 60,
                     kills: int = 3, checkpoints: int = 3) -> Dict:
    """Run the crash/restart differential; returns a deterministic dict.

    ``matched`` is True iff every kill-point restore and the final
    three-way comparison (reference, restarted, cold-rebuilt) agree on
    all four state hashes.
    """
    if steps < 20:
        raise ValueError("differential workload needs at least 20 steps")
    if kills < 1:
        raise ValueError("at least one kill point is required")
    if kills + checkpoints >= steps - 5:
        raise ValueError("too many kill/checkpoint points for the workload")

    # Imported lazily: repro.nodes pulls in the full node stack.
    from ..nodes.full_node import FullNode
    from ..nodes.manager import ManagerNode

    rng = random.Random(f"storage-diff:{seed}")
    params = CreditParameters()

    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(rng.randrange(2 ** 63)))

    manager_keys = KeyPair.generate(seed=f"storage-diff:{seed}:manager".encode())
    devices = [KeyPair.generate(seed=f"storage-diff:{seed}:device:{i}".encode())
               for i in range(3)]
    guests = [KeyPair.generate(seed=f"storage-diff:{seed}:guest:{i}".encode())
              for i in range(2)]
    genesis = ManagerNode.create_genesis(
        manager_keys,
        network_name=f"storage-diff-{seed}",
        token_allocations=[(manager_keys.node_id, TOKEN_GRANT)]
        + [(keys.node_id, TOKEN_GRANT) for keys in devices],
    )

    reference = FullNode("reference", genesis,
                         consensus=_new_consensus(params),
                         rng=random.Random(0), enforce_pow=True)
    durable = FullNode("durable", genesis,
                       consensus=_new_consensus(params),
                       rng=random.Random(1), enforce_pow=True)
    network.attach(reference)
    network.attach(durable)
    # No peering: the two replicas see the workload only through
    # ``ingest_local``, so gossip cannot paper over a bad restore.

    store = open_store(backend, storage_dir, node="durable")
    persistence = NodePersistence(store)
    durable.attach_persistence(persistence)

    clock = scheduler.clock

    def issue(keys: KeyPair, *, kind: str, payload: bytes,
              branch: bytes, trunk: bytes) -> Tuple[bool, bool]:
        now = clock.now()
        difficulty = reference.consensus.required_difficulty(
            keys.node_id, now)
        tx = Transaction.create(
            keys, kind=kind, payload=payload, timestamp=now,
            branch=branch, trunk=trunk, difficulty=difficulty)
        return reference.ingest_local(tx), durable.ingest_local(tx)

    def pick_parents() -> Tuple[bytes, bytes]:
        tips = reference.tangle.tips()
        return rng.choice(tips), rng.choice(tips)

    def acl_update(identities, *, action: str) -> Tuple[bool, bool]:
        branch, trunk = pick_parents()
        payload = AuthorizationList.make_update(identities, action=action)
        return issue(manager_keys, kind=TransactionKind.ACL,
                     payload=payload.to_bytes(), branch=branch, trunk=trunk)

    # -- bootstrap: authorize every identity the workload uses -------------
    scheduler.run_until(1.0)
    ok_ref, ok_dur = acl_update(
        [keys.public for keys in devices + guests],
        action=AclAction.AUTHORIZE)
    divergences: List[Dict] = []
    if ok_ref is not ok_dur or not ok_ref:
        divergences.append({"step": -1, "action": "bootstrap-acl",
                            "reference": ok_ref, "durable": ok_dur})

    body = list(range(5, steps))
    kill_points = sorted(rng.sample(body, kills))
    checkpoint_points = sorted(rng.sample(
        [s for s in body if s not in kill_points], checkpoints))

    guest_authorized = {keys.node_id: True for keys in guests}
    last_transfer: Dict[bytes, Tuple[int, bytes, int]] = {}
    accounts = [manager_keys] + devices
    epoch_hashes: List[str] = []
    kill_results: List[Dict] = []

    for step in range(steps):
        scheduler.run_until(clock.now() + rng.uniform(0.2, 1.2))
        now = clock.now()
        roll = rng.random()
        action = "data"
        if roll < 0.15:
            action = "acl"
        elif roll < 0.45:
            action = "transfer"
        elif roll < 0.55 and last_transfer:
            action = "double-spend"
        elif roll < 0.65 and now > params.delta_t + 5.0:
            action = "lazy"

        if action == "acl":
            guest = rng.choice(guests)
            authorized = guest_authorized[guest.node_id]
            ok_ref, ok_dur = acl_update(
                [guest.public],
                action=AclAction.DEAUTHORIZE if authorized
                else AclAction.AUTHORIZE)
            guest_authorized[guest.node_id] = not authorized
        elif action == "transfer":
            sender = rng.choice(devices)
            recipient = rng.choice(
                [keys for keys in accounts
                 if keys.node_id != sender.node_id])
            amount = rng.randint(1, 20)
            sequence = reference.ledger.next_sequence(sender.node_id)
            payload = TransferPayload(
                sender=sender.node_id, recipient=recipient.node_id,
                amount=amount, sequence=sequence)
            branch, trunk = pick_parents()
            ok_ref, ok_dur = issue(
                sender, kind=TransactionKind.TRANSFER,
                payload=payload.to_bytes(), branch=branch, trunk=trunk)
            if ok_ref:
                last_transfer[sender.node_id] = (
                    sequence, recipient.node_id, amount)
        elif action == "double-spend":
            sender_id = rng.choice(sorted(last_transfer))
            sender = next(keys for keys in devices
                          if keys.node_id == sender_id)
            sequence, old_recipient, amount = last_transfer[sender_id]
            recipient = rng.choice(
                [keys for keys in accounts
                 if keys.node_id not in (sender_id, old_recipient)])
            payload = TransferPayload(
                sender=sender_id, recipient=recipient.node_id,
                amount=amount, sequence=sequence)
            branch, trunk = pick_parents()
            ok_ref, ok_dur = issue(
                sender, kind=TransactionKind.TRANSFER,
                payload=payload.to_bytes(), branch=branch, trunk=trunk)
        elif action == "lazy":
            device = rng.choice(devices)
            ok_ref, ok_dur = issue(
                device, kind=TransactionKind.DATA,
                payload=rng.randbytes(16),
                branch=genesis.tx_hash, trunk=genesis.tx_hash)
        else:
            device = rng.choice(devices)
            branch, trunk = pick_parents()
            ok_ref, ok_dur = issue(
                device, kind=TransactionKind.DATA,
                payload=rng.randbytes(16),
                branch=branch, trunk=trunk)

        if ok_ref is not ok_dur:
            divergences.append({"step": step, "action": action,
                                "reference": ok_ref, "durable": ok_dur})

        if step in checkpoint_points:
            epoch = persistence.checkpoint(durable, now=clock.now())
            epoch_hashes.append(epoch.snapshot_hash)
        if step in kill_points:
            now = clock.now()
            expected = node_hashes(reference, now=now)
            replayed = durable.cold_restore()
            restored = node_hashes(durable, now=now)
            kill_results.append({
                "step": step,
                "replayed": replayed,
                "matched": restored == expected,
                "hashes": restored,
            })

    # -- final three-way comparison ----------------------------------------
    now = clock.now()
    final_reference = node_hashes(reference, now=now)
    final_restarted = node_hashes(durable, now=now)
    store.close()

    reopened = open_store(backend, storage_dir, node="durable")
    restore = NodePersistence(reopened).load()
    cold = FullNode("cold", genesis, consensus=_new_consensus(params),
                    rng=random.Random(2), enforce_pow=True)
    if restore.snapshot is not None:
        cold.adopt_snapshot(restore.snapshot)
    cold_replayed = 0
    for tx, arrival_time in restore.tail:
        if cold.replay_attach(tx, arrival_time=arrival_time):
            cold_replayed += 1
    final_cold = node_hashes(cold, now=now)
    head_hash = reopened.head_hash
    record_count = len(reopened)
    reopened.close()

    matched = (not divergences
               and all(kill["matched"] for kill in kill_results)
               and final_reference == final_restarted == final_cold)
    return {
        "seed": seed,
        "backend": backend,
        "steps": steps,
        "kill_points": kill_points,
        "checkpoint_points": checkpoint_points,
        "kills": kill_results,
        "divergences": divergences,
        "final": {
            "reference": final_reference,
            "restarted": final_restarted,
            "cold": {"hashes": final_cold, "replayed": cold_replayed},
        },
        "epoch_hashes": epoch_hashes,
        "log": {"head": head_hash, "records": record_count},
        "matched": matched,
    }
