"""Hash-chained epoch snapshots of full-node state.

A checkpoint freezes the four state machines a full node owns — tangle,
token ledger, credit registry, ACL — into one canonical-JSON body and
chains it to the previous checkpoint through ``prev_hash``, exactly the
way :mod:`repro.faults.report` hashes replica state for convergence
checks.  The resulting :class:`EpochSnapshot` is self-verifying (its
hash is recomputed at load) and chain-verifying (epoch *n+1* must name
epoch *n*'s hash), so a store can prune the log below a checkpoint
without losing the ability to detect tampering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import hashlib

from .errors import StorageCorruptionError
from .store import GENESIS_PREV_HASH, canonical_json

__all__ = ["EpochSnapshot", "snapshot_state"]


def snapshot_state(snapshot) -> Dict[str, object]:
    """Flatten a :class:`~repro.nodes.snapshot.NodeSnapshot` to plain
    JSON-ready data (the tangle rides as its own JSON encoding)."""
    return {
        "tangle": snapshot.tangle.to_json(),
        "acl_state": snapshot.acl_state,
        "ledger_state": snapshot.ledger_state,
        "credit_state": snapshot.credit_state,
        "created_at": snapshot.created_at,
    }


@dataclass(frozen=True)
class EpochSnapshot:
    """One checkpoint in the epoch hash chain.

    ``prev_hash`` is the previous epoch's :attr:`snapshot_hash` (or
    :data:`~repro.storage.store.GENESIS_PREV_HASH` for epoch 0), so the
    sequence of checkpoints forms its own chain on top of the log's
    per-record chain — pruning drops log records, never chain links.
    """

    epoch: int
    created_at: float
    prev_hash: str
    state: Dict[str, object]

    def body(self) -> Dict[str, object]:
        return {"epoch": self.epoch, "created_at": self.created_at,
                "prev_hash": self.prev_hash, "state": self.state}

    @property
    def snapshot_hash(self) -> str:
        return hashlib.sha256(
            canonical_json(self.body()).encode()).hexdigest()

    def to_data(self) -> Dict[str, object]:
        data = self.body()
        data["hash"] = self.snapshot_hash
        return data

    @classmethod
    def from_data(cls, data: Dict[str, object], *,
                  context: str = "checkpoint") -> "EpochSnapshot":
        try:
            snapshot = cls(
                epoch=int(data["epoch"]),
                created_at=float(data["created_at"]),
                prev_hash=str(data["prev_hash"]),
                state=dict(data["state"]),
            )
            stored_hash = str(data["hash"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageCorruptionError(
                f"{context}: malformed epoch snapshot ({exc})") from exc
        if snapshot.snapshot_hash != stored_hash:
            raise StorageCorruptionError(
                f"{context}: epoch {snapshot.epoch} snapshot failed "
                f"verification — stored hash {stored_hash[:12]}… != "
                f"computed {snapshot.snapshot_hash[:12]}… "
                f"(corrupted snapshot)")
        if snapshot.epoch == 0 and snapshot.prev_hash != GENESIS_PREV_HASH:
            raise StorageCorruptionError(
                f"{context}: epoch 0 must anchor to "
                f"{GENESIS_PREV_HASH[:12]}…, found "
                f"{snapshot.prev_hash[:12]}…")
        return snapshot

    def node_snapshot(self):
        """Rebuild the :class:`~repro.nodes.snapshot.NodeSnapshot` this
        checkpoint froze."""
        # Imported lazily: repro.nodes pulls in the full node stack.
        from ..nodes.snapshot import NodeSnapshot
        from ..tangle.snapshot import TangleSnapshot

        return NodeSnapshot(
            tangle=TangleSnapshot.from_json(self.state["tangle"]),
            acl_state=self.state["acl_state"],
            ledger_state=self.state["ledger_state"],
            credit_state=self.state["credit_state"],
            created_at=float(self.state["created_at"]),
        )
