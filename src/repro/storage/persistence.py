"""Per-node persistence: journalling, checkpointing and restore.

:class:`NodePersistence` sits between a full node and its
:class:`~repro.storage.store.Store`.  The write path is a journal —
every attached transaction becomes a ``tx`` log record — punctuated by
``checkpoint`` records carrying hash-chained
:class:`~repro.storage.checkpoint.EpochSnapshot` state, after which the
journal below the checkpoint can be pruned.  The read path
(:meth:`NodePersistence.load`) verifies both chains and hands back a
:class:`RestorePoint`: the newest snapshot plus the journal tail to
replay on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..telemetry.registry import coerce_registry
from .checkpoint import EpochSnapshot, snapshot_state
from .errors import StorageCorruptionError, StorageError
from .store import GENESIS_PREV_HASH, Store

__all__ = ["NodePersistence", "RestorePoint"]


@dataclass
class RestorePoint:
    """Everything needed to rebuild a node from its store.

    ``snapshot`` is ``None`` when the log holds no checkpoint yet — the
    node restores by replaying the full journal from genesis.  ``tail``
    is the journal suffix newer than the snapshot, oldest first.
    """

    genesis: object
    snapshot: Optional[object] = None
    epoch: Optional[EpochSnapshot] = None
    tail: List[Tuple[object, float]] = field(default_factory=list)


class NodePersistence:
    """Journal + checkpoint manager bound to one store."""

    def __init__(self, store: Store, *, telemetry=None):
        registry = coerce_registry(telemetry)
        self._m_checkpoints = registry.counter(
            "repro_storage_checkpoints_total",
            "Hash-chained epoch snapshots written to durable stores")
        self._m_replayed = registry.counter(
            "repro_storage_replayed_records_total",
            "Journal tail records replayed during restores")
        self._m_restores = registry.counter(
            "repro_storage_restores_total",
            "Node restore-from-store operations completed")
        self.store = store
        self._epoch = 0
        self._prev_snapshot_hash = GENESIS_PREV_HASH
        self._tx_records = 0
        self._scan_existing()

    def _scan_existing(self) -> None:
        """Pick up the epoch chain state from an already-populated store
        (reopening after a crash, or a second process attaching)."""
        anchored = False
        for record in self.store.records():
            if record.kind == "checkpoint":
                epoch = EpochSnapshot.from_data(
                    record.data, context=f"store record {record.seq}")
                if anchored or epoch.epoch == 0:
                    if (epoch.epoch != self._epoch
                            or epoch.prev_hash != self._prev_snapshot_hash):
                        raise StorageCorruptionError(
                            f"store record {record.seq}: epoch chain "
                            f"break — epoch {epoch.epoch} does not "
                            f"extend epoch {self._epoch - 1}")
                anchored = True
                self._epoch = epoch.epoch + 1
                self._prev_snapshot_hash = epoch.snapshot_hash
                self._tx_records = 0
            elif record.kind == "tx":
                self._tx_records += 1

    # -- queries -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The next epoch number a checkpoint would get."""
        return self._epoch

    @property
    def transactions_logged(self) -> int:
        """Journal records written since the last checkpoint."""
        return self._tx_records

    # -- write path --------------------------------------------------------

    def initialize(self, genesis) -> None:
        """Bind the store to *genesis* (first record of a fresh log).

        Reopening an existing store instead verifies the stored genesis
        matches; a pruned log legitimately starts at a checkpoint, which
        is self-verifying, so no genesis record is required there.
        """
        records = self.store.records()
        if not records:
            self.store.append("genesis", {"tx": genesis.to_bytes().hex()})
            return
        first = records[0]
        if first.kind == "genesis" and first.data.get("tx") != \
                genesis.to_bytes().hex():
            raise StorageError(
                "store belongs to a different deployment: stored genesis "
                "does not match this node's genesis")

    def record_transaction(self, tx, arrival_time: float) -> None:
        """Journal one attached transaction."""
        self.store.append(
            "tx", {"tx": tx.to_bytes().hex(), "arrival": float(arrival_time)})
        self._tx_records += 1

    def checkpoint(self, node, *, now: float,
                   keep_recent_seconds: Optional[float] = None,
                   min_weight_to_prune: int = 5,
                   prune_log: bool = True) -> EpochSnapshot:
        """Freeze *node*'s state into the next epoch snapshot.

        By default nothing is pruned from the tangle
        (``keep_recent_seconds=None`` keeps every transaction) so a
        restore is byte-identical to the live node; pass a finite
        horizon to also drop deeply confirmed cones below the
        checkpoint.  ``prune_log`` drops journal records below the new
        checkpoint record (the snapshot subsumes them).
        """
        horizon = (float("inf") if keep_recent_seconds is None
                   else keep_recent_seconds)
        snapshot = node.export_snapshot(
            now=now, keep_recent_seconds=horizon,
            min_weight_to_prune=min_weight_to_prune)
        epoch = EpochSnapshot(
            epoch=self._epoch,
            created_at=now,
            prev_hash=self._prev_snapshot_hash,
            state=snapshot_state(snapshot),
        )
        record = self.store.append("checkpoint", epoch.to_data())
        self._epoch = epoch.epoch + 1
        self._prev_snapshot_hash = epoch.snapshot_hash
        if prune_log:
            self.store.prune_before(record.seq)
            self._tx_records = 0
        self._m_checkpoints.inc()
        return epoch

    # -- read path ---------------------------------------------------------

    def load(self) -> RestorePoint:
        """Verify the store and extract the newest restore point."""
        # Imported lazily — the storage layer stays import-light so the
        # injector and config validation can use it without cycles.
        from ..tangle.transaction import Transaction

        genesis = None
        epoch_chain: Optional[EpochSnapshot] = None
        tail: List[Tuple[object, float]] = []
        for record in self.store.records():
            context = f"store record {record.seq}"
            if record.kind == "genesis":
                try:
                    genesis = Transaction.from_bytes(
                        bytes.fromhex(str(record.data["tx"])))
                except (KeyError, TypeError, ValueError) as exc:
                    raise StorageCorruptionError(
                        f"{context}: undecodable genesis ({exc})") from exc
            elif record.kind == "checkpoint":
                epoch = EpochSnapshot.from_data(record.data, context=context)
                if epoch_chain is not None:
                    if (epoch.epoch != epoch_chain.epoch + 1
                            or epoch.prev_hash != epoch_chain.snapshot_hash):
                        raise StorageCorruptionError(
                            f"{context}: epoch chain break — epoch "
                            f"{epoch.epoch} does not extend epoch "
                            f"{epoch_chain.epoch}")
                epoch_chain = epoch
                tail = []
            elif record.kind == "tx":
                try:
                    tx = Transaction.from_bytes(
                        bytes.fromhex(str(record.data["tx"])))
                    arrival = float(record.data["arrival"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise StorageCorruptionError(
                        f"{context}: undecodable journal entry "
                        f"({exc})") from exc
                tail.append((tx, arrival))
            else:
                raise StorageError(
                    f"{context}: unknown record kind {record.kind!r}")

        snapshot = None
        if epoch_chain is not None:
            snapshot = epoch_chain.node_snapshot()
            genesis = snapshot.tangle.genesis
        if genesis is None:
            raise StorageCorruptionError(
                "store holds neither a genesis record nor a checkpoint — "
                "nothing to restore from")
        self._m_restores.inc()
        self._m_replayed.inc(len(tail))
        return RestorePoint(genesis=genesis, snapshot=snapshot,
                            epoch=epoch_chain, tail=tail)
