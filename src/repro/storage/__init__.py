"""Durable storage: append-only hash-chained logs, epoch snapshots,
and the crash/restart differential harness that proves them correct.

Layering (lowest first):

* :mod:`repro.storage.errors` — exception hierarchy, dependency-free;
* :mod:`repro.storage.store` — the :class:`Store` protocol with
  in-memory, JSONL-file and SQLite backends, all hash-chain verified;
* :mod:`repro.storage.checkpoint` — hash-chained
  :class:`EpochSnapshot` checkpoints over full-node state;
* :mod:`repro.storage.persistence` — :class:`NodePersistence`, the
  journal/checkpoint/restore manager a full node journals through;
* :mod:`repro.storage.differential` — the seeded crash/restart
  differential (also the ``repro storage`` CLI command).
"""

from .checkpoint import EpochSnapshot, snapshot_state
from .errors import StorageCorruptionError, StorageError
from .persistence import NodePersistence, RestorePoint
from .store import (
    GENESIS_PREV_HASH,
    FileStore,
    LogRecord,
    MemoryStore,
    SQLiteStore,
    Store,
    canonical_json,
    open_store,
)

__all__ = [
    "GENESIS_PREV_HASH",
    "canonical_json",
    "LogRecord",
    "Store",
    "MemoryStore",
    "FileStore",
    "SQLiteStore",
    "open_store",
    "EpochSnapshot",
    "snapshot_state",
    "NodePersistence",
    "RestorePoint",
    "StorageError",
    "StorageCorruptionError",
]
