"""Storage-layer exceptions.

Kept dependency-free so every layer (core config validation, the fault
injector, the node restore path) can raise and catch them without
import cycles.
"""

from __future__ import annotations

__all__ = ["StorageError", "StorageCorruptionError"]


class StorageError(RuntimeError):
    """A storage operation could not be carried out (misconfiguration,
    genesis mismatch, restoring a node that has no durable store)."""


class StorageCorruptionError(StorageError):
    """The on-disk log or a snapshot failed hash-chain verification.

    Raised at *load* time: a corrupted store must be refused outright,
    never partially restored — a gateway silently resurrecting from
    damaged history is exactly the failure mode the hash chain exists
    to prevent.
    """
