"""Append-only, hash-chained record stores (the ``Store`` protocol).

The paper's closing discussion names storage as the open problem for
blockchain-on-IoT, and Dorri et al. (PAPERS.md) identify restart
durability as the gap that sinks naive designs.  This module is the
durable half of the answer: every state-changing event a full node
processes is appended to a log of :class:`LogRecord` entries, each one
sha256-hashed over its canonical JSON body and linked to its
predecessor through ``prev_hash`` — the `ConvergenceReport` hashing
idiom (sorted keys, minimal separators) applied to the write path.

Three interchangeable backends:

* :class:`MemoryStore` — the default; keeps the log in a Python list.
  Zero behaviour change for existing deployments, and the unit-test
  double for the durable backends.
* :class:`FileStore` — append-only JSONL, one canonical record per
  line.  The whole chain is re-verified on open; any single-byte
  corruption (including whitespace and framing damage) is refused with
  :class:`~repro.storage.errors.StorageCorruptionError`.
* :class:`SQLiteStore` — the same records in a stdlib ``sqlite3``
  table, for deployments that want indexed access.

Reads stay in-process: every backend keeps a verified in-memory mirror
of the log, so the hot path never touches disk — writes stream out,
reads are list lookups.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..telemetry.registry import coerce_registry
from .errors import StorageCorruptionError, StorageError

__all__ = [
    "GENESIS_PREV_HASH",
    "canonical_json",
    "LogRecord",
    "Store",
    "MemoryStore",
    "FileStore",
    "SQLiteStore",
    "open_store",
]

GENESIS_PREV_HASH = "0" * 64
"""The ``prev_hash`` anchor of a log's very first record."""


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, minimal separators — the same
    canonical form :mod:`repro.faults.report` hashes replica state
    with, so log hashes and convergence hashes share one idiom."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class LogRecord:
    """One hash-chained log entry.

    ``hash`` is sha256 over the canonical JSON of the body (``seq``,
    ``kind``, ``data``, ``prev_hash``); ``prev_hash`` is the previous
    record's ``hash`` (or :data:`GENESIS_PREV_HASH` for record 0).  A
    flipped byte anywhere breaks either the record's own hash or the
    successor's link, so corruption, deletion and reordering are all
    detectable from the records alone.
    """

    seq: int
    kind: str
    data: Dict[str, object]
    prev_hash: str
    hash: str

    def body(self) -> Dict[str, object]:
        return {"seq": self.seq, "kind": self.kind, "data": self.data,
                "prev_hash": self.prev_hash}

    def to_line(self) -> str:
        """The exact canonical line a file-backed log stores."""
        framed = self.body()
        framed["hash"] = self.hash
        return canonical_json(framed)

    @classmethod
    def make(cls, *, seq: int, kind: str, data: Dict[str, object],
             prev_hash: str) -> "LogRecord":
        body = {"seq": seq, "kind": kind, "data": data,
                "prev_hash": prev_hash}
        digest = hashlib.sha256(canonical_json(body).encode()).hexdigest()
        return cls(seq=seq, kind=kind, data=data, prev_hash=prev_hash,
                   hash=digest)

    @classmethod
    def from_fields(cls, fields: Dict[str, object], *,
                    context: str = "log") -> "LogRecord":
        """Parse and verify one stored record; refuses corruption."""
        try:
            record = cls(
                seq=int(fields["seq"]),
                kind=str(fields["kind"]),
                data=dict(fields["data"]),
                prev_hash=str(fields["prev_hash"]),
                hash=str(fields["hash"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageCorruptionError(
                f"{context}: malformed log record ({exc})") from exc
        expected = hashlib.sha256(
            canonical_json(record.body()).encode()).hexdigest()
        if record.hash != expected:
            raise StorageCorruptionError(
                f"{context}: record {record.seq} failed verification — "
                f"stored hash {record.hash[:12]}… != computed "
                f"{expected[:12]}… (corrupted record)")
        return record


def verify_chain(records: List[LogRecord], *,
                 context: str = "log") -> List[LogRecord]:
    """Check ``prev_hash`` linkage and sequence continuity.

    The first record is the chain anchor: seq 0 must link to
    :data:`GENESIS_PREV_HASH`; a pruned log legitimately starts at a
    later seq whose ``prev_hash`` names a dropped predecessor, which is
    accepted as-is (the checkpoint it carries is self-verifying).
    """
    prev: Optional[LogRecord] = None
    for record in records:
        if prev is None:
            if record.seq == 0 and record.prev_hash != GENESIS_PREV_HASH:
                raise StorageCorruptionError(
                    f"{context}: record 0 must anchor to "
                    f"{GENESIS_PREV_HASH[:12]}…, found "
                    f"{record.prev_hash[:12]}…")
        else:
            if record.seq != prev.seq + 1:
                raise StorageCorruptionError(
                    f"{context}: sequence break — record {record.seq} "
                    f"follows record {prev.seq}")
            if record.prev_hash != prev.hash:
                raise StorageCorruptionError(
                    f"{context}: broken hash chain at record "
                    f"{record.seq} — prev_hash {record.prev_hash[:12]}… "
                    f"does not match {prev.hash[:12]}…")
        prev = record
    return records


class Store:
    """The append-only log protocol all backends implement.

    Subclasses provide ``_write`` (persist one record), ``_flush``
    (durability barrier), ``_prune_persisted`` (drop records below a
    seq) and ``close``; the base class owns the verified in-memory
    mirror, the chain head, and the ``repro_storage_*`` write metrics.
    """

    backend = "abstract"

    def __init__(self, *, telemetry=None):
        registry = coerce_registry(telemetry)
        self._m_appends = registry.counter(
            "repro_storage_appends_total",
            "Log records appended to durable stores, by record kind")
        self._m_bytes = registry.counter(
            "repro_storage_bytes_written_total",
            "Canonical-encoded bytes appended to durable stores")
        self._m_flushes = registry.counter(
            "repro_storage_flushes_total",
            "Durability barriers (flush/commit) completed by stores")
        self._m_pruned = registry.counter(
            "repro_storage_pruned_records_total",
            "Log records dropped below checkpoints by pruning")
        self._records: List[LogRecord] = []
        self._next_seq = 0
        self._head_hash = GENESIS_PREV_HASH

    # -- queries -----------------------------------------------------------

    @property
    def head_hash(self) -> str:
        """Hash of the newest record (the chain head)."""
        return self._head_hash

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def __len__(self) -> int:
        return len(self._records)

    def records(self, start_seq: int = 0) -> List[LogRecord]:
        """The verified log (optionally from *start_seq*), oldest first."""
        if start_seq <= 0:
            return list(self._records)
        return [r for r in self._records if r.seq >= start_seq]

    # -- mutation ----------------------------------------------------------

    def append(self, kind: str, data: Dict[str, object]) -> LogRecord:
        """Append one record, chained to the current head, and flush."""
        record = LogRecord.make(seq=self._next_seq, kind=kind, data=data,
                                prev_hash=self._head_hash)
        self._write(record)
        self._records.append(record)
        self._next_seq = record.seq + 1
        self._head_hash = record.hash
        self._m_appends.inc(kind=kind)
        self._m_bytes.inc(len(record.to_line()) + 1)
        self.flush()
        return record

    def prune_before(self, seq: int) -> int:
        """Drop records with ``seq < seq`` (checkpoint pruning).

        The chain head is untouched: later appends keep linking to the
        newest surviving record, and the first survivor becomes the
        accepted chain anchor on reload.  Returns how many records were
        dropped.
        """
        keep = [r for r in self._records if r.seq >= seq]
        dropped = len(self._records) - len(keep)
        if dropped:
            self._records = keep
            self._prune_persisted(seq)
            self._m_pruned.inc(dropped)
        return dropped

    def flush(self) -> None:
        """Durability barrier; counted so write amplification is visible."""
        self._flush()
        self._m_flushes.inc()

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    # -- backend hooks -----------------------------------------------------

    def _adopt(self, records: List[LogRecord], *, context: str) -> None:
        """Install a freshly loaded (and fully verified) log mirror."""
        verify_chain(records, context=context)
        self._records = list(records)
        if records:
            self._next_seq = records[-1].seq + 1
            self._head_hash = records[-1].hash

    def _write(self, record: LogRecord) -> None:  # pragma: no cover
        pass

    def _flush(self) -> None:  # pragma: no cover - trivial default
        pass

    def _prune_persisted(self, seq: int) -> None:  # pragma: no cover
        pass


class MemoryStore(Store):
    """The in-memory backend: the list mirror *is* the storage.

    Default for every deployment (zero behaviour change, zero I/O) and
    the reference double the durable backends are tested against.
    """

    backend = "memory"


class FileStore(Store):
    """Append-only JSONL log: one canonical record per line.

    Framing is strict: every line must be byte-identical to the
    canonical encoding of the record it parses to.  Together with the
    per-record hash and the ``prev_hash`` chain this makes *any*
    single-byte change to the file detectable — content flips break the
    record hash, framing flips (whitespace, newline damage, scientific
    notation) break canonicality, line merges break JSON parsing.
    """

    backend = "file"

    def __init__(self, path: str, *, telemetry=None):
        super().__init__(telemetry=telemetry)
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(path):
            self._adopt(self._read_all(), context=path)
        self._handle = open(path, "a", encoding="utf-8")

    def _read_all(self) -> List[LogRecord]:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageCorruptionError(
                f"{self.path}: log is not valid UTF-8 ({exc})") from exc
        records: List[LogRecord] = []
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()  # the trailing newline of the last record
        for line_no, line in enumerate(lines, start=1):
            try:
                fields = json.loads(line)
            except ValueError as exc:
                raise StorageCorruptionError(
                    f"{self.path}: line {line_no} is not valid JSON "
                    f"({exc}) — log corrupted") from exc
            record = LogRecord.from_fields(
                fields, context=f"{self.path}:{line_no}")
            if line != record.to_line():
                raise StorageCorruptionError(
                    f"{self.path}: line {line_no} is not in canonical "
                    f"framing — log corrupted or foreign")
            records.append(record)
        return records

    def _write(self, record: LogRecord) -> None:
        self._handle.write(record.to_line() + "\n")

    def _flush(self) -> None:
        self._handle.flush()

    def _prune_persisted(self, seq: int) -> None:
        # Atomic rewrite: the surviving suffix goes to a sibling temp
        # file which then replaces the log, so a crash mid-prune leaves
        # either the old log or the new one, never a torn file.
        self._handle.close()
        tmp_path = self.path + ".pruning"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(record.to_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        self._handle.flush()
        self._handle.close()


class SQLiteStore(Store):
    """The same hash-chained log in a stdlib ``sqlite3`` table.

    ``data`` is stored as canonical JSON text; the full chain is
    re-verified on open exactly like the file backend, so row-level
    tampering and file-level corruption are both refused at load.
    """

    backend = "sqlite"

    def __init__(self, path: str, *, telemetry=None):
        super().__init__(telemetry=telemetry)
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        try:
            self._conn = sqlite3.connect(path)
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS log ("
                " seq INTEGER PRIMARY KEY,"
                " kind TEXT NOT NULL,"
                " data TEXT NOT NULL,"
                " prev_hash TEXT NOT NULL,"
                " hash TEXT NOT NULL)")
            rows = self._conn.execute(
                "SELECT seq, kind, data, prev_hash, hash"
                " FROM log ORDER BY seq").fetchall()
        except sqlite3.DatabaseError as exc:
            raise StorageCorruptionError(
                f"{path}: unreadable SQLite store ({exc})") from exc
        records: List[LogRecord] = []
        for seq, kind, data_text, prev_hash, hash_hex in rows:
            try:
                data = json.loads(data_text)
            except (TypeError, ValueError) as exc:
                raise StorageCorruptionError(
                    f"{path}: record {seq} payload is not valid JSON "
                    f"({exc})") from exc
            records.append(LogRecord.from_fields(
                {"seq": seq, "kind": kind, "data": data,
                 "prev_hash": prev_hash, "hash": hash_hex},
                context=f"{path}:seq {seq}"))
        self._adopt(records, context=path)

    def _write(self, record: LogRecord) -> None:
        self._conn.execute(
            "INSERT INTO log (seq, kind, data, prev_hash, hash)"
            " VALUES (?, ?, ?, ?, ?)",
            (record.seq, record.kind, canonical_json(record.data),
             record.prev_hash, record.hash))

    def _flush(self) -> None:
        self._conn.commit()

    def _prune_persisted(self, seq: int) -> None:
        self._conn.execute("DELETE FROM log WHERE seq < ?", (seq,))
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()


def open_store(backend: str, directory: Optional[str] = None, *,
               node: str = "node", telemetry=None) -> Store:
    """Open the store for *node* under *directory* (per-node subdir).

    ``memory`` ignores the directory; the durable backends require one
    and lay their log at ``<directory>/<node>/log.jsonl`` (file) or
    ``<directory>/<node>/store.db`` (sqlite).
    """
    if backend == "memory":
        return MemoryStore(telemetry=telemetry)
    if directory is None:
        raise StorageError(
            f"storage backend {backend!r} needs a storage directory")
    if backend == "file":
        return FileStore(os.path.join(directory, node, "log.jsonl"),
                         telemetry=telemetry)
    if backend == "sqlite":
        return SQLiteStore(os.path.join(directory, node, "store.db"),
                           telemetry=telemetry)
    raise StorageError(f"unknown storage backend {backend!r} "
                       f"(known: memory, file, sqlite)")
