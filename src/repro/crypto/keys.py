"""Node identities: the (PK, SK) pair every B-IoT entity owns.

Section IV-A: "Each sensor will generate a blockchain account when
initialized, i.e., a pair of public/secret key (PK, SK), which is the
unique identifier in the system.  The key pair for each device is not
only used to sign transactions, but also to make the key distribution."

A :class:`KeyPair` therefore bundles two primitives derived from one
seed: an Ed25519 key for signing and an X25519 key for receiving
ECIES-encrypted messages.  Its public half is a :class:`PublicIdentity`
whose stable :attr:`~PublicIdentity.node_id` (hash of both public keys)
is what appears in ledgers and ACLs.
"""

from __future__ import annotations

from .rand import randbytes
from dataclasses import dataclass

from . import ecies, ed25519, x25519
from .hashing import hash_concat

__all__ = ["KeyPair", "PublicIdentity", "NODE_ID_SIZE"]

NODE_ID_SIZE = 32


@dataclass(frozen=True)
class PublicIdentity:
    """The shareable half of a node's key material."""

    sign_public: bytes
    enc_public: bytes

    def __post_init__(self):
        if len(self.sign_public) != ed25519.PUBLIC_KEY_SIZE:
            raise ValueError("sign_public must be 32 bytes")
        if len(self.enc_public) != x25519.X25519_KEY_SIZE:
            raise ValueError("enc_public must be 32 bytes")

    @property
    def node_id(self) -> bytes:
        """32-byte stable identifier: hash of both public keys."""
        return hash_concat(self.sign_public, self.enc_public)

    @property
    def short_id(self) -> str:
        """First 8 hex chars of :attr:`node_id`, for logs and reprs."""
        return self.node_id.hex()[:8]

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature made by the matching :class:`KeyPair`."""
        return ed25519.verify(self.sign_public, message, signature)

    def encrypt(self, plaintext: bytes) -> bytes:
        """ECIES-encrypt *plaintext* to this identity."""
        return ecies.encrypt(self.enc_public, plaintext)

    def to_bytes(self) -> bytes:
        """Serialise as ``sign_public || enc_public`` (64 bytes)."""
        return self.sign_public + self.enc_public

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicIdentity":
        if len(data) != ed25519.PUBLIC_KEY_SIZE + x25519.X25519_KEY_SIZE:
            raise ValueError(f"identity encoding must be 64 bytes, got {len(data)}")
        return cls(sign_public=data[:32], enc_public=data[32:])

    def __repr__(self) -> str:
        return f"PublicIdentity({self.short_id})"


class KeyPair:
    """A node's full key material (signing + encryption).

    >>> alice = KeyPair.generate(seed=b"alice")
    >>> sig = alice.sign(b"reading")
    >>> alice.public.verify(b"reading", sig)
    True
    """

    def __init__(self, sign_secret: bytes, enc_secret: bytes):
        self._sign_secret = sign_secret
        self._enc_secret = enc_secret
        self.public = PublicIdentity(
            sign_public=ed25519.public_from_secret(sign_secret),
            enc_public=x25519.public_from_private(enc_secret),
        )

    @classmethod
    def generate(cls, seed: bytes = None) -> "KeyPair":
        """Create a key pair, deterministically when *seed* is given."""
        if seed is None:
            seed = randbytes(32)
        return cls(
            sign_secret=ed25519.generate_secret_key(seed=b"sign" + seed),
            enc_secret=x25519.generate_private_key(seed=b"enc" + seed),
        )

    @property
    def node_id(self) -> bytes:
        return self.public.node_id

    @property
    def short_id(self) -> str:
        return self.public.short_id

    def sign(self, message: bytes) -> bytes:
        """Sign *message* with the Ed25519 secret key."""
        return ed25519.sign(self._sign_secret, message)

    def decrypt(self, envelope: bytes) -> bytes:
        """Decrypt an ECIES envelope addressed to this identity."""
        return ecies.decrypt(self._enc_secret, envelope)

    def __repr__(self) -> str:
        return f"KeyPair({self.short_id})"
