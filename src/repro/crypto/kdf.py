"""Key-derivation helpers (HKDF, RFC 5869) built on stdlib HMAC-SHA256.

Used by :mod:`repro.crypto.ecies` to turn an X25519 shared secret into
independent encryption and MAC keys, and by the key-distribution
protocol to derive session keys.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf", "hmac_sha256", "constant_time_equal"]

_HASH_LEN = 32


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 of *data* under *key*."""
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate entropy into a pseudorandom key."""
    if not salt:
        salt = bytes(_HASH_LEN)
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand *pseudo_random_key* into *length* bytes bound to *info*."""
    if length <= 0:
        raise ValueError("output length must be positive")
    if length > 255 * _HASH_LEN:
        raise ValueError(f"HKDF output limited to {255 * _HASH_LEN} bytes")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material: bytes, *, salt: bytes = b"", info: bytes = b"",
         length: int = 32) -> bytes:
    """One-shot HKDF (extract-then-expand)."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte-string comparison (wraps :func:`hmac.compare_digest`)."""
    return hmac.compare_digest(a, b)
