"""Ed25519 signatures (RFC 8032).

Every B-IoT node owns a public/secret key pair used as its unique
identifier and to sign transactions, ACL updates and key-distribution
messages (Sections IV-A and IV-C of the paper).  The paper inherits
IOTA's signature scheme; this reproduction uses Ed25519, which provides
the same property the system relies on — unforgeable signatures bound to
a compact public key — with deterministic nonces (no RNG failure modes
on constrained devices).

The implementation uses extended homogeneous coordinates for the
twisted-Edwards group law, which keeps signing/verification fast enough
for the multi-hundred-transaction simulations in the benchmark harness.
"""

from __future__ import annotations

import hashlib

from .rand import randbytes
from typing import Tuple

__all__ = [
    "SECRET_KEY_SIZE",
    "PUBLIC_KEY_SIZE",
    "SIGNATURE_SIZE",
    "generate_secret_key",
    "public_from_secret",
    "sign",
    "verify",
]

SECRET_KEY_SIZE = 32
PUBLIC_KEY_SIZE = 32
SIGNATURE_SIZE = 64

_P = 2 ** 255 - 19
_L = 2 ** 252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

# Base point B in extended coordinates (X, Y, Z, T).
_BY = (4 * pow(5, _P - 2, _P)) % _P
_BX = None  # recovered below


def _recover_x(y: int, sign_bit: int) -> int:
    """Recover the x-coordinate of a point from y and the sign bit."""
    if y >= _P:
        raise ValueError("invalid point encoding: y >= p")
    x2 = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P) % _P
    if x2 == 0:
        if sign_bit:
            raise ValueError("invalid point encoding: x=0 with sign bit set")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * pow(2, (_P - 1) // 4, _P) % _P
    if (x * x - x2) % _P != 0:
        raise ValueError("invalid point encoding: no square root")
    if x & 1 != sign_bit:
        x = _P - x
    return x


_BX = _recover_x(_BY, 0)
_BASE = (_BX, _BY, 1, (_BX * _BY) % _P)
_IDENTITY = (0, 1, 1, 0)


def _point_add(p: Tuple[int, int, int, int], q: Tuple[int, int, int, int]):
    """Add two points in extended homogeneous coordinates."""
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_mul(scalar: int, point: Tuple[int, int, int, int]):
    """Double-and-add scalar multiplication."""
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _point_equal(p: Tuple[int, int, int, int], q: Tuple[int, int, int, int]) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    if (x1 * z2 - x2 * z1) % _P != 0:
        return False
    return (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(point: Tuple[int, int, int, int]) -> bytes:
    x, y, z, _ = point
    z_inv = pow(z, _P - 2, _P)
    x = x * z_inv % _P
    y = y * z_inv % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> Tuple[int, int, int, int]:
    if len(data) != 32:
        raise ValueError(f"point encoding must be 32 bytes, got {len(data)}")
    encoded = int.from_bytes(data, "little")
    sign_bit = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, sign_bit)
    return (x, y, 1, (x * y) % _P)


def _sha512_int(*parts: bytes) -> int:
    hasher = hashlib.sha512()
    for part in parts:
        hasher.update(part)
    return int.from_bytes(hasher.digest(), "little")


def _secret_expand(secret_key: bytes) -> Tuple[int, bytes]:
    if len(secret_key) != SECRET_KEY_SIZE:
        raise ValueError(f"secret key must be {SECRET_KEY_SIZE} bytes, got {len(secret_key)}")
    digest = hashlib.sha512(secret_key).digest()
    scalar = int.from_bytes(digest[:32], "little")
    scalar &= (1 << 254) - 8
    scalar |= 1 << 254
    return scalar, digest[32:]


def generate_secret_key(seed: bytes = None) -> bytes:
    """Return a fresh 32-byte Ed25519 secret key.

    With *seed*, derivation is deterministic so simulated networks can be
    reproduced exactly across runs.
    """
    if seed is not None:
        return hashlib.sha256(b"ed25519-secret" + seed).digest()
    return randbytes(SECRET_KEY_SIZE)


def public_from_secret(secret_key: bytes) -> bytes:
    """Derive the 32-byte public key for *secret_key*."""
    scalar, _ = _secret_expand(secret_key)
    return _point_compress(_point_mul(scalar, _BASE))


def sign(secret_key: bytes, message: bytes) -> bytes:
    """Produce a 64-byte deterministic Ed25519 signature over *message*."""
    scalar, prefix = _secret_expand(secret_key)
    public = _point_compress(_point_mul(scalar, _BASE))
    r = _sha512_int(prefix, message) % _L
    r_point = _point_compress(_point_mul(r, _BASE))
    challenge = _sha512_int(r_point, public, message) % _L
    s = (r + challenge * scalar) % _L
    return r_point + s.to_bytes(32, "little")


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 *signature* over *message*; never raises on bad input."""
    if len(public_key) != PUBLIC_KEY_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    try:
        a_point = _point_decompress(public_key)
        r_point = _point_decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    challenge = _sha512_int(signature[:32], public_key, message) % _L
    lhs = _point_mul(s, _BASE)
    rhs = _point_add(r_point, _point_mul(challenge, a_point))
    return _point_equal(lhs, rhs)
