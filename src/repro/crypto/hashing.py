"""Hashing primitives used across the B-IoT reproduction.

The paper's tangle substrate (IOTA) uses the Curl/Kerl ternary hash
family; this reproduction standardises on SHA-256 (with SHA-512 where a
wide output is required, e.g. Ed25519).  Every ledger object carries a
32-byte content digest computed by :func:`sha256`, PoW uses
:func:`double_sha256` (hashcash style), and block/bundle integrity uses
:class:`MerkleTree`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence

__all__ = [
    "sha256",
    "sha512",
    "double_sha256",
    "sha256_hex",
    "hash_concat",
    "leading_zero_bits",
    "MerkleTree",
    "merkle_root",
]

DIGEST_SIZE = 32
"""Size in bytes of the canonical digest (:func:`sha256`)."""


def sha256(data: bytes) -> bytes:
    """Return the 32-byte SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def sha512(data: bytes) -> bytes:
    """Return the 64-byte SHA-512 digest of *data*."""
    return hashlib.sha512(data).digest()


def double_sha256(data: bytes) -> bytes:
    """Return ``SHA-256(SHA-256(data))``.

    Double hashing is the classic hashcash/Bitcoin construction; it
    protects against length-extension when digests are chained, which is
    exactly what Eqn. 6 of the paper does with transaction hashes.
    """
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of *data* as a lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def hash_concat(*parts: bytes) -> bytes:
    """Hash the length-prefixed concatenation of *parts*.

    Length prefixes make the encoding injective: ``hash_concat(b"ab",
    b"c")`` never collides with ``hash_concat(b"a", b"bc")``.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


def leading_zero_bits(digest: bytes) -> int:
    """Count the number of leading zero bits in *digest*.

    This is the PoW "difficulty met" metric: a digest satisfies
    difficulty ``D`` iff ``leading_zero_bits(digest) >= D``.
    """
    count = 0
    for byte in digest:
        if byte == 0:
            count += 8
            continue
        # 7 - floor(log2(byte)) leading zeros within this byte.
        count += 8 - byte.bit_length()
        break
    return count


class MerkleTree:
    """A binary Merkle tree over a sequence of byte-string leaves.

    Leaves are hashed with a ``0x00`` domain prefix and interior nodes
    with ``0x01`` so a leaf digest can never be re-interpreted as an
    interior digest (second-preimage hardening).  Odd nodes at any level
    are promoted unchanged (no duplication), which keeps proofs
    unambiguous.
    """

    _LEAF_PREFIX = b"\x00"
    _NODE_PREFIX = b"\x01"

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise ValueError("MerkleTree requires at least one leaf")
        self._leaves = [bytes(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = [
            [sha256(self._LEAF_PREFIX + leaf) for leaf in self._leaves]
        ]
        while len(self._levels[-1]) > 1:
            self._levels.append(self._next_level(self._levels[-1]))

    @classmethod
    def _next_level(cls, level: List[bytes]) -> List[bytes]:
        parents = []
        for i in range(0, len(level) - 1, 2):
            parents.append(sha256(cls._NODE_PREFIX + level[i] + level[i + 1]))
        if len(level) % 2 == 1:
            parents.append(level[-1])
        return parents

    @property
    def root(self) -> bytes:
        """The 32-byte Merkle root."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> List[tuple]:
        """Return an inclusion proof for the leaf at *index*.

        The proof is a list of ``(is_right, digest)`` pairs from leaf to
        root: ``is_right`` is True when *digest* is the right sibling.
        """
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path = []
        for level in self._levels[:-1]:
            sibling = index ^ 1
            if sibling < len(level):
                path.append((sibling > index, level[sibling]))
            index //= 2
        return path

    @classmethod
    def verify_proof(cls, leaf: bytes, proof: Iterable[tuple], root: bytes) -> bool:
        """Check an inclusion *proof* for *leaf* against *root*."""
        digest = sha256(cls._LEAF_PREFIX + leaf)
        for is_right, sibling in proof:
            if is_right:
                digest = sha256(cls._NODE_PREFIX + digest + sibling)
            else:
                digest = sha256(cls._NODE_PREFIX + sibling + digest)
        return digest == root


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Return the Merkle root of *leaves* (empty input hashes to zeros).

    Convenience wrapper used by the chain baseline where an empty block
    body is legal; an all-zero root marks the empty body distinctly.
    """
    if not leaves:
        return b"\x00" * DIGEST_SIZE
    return MerkleTree(leaves).root
