"""Accelerated crypto lane: backend registry, tables, batch, pool.

Everything here is behaviour-preserving: the ``accel`` backend accepts
and rejects *exactly* the same inputs as the from-scratch reference
(:mod:`repro.crypto.ed25519`), byte for byte — pinned by the
differential suite in ``tests/crypto/test_ed25519_accel.py``.  Code
picks a backend through :func:`get_backend` (driven by
``BIoTConfig.crypto_backend``) and never imports the accelerated
module directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from .. import ed25519 as _reference
from . import ed25519_accel as _accel
from .pool import CryptoPool

__all__ = [
    "CryptoBackend",
    "CryptoPool",
    "CRYPTO_BACKENDS",
    "get_backend",
]

SignatureItem = Tuple[bytes, bytes, bytes]
"""One ``(public_key, message, signature)`` triple."""


@dataclass(frozen=True)
class CryptoBackend:
    """A pluggable Ed25519 implementation with a uniform surface.

    Attributes:
        name: registry key ("reference" or "accel").
        sign / verify / public_from_secret: scalar operations,
            byte-identical across backends.
        verify_batch: list of per-item verdicts for a burst of triples;
            the reference backend simply loops, the accel backend runs
            the random-linear-combination batch equation with per-item
            fallback (see :mod:`repro.crypto.accel.ed25519_accel`).
    """

    name: str
    sign: Callable[[bytes, bytes], bytes] = field(repr=False)
    verify: Callable[[bytes, bytes, bytes], bool] = field(repr=False)
    verify_batch: Callable[[Sequence[SignatureItem]], List[bool]] = field(
        repr=False)
    public_from_secret: Callable[[bytes], bytes] = field(repr=False)


def _reference_verify_batch(items: Sequence[SignatureItem]) -> List[bool]:
    return [_reference.verify(public_key, message, signature)
            for public_key, message, signature in items]


_BACKENDS = {
    "reference": CryptoBackend(
        name="reference",
        sign=_reference.sign,
        verify=_reference.verify,
        verify_batch=_reference_verify_batch,
        public_from_secret=_reference.public_from_secret,
    ),
    "accel": CryptoBackend(
        name="accel",
        sign=_accel.sign,
        verify=_accel.verify,
        verify_batch=_accel.verify_batch,
        public_from_secret=_accel.public_from_secret,
    ),
}

CRYPTO_BACKENDS = tuple(_BACKENDS)
"""Valid ``BIoTConfig.crypto_backend`` values."""


def get_backend(name: str) -> CryptoBackend:
    """Resolve a backend by registry name; raises ``ValueError`` on an
    unknown name (listing the valid ones)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown crypto backend {name!r}; valid: {CRYPTO_BACKENDS}"
        ) from None
