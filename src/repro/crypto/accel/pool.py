"""Opt-in multiprocessing lane for PoW grinding and signature checks.

The discrete-event simulator is single-threaded and deterministic; a
worker pool must not change *any* observable result, only wall-clock
time.  Two rules make that hold:

* **PoW** — the pooled solver scans the nonce space in contiguous
  chunks dispatched as waves across the workers, then takes the hit
  from the *earliest* chunk.  Sequential ``hashcash.solve`` returns the
  first hit in scan order; the first hit in scan order necessarily
  lives in the earliest chunk that has any hit, at the smallest offset
  within it — which is exactly what each worker reports.  The pooled
  solve therefore returns the identical ``(nonce, attempts)`` pair.
* **Signatures** — verification is a pure function; ``verify_many``
  just maps it across workers and preserves input order.

The pool lives at the *deployment* level (one per
:class:`~repro.core.biot.BIoTSystem`), never inside node event
handlers, so event scheduling is untouched.  Pool creation is lazy and
failure-tolerant: on platforms where ``multiprocessing`` is
unavailable (restricted sandboxes), everything silently runs
sequentially with the same results.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

from ...pow import hashcash
from ...pow.hashcash import NONCE_SIZE, ProofOfWork
from ..hashing import double_sha256, leading_zero_bits
from . import ed25519_accel

__all__ = ["CryptoPool", "DEFAULT_CHUNK_SIZE"]

DEFAULT_CHUNK_SIZE = 8192
"""Nonces per worker chunk: large enough to amortise dispatch overhead
(a chunk is ~8k double-SHA256 calls), small enough that low-difficulty
solves do not grind far past the answer."""


def _scan_chunk(task: Tuple[bytes, int, int, int]) -> Optional[int]:
    """Worker: first nonce in ``[start, start+length)`` (wrapping mod
    2**64) meeting *difficulty*, or None.  Top-level so it pickles."""
    challenge, difficulty, start, length = task
    nonce = start
    for _ in range(length):
        digest = double_sha256(challenge + nonce.to_bytes(NONCE_SIZE, "big"))
        if leading_zero_bits(digest) >= difficulty:
            return nonce
        nonce = (nonce + 1) % 2 ** 64
    return None


def _verify_one(item: Tuple[bytes, bytes, bytes]) -> bool:
    """Worker: one accelerated (= reference-identical) verification."""
    public_key, message, signature = item
    return ed25519_accel.verify(public_key, message, signature)


class CryptoPool:
    """Deployment-scoped worker pool for crypto-heavy inner loops.

    Args:
        workers: process count; 1 means "never fork, run inline".
        chunk_size: nonces per PoW scan chunk (see the determinism
            argument in the module docstring — any chunk size yields
            the same answer, it only tunes dispatch granularity).
    """

    def __init__(self, workers: int, *, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool = None
        self._unavailable = False

    def _ensure_pool(self):
        if self._pool is None and not self._unavailable and self.workers > 1:
            try:
                self._pool = multiprocessing.Pool(self.workers)
            except (OSError, ValueError, ImportError):
                # Restricted environments (no /dev/shm, no fork): stay
                # sequential — identical results, just single-core.
                self._unavailable = True
        return self._pool

    def solve(self, challenge: bytes, difficulty: int, *,
              start_nonce: int = 0,
              max_attempts: int = None) -> ProofOfWork:
        """Drop-in for :func:`repro.pow.hashcash.solve`: same
        ``(nonce, attempts)``, scanned across the pool's workers.

        A *max_attempts* bound runs sequentially — the bound is a
        test/DoS-budget construct, and honouring it exactly mid-chunk
        costs the parallel path its simplicity for no production win.
        """
        if max_attempts is not None:
            return hashcash.solve(challenge, difficulty,
                                  start_nonce=start_nonce,
                                  max_attempts=max_attempts)
        pool = self._ensure_pool()
        if pool is None:
            return hashcash.solve(challenge, difficulty,
                                  start_nonce=start_nonce)
        if not hashcash.MIN_DIFFICULTY <= difficulty <= hashcash.MAX_DIFFICULTY:
            raise ValueError(
                f"difficulty must be in [{hashcash.MIN_DIFFICULTY}, "
                f"{hashcash.MAX_DIFFICULTY}], got {difficulty}")
        start = start_nonce % 2 ** 64
        scanned = 0
        while True:
            tasks = [
                (challenge, difficulty,
                 (start + scanned + index * self.chunk_size) % 2 ** 64,
                 self.chunk_size)
                for index in range(self.workers)
            ]
            for hit in pool.map(_scan_chunk, tasks):
                if hit is not None:
                    attempts = ((hit - start) % 2 ** 64) + 1
                    return ProofOfWork(nonce=hit, attempts=attempts,
                                       difficulty=difficulty)
            scanned += self.workers * self.chunk_size

    def verify_many(
            self, items: Sequence[Tuple[bytes, bytes, bytes]]) -> List[bool]:
        """Order-preserving parallel map of signature verification."""
        items = list(items)
        pool = self._ensure_pool() if len(items) > 1 else None
        if pool is None:
            return [_verify_one(item) for item in items]
        chunksize = max(1, len(items) // self.workers)
        return pool.map(_verify_one, items, chunksize=chunksize)

    def close(self) -> None:
        """Tear down worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
