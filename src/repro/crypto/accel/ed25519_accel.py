"""Accelerated Ed25519: precomputed tables, wNAF and batch verification.

Same group, same byte-level behaviour as :mod:`repro.crypto.ed25519`
(the from-scratch reference), three algorithmic upgrades:

* **fixed-base tables** — scalar multiplication by the base point ``B``
  (key generation, signing, the ``sB`` half of verification) walks a
  radix-16 table of ``d * 16^j * B`` built once per process: ~60 point
  additions and *zero* doublings instead of ~256 doublings + ~128
  additions;
* **wNAF double-scalar verification** — the ``R + hA`` half of
  verification uses width-5 wNAF with per-point odd-multiple tables,
  and any number of (scalar, point) pairs share one doubling chain
  (Straus interleaving);
* **batch verification** — a random-linear-combination check folds a
  burst of N ``(pk, msg, sig)`` triples into one multi-scalar
  multiplication::

      (sum z_i * s_i) * B  ==  sum z_i * R_i  +  sum (z_i * h_i) * A_i

  which costs one shared doubling chain plus ~O(bits/w) additions per
  item — far fewer scalar multiplications than N sequential verifies.

Soundness of the batch path (and its limits)
--------------------------------------------

The contract is *agreement with the cofactorless reference verify*:
``verify_batch(items)`` must equal ``[verify(*it) for it in items]``.

* A batch that fails the combined equation falls back to per-item
  verification — agreement by construction.
* A batch that passes accepts all items.  With 128-bit coefficients a
  disagreement then requires the per-item defects ``T_i = s_i*B - R_i
  - h_i*A_i`` to cancel in the linear combination.  Non-torsion
  defects cancel with probability ~2^-128 (negligible).  Pure-torsion
  defects (mixed-order or small-order ``A``/``R``: signatures the
  *cofactored* equation would accept but the cofactorless reference
  rejects) live in the 8-element torsion subgroup, where cancellation
  depends only on ``z_i mod 8`` — so the coefficients are forced
  **odd**, which makes ``z_i * t_i != identity`` for every non-identity
  torsion point ``t_i``: a batch containing exactly one torsion-defective
  signature is *deterministically* rejected and falls back.
* Two or more torsion-defective items in one batch can still cancel
  each other (e.g. a pair of order-2 defects always does).  The
  fallback then never runs and the batch accepts signatures the
  reference rejects.  This is a fundamental limit of any single linear
  check over an 8-torsion group; production systems close it by making
  *single* verification cofactored too (ZIP215).  Here the coefficients
  are derived by hashing the entire batch content (so replaying the
  same batch is deterministic and full-system runs stay byte-identical,
  and an adversary must re-grind the whole batch to steer them), and
  the residual risk is documented rather than hidden.

Every path is pinned bit-exact against the reference implementation by
``tests/crypto/test_ed25519_accel.py``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ed25519 import (
    PUBLIC_KEY_SIZE,
    SECRET_KEY_SIZE,
    SIGNATURE_SIZE,
    _BASE,
    _D,
    _IDENTITY,
    _L,
    _P,
    _point_add,
    _point_compress,
    _point_decompress,
    _point_equal,
    _secret_expand,
    _sha512_int,
)

__all__ = [
    "public_from_secret",
    "sign",
    "verify",
    "verify_batch",
    "precompute",
]

Point = Tuple[int, int, int, int]

# -- fixed-base table ------------------------------------------------------

_FIXED_WINDOWS = 64  # radix-16 digits covering 256-bit scalars
_TABLE: Optional[List[List[Point]]] = None


def _build_base_table() -> List[List[Point]]:
    """``table[j][d-1] = d * 16**j * B`` for d in 1..15, j in 0..63.

    Row j is built by 15 successive additions of ``16**j * B``; the
    last sum is exactly ``16**(j+1) * B``, seeding the next row with no
    extra doublings.  ~960 point additions total, paid once per process
    on first use.
    """
    table: List[List[Point]] = []
    base = _BASE
    for _ in range(_FIXED_WINDOWS):
        row: List[Point] = []
        cur = base
        for _ in range(15):
            row.append(cur)
            cur = _point_add(cur, base)
        table.append(row)
        base = cur  # == 16 * previous base
    return table


def precompute() -> None:
    """Force the fixed-base table build (otherwise lazy on first use).

    Benchmarks call this up front so table construction is excluded
    from timed regions; library users never need to.
    """
    global _TABLE
    if _TABLE is None:
        _TABLE = _build_base_table()


def _mul_base(scalar: int) -> Point:
    """``scalar * B`` via the fixed-base table: <= 64 additions."""
    precompute()
    table = _TABLE
    acc = _IDENTITY
    window = 0
    while scalar:
        digit = scalar & 15
        if digit:
            acc = _point_add(acc, table[window][digit - 1])
        scalar >>= 4
        window += 1
    return acc


# -- fast point decompression ----------------------------------------------

_SQRT_M1 = pow(2, (_P - 1) // 4, _P)
"""sqrt(-1) mod p, the square-root correction constant."""

_DECOMPRESS_CACHE_SIZE = 4096
_decompress_cache: "OrderedDict[bytes, Point]" = OrderedDict()


def _recover_x_fast(y: int, sign_bit: int) -> int:
    """The reference ``_recover_x`` in one modular exponentiation.

    The reference computes an inverse and a square root (two to three
    255-bit ``pow`` calls); the RFC 8032 combined form
    ``x = u * v**3 * (u * v**7)**((p-5)/8)`` needs exactly one, with
    the correction by the precomputed sqrt(-1).  Accepts and rejects
    *identical* inputs: y >= p, x=0-with-sign-bit and non-residues all
    raise the same ``ValueError`` shapes.
    """
    if y >= _P:
        raise ValueError("invalid point encoding: y >= p")
    u = (y * y - 1) % _P
    v = (_D * y * y + 1) % _P
    v3 = v * v % _P * v % _P
    x = u * v3 % _P * pow(u * v3 % _P * v3 % _P * v % _P,
                          (_P - 5) // 8, _P) % _P
    vxx = v * x % _P * x % _P
    if vxx == u:
        pass
    elif vxx == (-u) % _P:
        x = x * _SQRT_M1 % _P
    else:
        raise ValueError("invalid point encoding: no square root")
    if x == 0:
        if sign_bit:
            raise ValueError("invalid point encoding: x=0 with sign bit set")
        return 0
    if x & 1 != sign_bit:
        x = _P - x
    return x


def _decompress_cached(data: bytes) -> Point:
    """Decompress a 32-byte point encoding through a bounded LRU.

    Gossip bursts verify many signatures from few issuers, so the same
    public-key encoding decompresses over and over; the cache turns all
    but the first into a dict hit.  Only *successful* decompressions
    are cached (failures raise, and the open network must not be able
    to pin garbage).
    """
    cached = _decompress_cache.get(data)
    if cached is not None:
        _decompress_cache.move_to_end(data)
        return cached
    if len(data) != 32:
        raise ValueError(f"point encoding must be 32 bytes, got {len(data)}")
    encoded = int.from_bytes(data, "little")
    sign_bit = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x_fast(y, sign_bit)
    point = (x, y, 1, (x * y) % _P)
    _decompress_cache[bytes(data)] = point
    if len(_decompress_cache) > _DECOMPRESS_CACHE_SIZE:
        _decompress_cache.popitem(last=False)
    return point


# -- wNAF multi-scalar multiplication --------------------------------------

_WNAF_WIDTH = 5


def _wnaf_terms(scalar: int) -> List[Tuple[int, int]]:
    """Sparse width-5 NAF: ``(bit_position, digit)`` pairs, digits odd
    in ±{1, 3, ..., 15}.

    Zero runs are skipped with a count-trailing-zeros jump instead of a
    per-bit loop, so extraction costs O(nonzero digits) big-int ops
    (~bits/6), not O(bits) — this is what keeps the batch verifier's
    bookkeeping from eating the point-arithmetic savings.
    """
    terms: List[Tuple[int, int]] = []
    position = 0
    while scalar:
        trailing = (scalar & -scalar).bit_length() - 1
        if trailing:
            scalar >>= trailing
            position += trailing
        digit = scalar & 31
        if digit >= 16:
            digit -= 32
        terms.append((position, digit))
        # scalar - digit is divisible by 32: jump a full window.
        scalar = (scalar - digit) >> 5
        position += 5
    return terms


def _point_neg(point: Point) -> Point:
    x, y, z, t = point
    return ((-x) % _P, y, z, (-t) % _P)


def _multiscalar(pairs: Iterable[Tuple[int, Point]]) -> Point:
    """``sum(scalar_i * point_i)`` with one shared doubling chain.

    Straus interleaving: each point gets a small odd-multiples table
    (±1P, ±3P, ..., ±15P — one doubling plus seven additions), every
    scalar a sparse wNAF expansion, and the accumulator doubles once
    per bit of the *longest* scalar regardless of how many pairs there
    are.  The additions are transposed into a per-bit schedule up
    front, so the hot loop touches only the ~bits/6 nonzero digits of
    each scalar instead of scanning every (pair, bit) combination.
    """
    schedule: List[List[Point]] = []
    for scalar, point in pairs:
        if scalar == 0:
            continue
        double = _point_add(point, point)
        table = [point]
        for _ in range(7):
            table.append(_point_add(table[-1], double))
        for position, digit in _wnaf_terms(scalar):
            addend = (table[digit >> 1] if digit > 0
                      else _point_neg(table[(-digit) >> 1]))
            while len(schedule) <= position:
                schedule.append([])
            schedule[position].append(addend)
    if not schedule:
        return _IDENTITY
    point_add = _point_add
    acc = _IDENTITY
    for addends in reversed(schedule):
        acc = point_add(acc, acc)
        for addend in addends:
            acc = point_add(acc, addend)
    return acc


# -- drop-in scalar API ----------------------------------------------------

def public_from_secret(secret_key: bytes) -> bytes:
    """Byte-identical to the reference, via the fixed-base table."""
    scalar, _ = _secret_expand(secret_key)
    return _point_compress(_mul_base(scalar))


def sign(secret_key: bytes, message: bytes) -> bytes:
    """Byte-identical deterministic signing; both base-point
    multiplications (public key and commitment R) use the table."""
    scalar, prefix = _secret_expand(secret_key)
    public = _point_compress(_mul_base(scalar))
    r = _sha512_int(prefix, message) % _L
    r_point = _point_compress(_mul_base(r))
    challenge = _sha512_int(r_point, public, message) % _L
    s = (r + challenge * scalar) % _L
    return r_point + s.to_bytes(32, "little")


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Accepts exactly the same set as the reference ``verify`` (the
    cofactorless equation over the same decoding rules); the curve
    arithmetic is table + wNAF instead of double-and-add."""
    if len(public_key) != PUBLIC_KEY_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    try:
        a_point = _decompress_cached(public_key)
        r_point = _decompress_cached(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    challenge = _sha512_int(signature[:32], public_key, message) % _L
    lhs = _mul_base(s)
    rhs = _point_add(r_point, _multiscalar([(challenge, a_point)]))
    return _point_equal(lhs, rhs)


# -- batch verification ----------------------------------------------------

_BATCH_DOMAIN = b"repro-ed25519-batch-z:"

_FULL_ORDER = 8 * _L
"""Order of the full curve group (cofactor times the prime order).

Batch scalars multiplying *untrusted* points must be reduced mod 8L,
not mod L: a scalar reduced mod L only fixes the same group element on
the prime-order subgroup, and the whole point of the adversarial tests
is that attacker-supplied ``A``/``R`` may carry 8-torsion components.
Reduction mod 8L is exact for every point on the curve.
"""


def _batch_coefficients(items: Sequence[Tuple[bytes, bytes, bytes]],
                        count: int) -> List[int]:
    """Odd 128-bit coefficients derived by hashing the whole batch.

    Content-derived (not drawn from the process randomness source) so
    that replaying a batch is deterministic — whole-system simulation
    runs stay byte-for-byte reproducible with the accel backend on —
    and every item in the batch perturbs every coefficient.  The low
    bit is forced to 1: odd coefficients annihilate nothing in the
    8-torsion subgroup, which is what makes a single mixed-order or
    small-order defect a *guaranteed* batch failure (see module
    docstring).
    """
    hasher = hashlib.sha512(_BATCH_DOMAIN)
    for public_key, message, signature in items:
        hasher.update(len(message).to_bytes(8, "big"))
        hasher.update(public_key)
        hasher.update(message)
        hasher.update(signature)
    seed = hasher.digest()
    coefficients = []
    for index in range(count):
        digest = hashlib.sha512(seed + index.to_bytes(4, "big")).digest()
        coefficients.append(int.from_bytes(digest[:16], "little") | 1)
    return coefficients


def verify_batch(items: Sequence[Tuple[bytes, bytes, bytes]]) -> List[bool]:
    """Verify ``(public_key, message, signature)`` triples as a batch.

    Returns one boolean per item, with the contract that the result
    equals ``[verify(pk, msg, sig) for ...]`` (see the module docstring
    for the exact soundness statement).  Structurally invalid items
    (bad lengths, non-canonical point encodings, ``s >= L``) are
    rejected up front without touching the combined equation; if the
    combined equation fails, every remaining item is verified
    individually.
    """
    results: List[Optional[bool]] = [None] * len(items)
    survivors: List[int] = []
    decoded: List[Tuple[bytes, Point, bytes, Point, int, int]] = []
    for index, (public_key, message, signature) in enumerate(items):
        if (len(public_key) != PUBLIC_KEY_SIZE
                or len(signature) != SIGNATURE_SIZE):
            results[index] = False
            continue
        try:
            a_point = _decompress_cached(public_key)
            r_point = _decompress_cached(signature[:32])
        except ValueError:
            results[index] = False
            continue
        s = int.from_bytes(signature[32:], "little")
        if s >= _L:
            results[index] = False
            continue
        challenge = _sha512_int(signature[:32], public_key, message) % _L
        survivors.append(index)
        decoded.append((public_key, a_point, signature[:32], r_point,
                        s, challenge))

    if not survivors:
        return [bool(r) for r in results]
    if len(survivors) == 1:
        index = survivors[0]
        results[index] = verify(*items[index])
        return [bool(r) for r in results]

    coefficients = _batch_coefficients(items, len(survivors))
    combined_s = 0
    # Merge pairs that share a point: a burst signed by few issuers
    # collapses all its A-columns into one scalar per distinct public
    # key (pure regrouping — sums of scalar multiples of the *same*
    # point — so the combined equation's value is untouched).  Scalars
    # reduce mod 8L, which is exact for torsion-carrying points too.
    merged: Dict[bytes, List[object]] = {}
    for z, (pk_enc, a_point, r_enc, r_point, s, challenge) in zip(
            coefficients, decoded):
        combined_s = (combined_s + z * s) % _L
        r_slot = merged.get(r_enc)
        if r_slot is None:
            merged[r_enc] = [z, r_point]
        else:
            r_slot[0] += z
        a_slot = merged.get(pk_enc)
        if a_slot is None:
            merged[pk_enc] = [z * challenge, a_point]
        else:
            a_slot[0] += z * challenge
    lhs = _mul_base(combined_s)
    rhs = _multiscalar((scalar % _FULL_ORDER, point)
                       for scalar, point in merged.values())
    if _point_equal(lhs, rhs):
        for index in survivors:
            results[index] = True
    else:
        for index in survivors:
            results[index] = verify(*items[index])
    return [bool(r) for r in results]
