"""X25519 elliptic-curve Diffie–Hellman (RFC 7748).

The paper's key-distribution protocol (Fig. 4) encrypts messages "by the
public key of IoT device".  This reproduction realises that public-key
encryption as ECIES (see :mod:`repro.crypto.ecies`), whose key agreement
primitive is the X25519 function implemented here: a constant-structure
Montgomery ladder over Curve25519.
"""

from __future__ import annotations

import hashlib

from .rand import randbytes

__all__ = ["X25519_KEY_SIZE", "x25519", "x25519_base", "generate_private_key", "public_from_private"]

X25519_KEY_SIZE = 32

_P = 2 ** 255 - 19
_A24 = 121665
_BASE_POINT_U = 9


def _clamp(scalar_bytes: bytes) -> int:
    """Decode and clamp a 32-byte X25519 scalar per RFC 7748 §5."""
    if len(scalar_bytes) != X25519_KEY_SIZE:
        raise ValueError(f"scalar must be {X25519_KEY_SIZE} bytes, got {len(scalar_bytes)}")
    scalar = int.from_bytes(scalar_bytes, "little")
    scalar &= ~7
    scalar &= (1 << 254) - 1
    scalar |= 1 << 254
    return scalar


def _decode_u(u_bytes: bytes) -> int:
    """Decode a u-coordinate, masking the top bit per RFC 7748."""
    if len(u_bytes) != X25519_KEY_SIZE:
        raise ValueError(f"u-coordinate must be {X25519_KEY_SIZE} bytes, got {len(u_bytes)}")
    u = int.from_bytes(u_bytes, "little")
    return (u & ((1 << 255) - 1)) % _P


def _ladder(scalar: int, u: int) -> int:
    """Montgomery ladder computing scalar * (u : 1) on Curve25519."""
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for bit_index in reversed(range(255)):
        bit = (scalar >> bit_index) & 1
        swap ^= bit
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = bit
        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = (da + cb) % _P
        x3 = (x3 * x3) % _P
        z3 = (da - cb) % _P
        z3 = (x1 * z3 * z3) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    return (x2 * pow(z2, _P - 2, _P)) % _P


def x25519(scalar_bytes: bytes, u_bytes: bytes) -> bytes:
    """Compute the X25519 function: scalar multiplication on Curve25519.

    Raises ``ValueError`` if the result is the all-zero point (the peer
    supplied a low-order point), as required for contributory key
    agreement.
    """
    result = _ladder(_clamp(scalar_bytes), _decode_u(u_bytes))
    out = result.to_bytes(X25519_KEY_SIZE, "little")
    if out == bytes(X25519_KEY_SIZE):
        raise ValueError("X25519 produced the zero point (low-order input)")
    return out


def x25519_base(scalar_bytes: bytes) -> bytes:
    """Multiply the standard base point (u=9) by the clamped scalar."""
    result = _ladder(_clamp(scalar_bytes), _BASE_POINT_U)
    return result.to_bytes(X25519_KEY_SIZE, "little")


def generate_private_key(seed: bytes = None) -> bytes:
    """Return a fresh 32-byte private scalar.

    With *seed* the key is derived deterministically (for reproducible
    simulations); otherwise it is drawn from the crypto
    randomness source (:mod:`repro.crypto.rand`).
    """
    if seed is not None:
        return hashlib.sha256(b"x25519-private" + seed).digest()
    return randbytes(X25519_KEY_SIZE)


def public_from_private(private_key: bytes) -> bytes:
    """Derive the public u-coordinate for *private_key*."""
    return x25519_base(private_key)
