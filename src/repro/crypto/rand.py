"""The crypto layer's randomness source.

Everything in ``repro`` that needs unpredictable bytes (ephemeral ECIES
keys, protocol nonces, group keys, CTR nonces) draws them from
:func:`randbytes`.  By default that is ``os.urandom``; tests and
reproducibility-sensitive experiments can swap in a deterministic
stream with :func:`deterministic`:

    with rand.deterministic(b"experiment-7"):
        system = BIoTSystem.build(...)
        ...   # every nonce, key and envelope is now a pure function
              # of the seed — whole-system runs replay bit-for-bit

The deterministic stream is SHA-256 in counter mode — uniform and
independent across calls, obviously NOT secure against an adversary who
knows the seed; it exists for replayability, not production use.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["randbytes", "deterministic", "DeterministicSource"]

_source: Callable[[int], bytes] = os.urandom


def randbytes(count: int) -> bytes:
    """Return *count* random bytes from the active source."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return _source(count)


class DeterministicSource:
    """SHA-256 counter-mode byte stream seeded by an arbitrary string."""

    def __init__(self, seed: bytes):
        self._seed = hashlib.sha256(b"repro-rand:" + seed).digest()
        self._counter = 0
        self._buffer = b""

    def __call__(self, count: int) -> bytes:
        while len(self._buffer) < count:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:count], self._buffer[count:]
        return out


@contextmanager
def deterministic(seed: bytes) -> Iterator[None]:
    """Swap the randomness source for a seeded stream inside the block.

    Nesting is allowed; each block restores the previous source on
    exit, even on exceptions.
    """
    global _source
    previous = _source
    _source = DeterministicSource(seed)
    try:
        yield
    finally:
        _source = previous
