"""Pure-Python AES (FIPS-197) with CTR and CBC modes.

The paper's data authority management method encrypts sensor payloads
with AES implemented in C before posting them to the transparent ledger
(Section V-A) and evaluates the encryption cost on a Raspberry Pi 3B
(Fig. 10).  This module is a from-scratch, table-driven implementation of
the block cipher for all three key sizes plus the two modes the system
uses:

* **CTR** — used for payload encryption (parallel, no padding);
* **CBC + PKCS#7** — provided for interoperability tests and the ablation
  bench comparing modes.

The S-box and round tables are *generated* at import time from the
GF(2^8) field definition rather than hard-coded, which keeps the module
self-verifying: any typo in the field arithmetic breaks the NIST vectors
in the test suite immediately.
"""

from __future__ import annotations

import struct
from typing import List

__all__ = [
    "AES",
    "ctr_encrypt",
    "ctr_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
    "BLOCK_SIZE",
]

BLOCK_SIZE = 16
"""AES block size in bytes."""

_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1, the AES field polynomial.


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        if a & 0x100:
            a ^= _POLY
        b >>= 1
    return product


def _build_sbox() -> tuple:
    """Generate the AES S-box and its inverse from field arithmetic."""
    inverse = [0] * 256
    for x in range(1, 256):
        if inverse[x]:
            continue
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                inverse[y] = x
                break
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        value = inverse[x]
        # Affine transform: s = v ^ rotl(v,1) ^ rotl(v,2) ^ rotl(v,3) ^ rotl(v,4) ^ 0x63
        result = 0x63
        for shift in range(5):
            rotated = ((value << shift) | (value >> (8 - shift))) & 0xFF
            result ^= rotated
        sbox[x] = result
        inv_sbox[result] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()


def _build_enc_tables() -> List[List[int]]:
    """Build the four encryption T-tables (SubBytes+ShiftRows+MixColumns)."""
    t0 = []
    for x in range(256):
        s = _SBOX[x]
        word = (_gf_mul(2, s) << 24) | (s << 16) | (s << 8) | _gf_mul(3, s)
        t0.append(word)
    tables = [t0]
    for _ in range(3):
        prev = tables[-1]
        tables.append([((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in prev])
    return tables


def _build_dec_tables() -> List[List[int]]:
    """Build the four decryption T-tables (InvSubBytes+InvMixColumns)."""
    d0 = []
    for x in range(256):
        s = _INV_SBOX[x]
        word = (
            (_gf_mul(14, s) << 24)
            | (_gf_mul(9, s) << 16)
            | (_gf_mul(13, s) << 8)
            | _gf_mul(11, s)
        )
        d0.append(word)
    tables = [d0]
    for _ in range(3):
        prev = tables[-1]
        tables.append([((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in prev])
    return tables


_T0, _T1, _T2, _T3 = _build_enc_tables()
_D0, _D1, _D2, _D3 = _build_dec_tables()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _inv_mix_column_word(word: int) -> int:
    """Apply InvMixColumns to a single 32-bit column word."""
    b0 = (word >> 24) & 0xFF
    b1 = (word >> 16) & 0xFF
    b2 = (word >> 8) & 0xFF
    b3 = word & 0xFF
    return (
        ((_gf_mul(14, b0) ^ _gf_mul(11, b1) ^ _gf_mul(13, b2) ^ _gf_mul(9, b3)) << 24)
        | ((_gf_mul(9, b0) ^ _gf_mul(14, b1) ^ _gf_mul(11, b2) ^ _gf_mul(13, b3)) << 16)
        | ((_gf_mul(13, b0) ^ _gf_mul(9, b1) ^ _gf_mul(14, b2) ^ _gf_mul(11, b3)) << 8)
        | (_gf_mul(11, b0) ^ _gf_mul(13, b1) ^ _gf_mul(9, b2) ^ _gf_mul(14, b3))
    )


class AES:
    """The AES block cipher for 128-, 192- or 256-bit keys.

    Instances are immutable once constructed; the expensive work is the
    key expansion performed in ``__init__``, after which
    :meth:`encrypt_block` / :meth:`decrypt_block` run a fixed number of
    table lookups per 16-byte block.

    >>> cipher = AES(bytes(range(16)))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"sixteen byte msg"))
    b'sixteen byte msg'
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._dec_round_keys = self._invert_round_keys(self._round_keys, self.rounds)

    def _expand_key(self, key: bytes) -> List[int]:
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self.rounds + 1)
        sbox = _SBOX
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (sbox[(temp >> 24) & 0xFF] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (sbox[(temp >> 24) & 0xFF] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    @staticmethod
    def _invert_round_keys(round_keys: List[int], rounds: int) -> List[int]:
        """Round keys for the equivalent inverse cipher."""
        inverted: List[int] = []
        for round_index in range(rounds + 1):
            source = round_keys[4 * (rounds - round_index): 4 * (rounds - round_index) + 4]
            if 0 < round_index < rounds:
                source = [_inv_mix_column_word(w) for w in source]
            inverted.extend(source)
        return inverted

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte *block*."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        rk = self._round_keys
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        offset = 4
        for _ in range(self.rounds - 1):
            e0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF]
                  ^ t3[s3 & 0xFF] ^ rk[offset])
            e1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF]
                  ^ t3[s0 & 0xFF] ^ rk[offset + 1])
            e2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF]
                  ^ t3[s1 & 0xFF] ^ rk[offset + 2])
            e3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF]
                  ^ t3[s2 & 0xFF] ^ rk[offset + 3])
            s0, s1, s2, s3 = e0, e1, e2, e3
            offset += 4
        sbox = _SBOX
        f0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[offset]
        f1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[offset + 1]
        f2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[offset + 2]
        f3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[offset + 3]
        return struct.pack(">4I", f0, f1, f2, f3)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte *block*."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        rk = self._dec_round_keys
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        offset = 4
        for _ in range(self.rounds - 1):
            e0 = (d0[s0 >> 24] ^ d1[(s3 >> 16) & 0xFF] ^ d2[(s2 >> 8) & 0xFF]
                  ^ d3[s1 & 0xFF] ^ rk[offset])
            e1 = (d0[s1 >> 24] ^ d1[(s0 >> 16) & 0xFF] ^ d2[(s3 >> 8) & 0xFF]
                  ^ d3[s2 & 0xFF] ^ rk[offset + 1])
            e2 = (d0[s2 >> 24] ^ d1[(s1 >> 16) & 0xFF] ^ d2[(s0 >> 8) & 0xFF]
                  ^ d3[s3 & 0xFF] ^ rk[offset + 2])
            e3 = (d0[s3 >> 24] ^ d1[(s2 >> 16) & 0xFF] ^ d2[(s1 >> 8) & 0xFF]
                  ^ d3[s0 & 0xFF] ^ rk[offset + 3])
            s0, s1, s2, s3 = e0, e1, e2, e3
            offset += 4
        inv = _INV_SBOX
        f0 = ((inv[s0 >> 24] << 24) | (inv[(s3 >> 16) & 0xFF] << 16)
              | (inv[(s2 >> 8) & 0xFF] << 8) | inv[s1 & 0xFF]) ^ rk[offset]
        f1 = ((inv[s1 >> 24] << 24) | (inv[(s0 >> 16) & 0xFF] << 16)
              | (inv[(s3 >> 8) & 0xFF] << 8) | inv[s2 & 0xFF]) ^ rk[offset + 1]
        f2 = ((inv[s2 >> 24] << 24) | (inv[(s1 >> 16) & 0xFF] << 16)
              | (inv[(s0 >> 8) & 0xFF] << 8) | inv[s3 & 0xFF]) ^ rk[offset + 2]
        f3 = ((inv[s3 >> 24] << 24) | (inv[(s2 >> 16) & 0xFF] << 16)
              | (inv[(s1 >> 8) & 0xFF] << 8) | inv[s0 & 0xFF]) ^ rk[offset + 3]
        return struct.pack(">4I", f0, f1, f2, f3)


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad *data* to a multiple of *block_size* (PKCS#7)."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in [1, 255]")
    pad_len = block_size - len(data) % block_size
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip PKCS#7 padding, raising ``ValueError`` on malformed input."""
    if not data or len(data) % block_size != 0:
        raise ValueError("padded data length must be a positive multiple of block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise ValueError("invalid padding byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("inconsistent padding")
    return data[:-pad_len]


def _ctr_keystream(cipher: AES, nonce: bytes, length: int) -> bytes:
    """Generate *length* bytes of CTR keystream for *nonce*.

    The counter block is ``nonce (8 bytes) || counter (8 bytes, BE)``,
    giving 2^64 blocks per nonce — far beyond any sensor payload.
    """
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    blocks = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    encrypt = cipher.encrypt_block
    stream = b"".join(
        encrypt(nonce + counter.to_bytes(8, "big")) for counter in range(blocks)
    )
    return stream[:length]


def ctr_encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt *plaintext* with AES-CTR under *key* and 8-byte *nonce*."""
    cipher = key if isinstance(key, AES) else AES(key)
    if not plaintext:
        return b""
    keystream = _ctr_keystream(cipher, nonce, len(plaintext))
    xored = int.from_bytes(plaintext, "big") ^ int.from_bytes(keystream, "big")
    return xored.to_bytes(len(plaintext), "big")


def ctr_decrypt(key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
    """Decrypt AES-CTR output (CTR is its own inverse)."""
    return ctr_encrypt(key, nonce, ciphertext)


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """Encrypt *plaintext* with AES-CBC and PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"CBC IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = key if isinstance(key, AES) else AES(key)
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for start in range(0, len(padded), BLOCK_SIZE):
        block = padded[start: start + BLOCK_SIZE]
        mixed = bytes(a ^ b for a, b in zip(block, previous))
        previous = cipher.encrypt_block(mixed)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Decrypt AES-CBC output and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"CBC IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext length must be a positive multiple of 16")
    cipher = key if isinstance(key, AES) else AES(key)
    out = bytearray()
    previous = iv
    for start in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[start: start + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, previous))
        previous = block
    return pkcs7_unpad(bytes(out))
