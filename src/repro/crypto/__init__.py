"""Cryptographic substrate for the B-IoT reproduction.

Everything the paper's system depends on is implemented from scratch in
this package:

* :mod:`~repro.crypto.hashing` — SHA-256 wrappers, Merkle trees;
* :mod:`~repro.crypto.aes` — FIPS-197 AES with CTR/CBC modes;
* :mod:`~repro.crypto.x25519` / :mod:`~repro.crypto.ed25519` — RFC 7748
  key agreement and RFC 8032 signatures;
* :mod:`~repro.crypto.kdf` — HKDF and HMAC helpers;
* :mod:`~repro.crypto.ecies` — hybrid public-key encryption;
* :mod:`~repro.crypto.keys` — node identities (the paper's (PK, SK)).
"""

from . import rand
from .aes import AES, cbc_decrypt, cbc_encrypt, ctr_decrypt, ctr_encrypt
from .ecies import DecryptionError
from .hashing import MerkleTree, double_sha256, hash_concat, leading_zero_bits, merkle_root, sha256
from .kdf import hkdf, hmac_sha256
from .keys import KeyPair, PublicIdentity

__all__ = [
    "rand",
    "AES",
    "ctr_encrypt",
    "ctr_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "DecryptionError",
    "sha256",
    "double_sha256",
    "hash_concat",
    "leading_zero_bits",
    "MerkleTree",
    "merkle_root",
    "hkdf",
    "hmac_sha256",
    "KeyPair",
    "PublicIdentity",
]
