"""ECIES-style hybrid public-key encryption.

Fig. 4 of the paper encrypts the first key-distribution message "by the
public key of IoT device" (``Enc_PK_D{...}``).  Raw public-key
encryption of arbitrary-length messages is realised here the standard
way: an ephemeral X25519 key agreement, HKDF key derivation, AES-CTR
encryption, and an HMAC-SHA256 tag (encrypt-then-MAC).

Wire format::

    ephemeral_public (32) || nonce (8) || ciphertext (len(m)) || tag (32)
"""

from __future__ import annotations

from .rand import randbytes

from . import aes
from .kdf import constant_time_equal, hkdf, hmac_sha256
from .x25519 import X25519_KEY_SIZE, public_from_private, x25519

__all__ = ["encrypt", "decrypt", "OVERHEAD", "DecryptionError"]

_NONCE_SIZE = 8
_TAG_SIZE = 32
OVERHEAD = X25519_KEY_SIZE + _NONCE_SIZE + _TAG_SIZE
"""Ciphertext expansion in bytes relative to the plaintext."""

_INFO_ENC = b"biot-ecies-enc"
_INFO_MAC = b"biot-ecies-mac"


class DecryptionError(Exception):
    """Raised when an ECIES ciphertext fails authentication or parsing."""


def _derive_keys(shared_secret: bytes, ephemeral_public: bytes,
                 recipient_public: bytes) -> tuple:
    """Derive (encryption key, MAC key) bound to both public keys."""
    salt = ephemeral_public + recipient_public
    enc_key = hkdf(shared_secret, salt=salt, info=_INFO_ENC, length=32)
    mac_key = hkdf(shared_secret, salt=salt, info=_INFO_MAC, length=32)
    return enc_key, mac_key


def encrypt(recipient_public: bytes, plaintext: bytes, *,
            _ephemeral_private: bytes = None) -> bytes:
    """Encrypt *plaintext* so that only the holder of the matching
    private key can read it.

    ``_ephemeral_private`` exists solely so tests can make the output
    deterministic; production callers must leave it unset.
    """
    ephemeral_private = _ephemeral_private or randbytes(X25519_KEY_SIZE)
    ephemeral_public = public_from_private(ephemeral_private)
    shared_secret = x25519(ephemeral_private, recipient_public)
    enc_key, mac_key = _derive_keys(shared_secret, ephemeral_public, recipient_public)
    nonce = randbytes(_NONCE_SIZE)
    ciphertext = aes.ctr_encrypt(enc_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, ephemeral_public + nonce + ciphertext)
    return ephemeral_public + nonce + ciphertext + tag


def decrypt(recipient_private: bytes, envelope: bytes) -> bytes:
    """Decrypt an ECIES *envelope*; raises :class:`DecryptionError` on
    any tampering, truncation or wrong-key condition."""
    if len(envelope) < OVERHEAD:
        raise DecryptionError("envelope shorter than ECIES overhead")
    ephemeral_public = envelope[:X25519_KEY_SIZE]
    nonce = envelope[X25519_KEY_SIZE: X25519_KEY_SIZE + _NONCE_SIZE]
    ciphertext = envelope[X25519_KEY_SIZE + _NONCE_SIZE: -_TAG_SIZE]
    tag = envelope[-_TAG_SIZE:]
    recipient_public = public_from_private(recipient_private)
    try:
        shared_secret = x25519(recipient_private, ephemeral_public)
    except ValueError as exc:
        raise DecryptionError(f"invalid ephemeral key: {exc}") from exc
    enc_key, mac_key = _derive_keys(shared_secret, ephemeral_public, recipient_public)
    expected = hmac_sha256(mac_key, ephemeral_public + nonce + ciphertext)
    if not constant_time_equal(tag, expected):
        raise DecryptionError("authentication tag mismatch")
    return aes.ctr_decrypt(enc_key, nonce, ciphertext)
