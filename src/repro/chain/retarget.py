"""Difficulty retargeting for the chain baseline.

Real chain-structured blockchains keep their block interval stable by
retargeting difficulty against observed block times (Bitcoin's
2016-block rule).  The DAG-vs-chain comparison needs this so the chain
baseline stays fork-safe as hash power varies, rather than being tuned
by hand per experiment.

The rule: every ``window`` blocks, compare the observed mean block
interval to the target and shift the difficulty by ``log2(target /
observed)`` bits (work per bit doubles), clamped to ``max_step_bits``
per retarget — the same dampening real deployments use to resist
timestamp manipulation.
"""

from __future__ import annotations

import math
from typing import List

from ..pow import hashcash
from .block import Block
from .blockchain import Blockchain

__all__ = ["retarget_difficulty", "RetargetingSchedule"]


def retarget_difficulty(current_difficulty: int, *,
                        observed_interval: float,
                        target_interval: float,
                        max_step_bits: int = 2,
                        min_difficulty: int = hashcash.MIN_DIFFICULTY,
                        max_difficulty: int = 32) -> int:
    """One retarget step: shift difficulty toward the target interval.

    Blocks arriving too fast (observed < target) raise the difficulty;
    too slow lowers it.  The shift is rounded to whole bits and clamped
    to ``max_step_bits`` per adjustment.
    """
    if observed_interval <= 0:
        raise ValueError("observed_interval must be positive")
    if target_interval <= 0:
        raise ValueError("target_interval must be positive")
    if max_step_bits < 1:
        raise ValueError("max_step_bits must be >= 1")
    shift = math.log2(target_interval / observed_interval)
    step = int(round(max(-max_step_bits, min(max_step_bits, shift))))
    return max(min_difficulty, min(max_difficulty, current_difficulty + step))


class RetargetingSchedule:
    """Tracks main-chain block times and produces the next difficulty.

    Args:
        target_interval: desired seconds between blocks.
        window: how many most-recent intervals feed each adjustment.
        max_step_bits: clamp per adjustment.
    """

    def __init__(self, *, target_interval: float, window: int = 8,
                 max_step_bits: int = 2,
                 max_difficulty: int = 32):
        if target_interval <= 0:
            raise ValueError("target_interval must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.target_interval = target_interval
        self.window = window
        self.max_step_bits = max_step_bits
        self.max_difficulty = max_difficulty

    def next_difficulty(self, chain: Blockchain) -> int:
        """Difficulty the next block should use, from main-chain history."""
        main: List[Block] = chain.main_chain()
        current = main[-1].difficulty
        if len(main) < 2:
            return current
        recent = main[-(self.window + 1):]
        intervals = [
            b.timestamp - a.timestamp for a, b in zip(recent, recent[1:])
        ]
        observed = sum(intervals) / len(intervals)
        if observed <= 0:
            # Degenerate timestamps (all blocks at once): max raise.
            return min(self.max_difficulty, current + self.max_step_bits)
        return retarget_difficulty(
            current,
            observed_interval=observed,
            target_interval=self.target_interval,
            max_step_bits=self.max_step_bits,
            max_difficulty=self.max_difficulty,
        )
