"""A mempool-driven miner for the chain baseline.

Models the synchronous consensus loop the paper contrasts with the
tangle: transactions queue in a mempool, a miner repeatedly grinds a
block of at most ``max_block_transactions`` of them, and nothing is
confirmed until its block is buried.  The miner charges PoW cost to a
:class:`~repro.pow.engine.PowEngine`, so the DAG-vs-chain comparison
runs both systems on identical simulated hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..crypto.keys import KeyPair
from ..pow.engine import PowEngine
from ..tangle.transaction import Transaction
from .block import Block
from .blockchain import Blockchain

__all__ = ["Miner"]


class Miner:
    """Mines blocks from a FIFO mempool onto a :class:`Blockchain`.

    Args:
        keypair: the miner's identity.
        chain: the blockchain being extended.
        engine: PoW engine charging solve time to a device profile and
            the simulation clock.
        block_difficulty: PoW difficulty per block (the chain's security
            parameter; the tangle spreads the same work per-transaction).
        max_block_transactions: block size limit — the chain's
            throughput ceiling per block interval.
    """

    def __init__(self, keypair: KeyPair, chain: Blockchain, engine: PowEngine, *,
                 block_difficulty: int, max_block_transactions: int = 32):
        if max_block_transactions < 1:
            raise ValueError("max_block_transactions must be >= 1")
        self.keypair = keypair
        self.chain = chain
        self.engine = engine
        self.block_difficulty = block_difficulty
        self.max_block_transactions = max_block_transactions
        self.mempool: Deque[Transaction] = deque()
        self.blocks_mined = 0

    def submit(self, tx: Transaction) -> None:
        """Queue a transaction for inclusion in a future block."""
        self.mempool.append(tx)

    @property
    def mempool_depth(self) -> int:
        return len(self.mempool)

    def mine_next_block(self) -> Optional[Block]:
        """Mine one block from the mempool head; None if the pool is empty.

        The PoW is charged to the engine (advancing simulated time); the
        block timestamp is the clock reading at completion.
        """
        if not self.mempool:
            return None
        batch: List[Transaction] = [
            self.mempool.popleft()
            for _ in range(min(self.max_block_transactions, len(self.mempool)))
        ]
        tip = self.chain.best_tip
        draft = Block(
            prev_hash=tip.block_hash,
            height=tip.height + 1,
            timestamp=max(self.engine.clock.now(), tip.timestamp),
            difficulty=self.block_difficulty,
            miner=self.keypair.public,
            transactions=tuple(batch),
            nonce=0,
        )
        # The timestamp is part of the sealed header, so it records when
        # mining *started*; the engine's clock advances past it as the
        # solve completes.
        result = self.engine.solve(draft.header_digest, self.block_difficulty)
        block = Block(
            prev_hash=draft.prev_hash,
            height=draft.height,
            timestamp=draft.timestamp,
            difficulty=draft.difficulty,
            miner=draft.miner,
            transactions=draft.transactions,
            nonce=result.proof.nonce,
        )
        self.chain.add_block(block)
        self.blocks_mined += 1
        return block

    def drain(self) -> List[Block]:
        """Mine until the mempool is empty; returns the blocks produced."""
        blocks = []
        while self.mempool:
            block = self.mine_next_block()
            if block is not None:
                blocks.append(block)
        return blocks
