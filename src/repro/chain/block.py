"""Blocks for the chain-structured baseline.

Section II-A describes the comparator this package implements: a
satoshi-style blockchain where transactions are batched into blocks,
each block references a single predecessor, and proof-of-work seals the
header.  The B-IoT evaluation's throughput claims are made *against*
this design, so the reproduction needs it as a real, working baseline
(see ``benchmarks/test_bench_ext1_dag_vs_chain.py``).

Blocks reuse :class:`~repro.tangle.transaction.Transaction` for their
body entries (with zero parents — approvals are meaningless inside a
block), so both ledgers carry identical signed workloads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.hashing import DIGEST_SIZE, hash_concat, merkle_root
from ..crypto.keys import KeyPair, PublicIdentity
from ..pow import hashcash
from ..tangle.transaction import Transaction

__all__ = ["Block", "GENESIS_PREV_HASH"]

GENESIS_PREV_HASH = b"\x00" * DIGEST_SIZE


@dataclass(frozen=True)
class Block:
    """An immutable, PoW-sealed block."""

    prev_hash: bytes
    height: int
    timestamp: float
    difficulty: int
    miner: PublicIdentity
    transactions: Tuple[Transaction, ...]
    nonce: int

    def __post_init__(self):
        if len(self.prev_hash) != DIGEST_SIZE:
            raise ValueError("prev_hash must be a 32-byte block hash")
        if self.height < 0:
            raise ValueError("height must be non-negative")
        if self.difficulty < hashcash.MIN_DIFFICULTY:
            raise ValueError("difficulty below minimum")

    @property
    def merkle_root(self) -> bytes:
        return merkle_root([tx.to_bytes() for tx in self.transactions])

    @property
    def header_digest(self) -> bytes:
        """Everything the PoW commits to, except the nonce."""
        return hash_concat(
            self.prev_hash,
            struct.pack(">Q", self.height),
            struct.pack(">d", self.timestamp),
            struct.pack(">H", self.difficulty),
            self.miner.to_bytes(),
            self.merkle_root,
        )

    @property
    def block_hash(self) -> bytes:
        return hash_concat(self.header_digest, self.nonce.to_bytes(8, "big"))

    @property
    def short_hash(self) -> str:
        return self.block_hash.hex()[:8]

    @property
    def is_genesis(self) -> bool:
        return self.prev_hash == GENESIS_PREV_HASH and self.height == 0

    def verify_pow(self) -> bool:
        """Check the nonce seals the header at the declared difficulty."""
        return hashcash.verify(self.header_digest, self.nonce, self.difficulty)

    @property
    def work(self) -> int:
        """Expected hashes represented by this block's PoW (2^D)."""
        return 2 ** self.difficulty

    @classmethod
    def mine(cls, miner: KeyPair, *, prev_hash: bytes, height: int,
             timestamp: float, difficulty: int,
             transactions: Tuple[Transaction, ...] = (),
             nonce: Optional[int] = None) -> "Block":
        """Assemble a block; grind the PoW here unless *nonce* is given
        (callers accounting for solve time use a
        :class:`~repro.pow.engine.PowEngine` and pass the nonce in)."""
        draft = cls(
            prev_hash=prev_hash,
            height=height,
            timestamp=timestamp,
            difficulty=difficulty,
            miner=miner.public,
            transactions=tuple(transactions),
            nonce=0,
        )
        if nonce is None:
            proof = hashcash.solve(draft.header_digest, difficulty)
            nonce = proof.nonce
        return cls(
            prev_hash=draft.prev_hash,
            height=draft.height,
            timestamp=draft.timestamp,
            difficulty=draft.difficulty,
            miner=draft.miner,
            transactions=draft.transactions,
            nonce=int(nonce),
        )

    @classmethod
    def mine_genesis(cls, miner: KeyPair, *, timestamp: float = 0.0,
                     difficulty: int = hashcash.MIN_DIFFICULTY) -> "Block":
        return cls.mine(
            miner,
            prev_hash=GENESIS_PREV_HASH,
            height=0,
            timestamp=timestamp,
            difficulty=difficulty,
        )

    def __repr__(self) -> str:
        return (
            f"Block(h={self.height}, {self.short_hash}, "
            f"txs={len(self.transactions)}, t={self.timestamp:.3f})"
        )
