"""Chain-structured blockchain with longest-(heaviest-)chain consensus.

"Chain-structured blockchain maintains the longest chain as the main
chain in the system ... when two blocks are generated just a few
seconds apart, forks will happen, and the latest block in the longest
chain is always chosen, so other blocks in shorter chains are
considered as invalid blocks" (Section II-A, Fig. 1).

This class keeps *every* received block (a block tree), designates the
branch with the greatest cumulative work as the main chain, and reports
fork/orphan statistics — the quantities the DAG-vs-chain comparison
(Ext-1) measures.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..tangle.errors import (
    DuplicateTransactionError,
    InvalidPowError,
    TimestampError,
    UnknownParentError,
    ValidationError,
)
from .block import Block

__all__ = ["Blockchain"]


class Blockchain:
    """A block tree with heaviest-chain fork choice.

    Args:
        genesis: the genesis block.
        max_future_skew: reject blocks whose timestamp leads their
            parent's by less than zero or exceeds sanity bounds.
    """

    def __init__(self, genesis: Block, *, max_future_skew: float = 60.0):
        if not genesis.is_genesis:
            raise ValueError("blockchain must be seeded with a genesis block")
        if not genesis.verify_pow():
            raise InvalidPowError("genesis block fails its own PoW")
        self._blocks: Dict[bytes, Block] = {genesis.block_hash: genesis}
        self._children: Dict[bytes, Set[bytes]] = {genesis.block_hash: set()}
        self._cumulative_work: Dict[bytes, int] = {genesis.block_hash: genesis.work}
        self._max_future_skew = max_future_skew
        self.genesis = genesis
        self._best_tip = genesis.block_hash
        self.reorg_count = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._blocks

    def get(self, block_hash: bytes) -> Block:
        return self._blocks[block_hash]

    @property
    def best_tip(self) -> Block:
        """Head of the current main chain."""
        return self._blocks[self._best_tip]

    @property
    def height(self) -> int:
        """Height of the main chain head."""
        return self.best_tip.height

    def cumulative_work(self, block_hash: bytes) -> int:
        return self._cumulative_work[block_hash]

    def main_chain(self) -> List[Block]:
        """Blocks from genesis to the best tip, in order."""
        chain: List[Block] = []
        current: Optional[Block] = self.best_tip
        while current is not None:
            chain.append(current)
            if current.is_genesis:
                break
            current = self._blocks.get(current.prev_hash)
        chain.reverse()
        return chain

    def is_on_main_chain(self, block_hash: bytes) -> bool:
        block = self._blocks.get(block_hash)
        if block is None:
            return False
        main = self.main_chain()
        return block.height < len(main) and main[block.height].block_hash == block_hash

    def confirmed_blocks(self, confirmations: int = 6) -> List[Block]:
        """Main-chain blocks buried at least *confirmations* deep
        (the paper's six-block-security reference, Section II-B)."""
        main = self.main_chain()
        if confirmations <= 0:
            return main
        cutoff = len(main) - confirmations
        return main[:max(0, cutoff)]

    def confirmed_transactions(self, confirmations: int = 6) -> Iterator:
        """All transactions inside confirmed main-chain blocks."""
        for block in self.confirmed_blocks(confirmations):
            yield from block.transactions

    def orphaned_blocks(self) -> List[Block]:
        """Blocks not on the main chain — the gray squares of Fig. 1."""
        main_hashes = {b.block_hash for b in self.main_chain()}
        return [b for b in self._blocks.values() if b.block_hash not in main_hashes]

    @property
    def fork_count(self) -> int:
        """Number of positions where more than one child extends a block."""
        return sum(1 for kids in self._children.values() if len(kids) > 1)

    # -- growth ----------------------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Validate and insert *block*; returns True if it became (part
        of) the new main chain.

        Raises :class:`~repro.tangle.errors.ValidationError` subclasses
        on invalid blocks; valid blocks on losing forks are stored but
        return False.
        """
        if block.block_hash in self._blocks:
            raise DuplicateTransactionError(f"block {block.short_hash} already known")
        if block.is_genesis:
            raise ValidationError("a blockchain has exactly one genesis")
        parent = self._blocks.get(block.prev_hash)
        if parent is None:
            raise UnknownParentError(
                f"unknown parent {block.prev_hash.hex()[:8]} for {block.short_hash}"
            )
        if block.height != parent.height + 1:
            raise ValidationError(
                f"height {block.height} does not extend parent height {parent.height}"
            )
        if not block.verify_pow():
            raise InvalidPowError(f"block {block.short_hash} fails PoW")
        if block.timestamp < parent.timestamp:
            raise TimestampError(
                f"block {block.short_hash} predates its parent"
            )
        for tx in block.transactions:
            if not tx.verify_signature():
                raise ValidationError(
                    f"block {block.short_hash} carries a badly signed transaction"
                )

        self._blocks[block.block_hash] = block
        self._children[block.block_hash] = set()
        self._children[block.prev_hash].add(block.block_hash)
        self._cumulative_work[block.block_hash] = (
            self._cumulative_work[block.prev_hash] + block.work
        )

        became_main = False
        if self._cumulative_work[block.block_hash] > self._cumulative_work[self._best_tip]:
            previous_tip = self._best_tip
            self._best_tip = block.block_hash
            became_main = True
            # A reorg happened if the displaced tip is not our ancestor.
            if previous_tip != block.prev_hash:
                self.reorg_count += 1
        return became_main
