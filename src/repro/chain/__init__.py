"""Chain-structured blockchain baseline (Section II-A of the paper).

The comparator for every "DAG beats chain" claim: blocks, heaviest-chain
fork choice with reorg tracking, and a mempool miner running on the same
device profiles as the tangle nodes.
"""

from .block import GENESIS_PREV_HASH, Block
from .blockchain import Blockchain
from .miner import Miner
from .retarget import RetargetingSchedule, retarget_difficulty

__all__ = [
    "Block",
    "Blockchain",
    "Miner",
    "GENESIS_PREV_HASH",
    "RetargetingSchedule",
    "retarget_difficulty",
]
