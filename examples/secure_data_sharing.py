#!/usr/bin/env python3
"""Cross-factory secure data sharing (Section IV-A.4).

"If factories need to configure their machines operating parameters for
processing a certain kind of parts, they do not need to debug machines
independently.  They can request solutions of the same parts from other
factories which have configured them through B-IoT."

Two factories share one public tangle.  Factory A posts its machine
operating parameters encrypted under its group key.  Factory B can see
the (tamper-proof, traceable) transactions but not read them — until
factory A's manager runs the Fig. 4 key-distribution handshake with
factory B's manager, after which B decrypts the recipes directly from
its own replica.

Run:  python examples/secure_data_sharing.py
"""

from repro.core.authority import (
    DataProtector,
    DeviceKeyAgent,
    ManagerKeyDistributor,
)
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair
from repro.devices.sensors import MachineStatusSensor


def main():
    # Factory A: the one that already knows how to machine the part.
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=7,
        initial_difficulty=6, report_interval=2.0,
        sensor_cycle=("machine-status", "temperature"),
    ))
    system.initialize()
    system.start_devices()
    system.run_for(60.0)
    print("factory A has been running for 60 s")

    gateway = system.gateways[0]
    recipes = [tx for tx in gateway.tangle
               if tx.kind == "data" and DataProtector.is_encrypted(tx.payload)]
    print(f"machine-parameter transactions on the public tangle: "
          f"{len(recipes)} (all encrypted)")

    # Factory B sees the data exists but cannot read it.
    factory_b_reader = DataProtector()
    try:
        factory_b_reader.unprotect(recipes[0].payload)
    except KeyError:
        print("factory B (no key): cannot decrypt the recipes - "
              "confidentiality holds on the transparent ledger")

    # Factory A's manager shares the group key with factory B's manager
    # over the same three-message protocol used for devices (Fig. 4):
    # B's manager is just another identity with a (PK, SK) pair.
    factory_b_manager = KeyPair.generate(seed=b"factory-b-manager")
    distributor: ManagerKeyDistributor = system.manager.distributor
    agent = DeviceKeyAgent(factory_b_manager, system.manager.acl.manager)
    now = system.scheduler.clock.now()
    session, m1 = distributor.initiate(factory_b_manager.public, now=now)
    m2 = agent.handle_m1(m1, now=now + 0.1)
    m3 = distributor.handle_m2(session, m2, now=now + 0.2)
    group = agent.handle_m3(m3, now=now + 0.3)
    print(f"\ncross-factory key distribution complete (group {group!r})")

    # Factory B now reads the recipes straight off the ledger.
    factory_b_reader.install_key(group, agent.key_for(group))
    decoded = [factory_b_reader.unprotect(tx.payload) for tx in recipes]
    codes = [int(r.value) for r in decoded if r.sensor_type == "machine-status"]
    print(f"factory B decrypted {len(decoded)} recipe transactions; "
          f"operating codes observed: {sorted(set(codes))}")

    # The data is trustworthy because it is signed and tamper-proof:
    # every recipe transaction verifies against its issuer's key.
    assert all(tx.verify_signature() and tx.verify_pow() for tx in recipes)
    print("every shared transaction verifies (signature + PoW): "
          "trust across factories without a third party")

    # Revocation story: rotate the group key; factory B must re-request.
    distributor.rotate_group_key(group)
    print("\nfactory A rotated the group key - future recipes use the new "
          "key, factory B's access to new data is revoked until re-granted")


if __name__ == "__main__":
    main()
