#!/usr/bin/env python3
"""The paper's smart-factory case study, end to end (Figs. 3 and 6).

Builds one manager, two gateways and six wireless sensors over the
simulated network, runs the five-step workflow of Fig. 6, then lets the
factory report for two simulated minutes and prints what the ledger
holds.

Run:  python examples/smart_factory.py
"""

from repro.analysis.metrics import format_table
from repro.core.authority import DataProtector
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.core.workflow import run_workflow


def main():
    config = BIoTConfig(
        gateway_count=2,
        device_count=6,
        report_interval=3.0,
        initial_difficulty=8,
        seed=2026,
    )
    system = BIoTSystem.build(config)
    print(f"built factory: 1 manager, {config.gateway_count} gateways, "
          f"{config.device_count} devices\n")

    report = run_workflow(system, report_seconds=120.0)
    print(report.format())

    # Keep the factory running a little longer and let gossip settle.
    system.run_for(10.0)

    print("\nper-device status:")
    rows = []
    for device in system.devices:
        rows.append((
            device.address,
            device.sensor.sensor_type,
            "yes" if device.sensor.sensitive else "no",
            device.stats.submissions_accepted,
            f"{device.stats.mean_pow_seconds:.3f}",
            device.stats.assigned_difficulties[-1],
        ))
    print(format_table(rows, headers=[
        "device", "sensor", "sensitive", "accepted", "mean PoW (s)",
        "difficulty now",
    ]))

    # The manager (key authority) audits the sensitive streams.
    authority = DataProtector({
        "sensitive": system.manager.distributor.group_key()
    })
    gateway = system.gateways[0]
    encrypted = plain = 0
    sample = None
    for tx in gateway.tangle:
        if tx.kind != "data":
            continue
        if DataProtector.is_encrypted(tx.payload):
            encrypted += 1
            sample = authority.unprotect(tx.payload)
        else:
            plain += 1
    print(f"\nledger on {gateway.address}: {plain} plaintext readings, "
          f"{encrypted} encrypted readings")
    if sample is not None:
        print(f"decrypted sample (authority only): {sample}")

    summary = system.summary()
    print(f"\nreplicas converged: "
          f"{sorted(set(summary['tangle_sizes'].values()))} transactions "
          f"on every full node")
    print(f"messages delivered: {summary['messages_delivered']}, "
          f"dropped: {summary['messages_dropped']}")


if __name__ == "__main__":
    main()
