#!/usr/bin/env python3
"""Storage control and new-gateway bootstrap (paper §VIII future work).

The paper closes with two open problems: "sensor data quality control"
and "storage limitations".  This example demonstrates the storage
answer built into this reproduction:

1. run a factory long enough to accumulate history;
2. take a **local snapshot** on a gateway — deeply confirmed, old
   transactions are pruned; the cut surface becomes entry points;
3. serialise the snapshot (what a constrained gateway persists);
4. **bootstrap a brand-new gateway** from that snapshot and let
   anti-entropy sync fetch whatever arrived after it was taken;
5. show the new gateway serving devices immediately.

Run:  python examples/storage_and_bootstrap.py
"""

import random

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.nodes.full_node import FullNode
from repro.nodes.snapshot import NodeSnapshot


def main():
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=99,
        initial_difficulty=6, report_interval=1.5,
    ))
    system.initialize()
    system.start_devices()
    system.run_for(120.0)
    gateway = system.gateways[0]
    print(f"after 120 s the ledger holds {gateway.tangle_size} transactions "
          f"on {gateway.address}")

    # --- 2. local snapshot (DAG + derived ACL/ledger/credit state) ----------
    now = system.scheduler.clock.now()
    snapshot = gateway.export_snapshot(now=now, keep_recent_seconds=30.0,
                                       min_weight_to_prune=5)
    pruned = snapshot.tangle.pruned_count
    retained = snapshot.tangle.retained_count
    ratio = pruned / (pruned + retained)
    print(f"snapshot: pruned {pruned}, retained {retained} "
          f"(+{len(snapshot.tangle.entry_points)} entry points) - "
          f"{ratio * 100:.0f} % of history dropped")

    # --- 3. serialise -------------------------------------------------------
    encoded = snapshot.to_json()
    print(f"serialised snapshot: {len(encoded) / 1024:.1f} KiB")
    snapshot = NodeSnapshot.from_json(encoded)  # round-trip

    # --- 4. bootstrap a new gateway -----------------------------------------
    from repro.core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
    # The newcomer must run the same difficulty policy as its peers
    # (D0=6 here) or the replicas would disagree on requirements.
    newcomer = FullNode.bootstrap_from_snapshot(
        "gateway-new", snapshot,
        consensus=CreditBasedConsensus(
            policy=InverseDifficultyPolicy(initial_difficulty=6)),
        rng=random.Random(5),
    )
    system.network.attach(newcomer)
    for peer in [system.manager] + system.gateways:
        newcomer.add_peer(peer.address)
        peer.add_peer(newcomer.address)
    print(f"new gateway starts with {newcomer.tangle_size} transactions "
          f"from the snapshot")

    newcomer.request_sync(gateway.address)
    system.run_for(5.0)
    print(f"after anti-entropy sync: {newcomer.tangle_size} transactions "
          f"({newcomer.stats.sync_transactions_received} fetched)")

    # --- 5. serve devices ----------------------------------------------------
    migrated = system.devices[0]
    migrated.gateway = "gateway-new"
    before = migrated.stats.submissions_accepted
    system.run_for(30.0)
    print(f"device {migrated.address} re-homed to the new gateway: "
          f"{migrated.stats.submissions_accepted - before} submissions "
          f"accepted through it")

    # Replicas agree on the recent region.
    recent = {tx.tx_hash for tx in gateway.tangle
              if gateway.tangle.arrival_time(tx.tx_hash) > now - 30.0}
    have = {tx.tx_hash for tx in newcomer.tangle}
    print(f"recent-region coverage on the newcomer: "
          f"{len(recent & have)}/{len(recent)}")


if __name__ == "__main__":
    main()
