#!/usr/bin/env python3
"""Token transfers on the tangle: wallets, payments, double-spend
arbitration.

The paper's threat model includes double-spending, which presupposes a
token economy on the ledger.  This example exercises that layer
directly: devices hold genesis token allocations, pay each other for
shared machine recipes through :class:`~repro.tangle.wallet.Wallet`,
and a rogue wallet demonstrates how the deterministic conflict
arbitration (lowest hash wins) plus credit punishment resolve a
double-spend race.

Run:  python examples/token_economy.py
"""

import random

from repro.analysis.metrics import format_table
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.tangle.wallet import Wallet


def main():
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=77,
        initial_difficulty=6, report_interval=2.0,
        token_allocation=1000,
    ))
    system.initialize()
    gateway = system.gateways[0]
    rng = random.Random(3)

    # Wallets for every device, seeded from the genesis allocation.
    wallets = {
        address: Wallet(keys, initial_balance=1000)
        for address, keys in system.device_keys.items()
    }
    addresses = sorted(wallets)
    print("initial balances:",
          {a: gateway.ledger.balance(w.account_id)
           for a, w in wallets.items()})

    # --- honest payments -----------------------------------------------------
    # device-0 sells its machine recipe to the other three for 50 each;
    # buyers pay through the tangle.
    seller = wallets[addresses[0]]
    for buyer_address in addresses[1:]:
        buyer = wallets[buyer_address]
        branch, trunk = gateway.tip_selector.select(gateway.tangle,
                                                    rng)
        now = system.scheduler.clock.now()
        difficulty = gateway.consensus.required_difficulty(
            buyer.account_id, now)
        tx = buyer.build_transfer(
            seller.account_id, 50, timestamp=now,
            branch=branch, trunk=trunk, difficulty=difficulty,
        )
        ok = gateway.ingest_local(tx)
        print(f"{buyer_address} pays 50 -> {addresses[0]}: "
              f"{'accepted' if ok else 'rejected'}")
        system.run_for(1.0)

    system.run_for(3.0)
    rows = [
        (address, gateway.ledger.balance(wallet.account_id),
         wallet.available_balance)
        for address, wallet in wallets.items()
    ]
    print(format_table(rows, headers=[
        "account", "ledger balance", "wallet view"]))

    # --- the double-spend race ------------------------------------------------
    # device-1 tries to pay the SAME sequence slot to two recipients.
    rogue = wallets[addresses[1]]
    rogue.reconcile(gateway.ledger)
    sequence_before = rogue.next_sequence
    branch, trunk = gateway.tip_selector.select(gateway.tangle, rng)
    now = system.scheduler.clock.now()
    difficulty = gateway.consensus.required_difficulty(rogue.account_id, now)
    honest_payment = rogue.build_transfer(
        wallets[addresses[2]].account_id, 100, timestamp=now,
        branch=branch, trunk=trunk, difficulty=difficulty,
    )
    # Forge the conflicting twin by hand (the Wallet refuses to reuse a
    # sequence — that is the point of having it).
    from repro.tangle.ledger import TransferPayload
    from repro.tangle.transaction import Transaction, TransactionKind
    twin_payload = TransferPayload(
        sender=rogue.account_id,
        recipient=wallets[addresses[3]].account_id,
        amount=100, sequence=sequence_before,
    )
    twin = Transaction.create(
        rogue.keypair, kind=TransactionKind.TRANSFER,
        payload=twin_payload.to_bytes(), timestamp=now,
        branch=branch, trunk=trunk, difficulty=difficulty,
    )
    gateway.ingest_local(honest_payment)
    system.gateways[1].ingest_local(twin)  # race via the other gateway
    system.run_for(5.0)

    winner = gateway.ledger.spent_tx(rogue.account_id, sequence_before)
    expected = min(honest_payment.tx_hash, twin.tx_hash)
    print(f"\ndouble-spend race: slot {sequence_before} won by "
          f"{winner.hex()[:8]} (deterministic lowest hash: "
          f"{expected.hex()[:8]})")
    conflicts = sum(len(n.ledger.conflicts)
                    for n in [system.manager] + system.gateways)
    print(f"conflicts recorded across replicas: {conflicts}")
    malice = max(
        n.consensus.registry.malicious_count(rogue.account_id)
        for n in [system.manager] + system.gateways
    )
    print(f"rogue wallet's malice records: {malice} "
          f"(its next PoW difficulty: "
          f"{gateway.consensus.required_difficulty(rogue.account_id, system.scheduler.clock.now())})")

    # Every replica agrees on the final balances.
    final = {
        node.address: node.ledger.balance(rogue.account_id)
        for node in [system.manager] + system.gateways
    }
    assert len(set(final.values())) == 1, final
    print(f"replicas agree on the rogue's balance: "
          f"{next(iter(final.values()))}")


if __name__ == "__main__":
    main()
