#!/usr/bin/env python3
"""Quickstart: the B-IoT pieces in five minutes, no network simulation.

Walks through the paper's building blocks directly against the library
API: identities, a tangle, credit-based PoW difficulty, the Fig. 4 key
distribution handshake, and encrypted sensor payloads.

Run:  python examples/quickstart.py
"""

import random

from repro.analysis.metrics import format_table
from repro.core.authority import DataProtector, DeviceKeyAgent, ManagerKeyDistributor
from repro.core.consensus import CreditBasedConsensus
from repro.core.credit import MaliciousBehaviour
from repro.crypto.keys import KeyPair
from repro.devices.sensors import PowerMeterSensor
from repro.tangle.tangle import Tangle
from repro.tangle.tip_selection import UniformRandomTipSelector
from repro.tangle.transaction import Transaction


def main():
    rng = random.Random(42)

    # --- identities: every node owns a (PK, SK) pair -------------------
    manager = KeyPair.generate(seed=b"quickstart-manager")
    device = KeyPair.generate(seed=b"quickstart-device")
    print(f"manager identity: {manager.short_id}")
    print(f"device identity:  {device.short_id}")

    # --- a tangle seeded by the manager's genesis -----------------------
    genesis = Transaction.create_genesis(manager)
    tangle = Tangle(genesis)
    selector = UniformRandomTipSelector()

    # --- credit-based PoW: difficulty follows behaviour -----------------
    consensus = CreditBasedConsensus()
    print("\nsubmitting 10 readings; watch the difficulty fall:")
    rows = []
    for i in range(10):
        now = float(i * 3)
        difficulty = consensus.required_difficulty(device.node_id, now)
        branch, trunk = selector.select(tangle, rng)
        tx = Transaction.create(
            device, kind="data", payload=f"reading-{i}".encode(),
            timestamp=now, branch=branch, trunk=trunk,
            difficulty=difficulty,
        )
        result = tangle.attach(tx, arrival_time=now)
        consensus.observe_attach(result)
        rows.append((i, now, difficulty, tangle.tip_count))
    print(format_table(rows, headers=["tx", "time (s)", "difficulty", "tips"]))

    # --- misbehaviour is punished ---------------------------------------
    consensus.registry.record_malicious(
        device.node_id, MaliciousBehaviour.DOUBLE_SPENDING, 30.0)
    punished = consensus.required_difficulty(device.node_id, 30.5)
    recovered = consensus.required_difficulty(device.node_id, 300.0)
    print(f"\nafter a double spend the difficulty jumps to {punished}, "
          f"recovering to {recovered} after ~5 minutes")

    # --- Fig. 4 key distribution + encrypted payloads --------------------
    distributor = ManagerKeyDistributor(manager)
    agent = DeviceKeyAgent(device, manager.public)
    session, m1 = distributor.initiate(device.public, now=0.0)
    m2 = agent.handle_m1(m1, now=0.1)
    m3 = distributor.handle_m2(session, m2, now=0.2)
    group = agent.handle_m3(m3, now=0.3)
    print(f"\nkey distribution complete for group {group!r}")

    protector = DataProtector({group: agent.key_for(group)})
    reading = PowerMeterSensor(seed=1).read(33.0)
    payload = protector.protect(reading)
    print(f"sensitive power reading encrypted: {len(payload)} bytes on ledger")
    print(f"decrypted by key holder: {protector.unprotect(payload)}")
    try:
        DataProtector().unprotect(payload)
    except KeyError:
        print("outsider without the key: access denied (as designed)")


if __name__ == "__main__":
    main()
