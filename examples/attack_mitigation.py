#!/usr/bin/env python3
"""Attack mitigation demo: all four threats of Section III at once.

Runs a factory with a lazy-tips node, a double-spending node, a Sybil
swarm and a DDoS flood against one gateway (followed by failover), and
shows how each defence responds:

* lazy tips / double spending -> credit collapses, PoW difficulty
  explodes (credit-based consensus);
* Sybil identities -> starved by the manager's authorisation list;
* gateway loss -> devices fail over, no data is lost (replication).

Run:  python examples/attack_mitigation.py
"""

import random

from repro.analysis.metrics import format_table
from repro.attacks.ddos import DDoSAttacker, failover_devices
from repro.attacks.double_spend import DoubleSpendAttacker
from repro.attacks.lazy_tips import LazyLightNode
from repro.attacks.sybil import SybilAttacker
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair
from repro.devices.sensors import TemperatureSensor


def main():
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=1337,
        initial_difficulty=6, report_interval=2.0,
    ))

    # -- wire in the attackers --------------------------------------------
    lazy_keys = KeyPair.generate(seed=b"demo-lazy")
    lazy = LazyLightNode(
        "lazy-node", lazy_keys, gateway="gateway-0",
        manager=system.manager.acl.manager,
        sensor=TemperatureSensor(seed=50), report_interval=2.0,
        rng=random.Random(1),
        fixed_branch=system.manager.tangle.genesis.tx_hash,
    )
    system.network.attach(lazy)

    spender_keys = KeyPair.generate(seed=b"demo-spender")
    spender = DoubleSpendAttacker(
        "double-spender", spender_keys,
        gateways=["gateway-0", "gateway-1"],
        recipients=[k.public for k in system.device_keys.values()][:2],
        attack_interval=10.0, rng=random.Random(2),
    )
    system.network.attach(spender)

    sybil = SybilAttacker("sybil-host", gateway="gateway-1",
                          identity_count=10, request_interval=1.0,
                          rng=random.Random(3), seed=99)
    system.network.attach(sybil)

    # The lazy node and the spender are *authorised* (insider threats);
    # the Sybil swarm is not.
    system.manager.authorize_devices(
        [k.public for k in system.device_keys.values()]
        + [lazy_keys.public, spender_keys.public]
    )
    for node in [system.manager] + system.gateways:
        node.ledger.credit(spender_keys.node_id, 100)
    for device in system.devices:
        if device.sensor.sensitive:
            system.manager.distribute_key(device.address,
                                          device.keypair.public)
    system.run_for(2.0)

    # -- phase 1: everything attacks at once -------------------------------
    print("phase 1: 120 s with lazy-tips, double-spend and Sybil attacks")
    for device in system.devices:
        device.start()
    lazy.start()
    spender.start()
    sybil.start()
    system.run_for(120.0)

    gateway = system.gateways[0]
    rows = [
        ("honest (best)",
         max(d.stats.submissions_accepted for d in system.devices),
         min(d.stats.assigned_difficulties[-1] for d in system.devices),
         0),
        ("lazy-tips node",
         lazy.stats.submissions_accepted,
         lazy.stats.assigned_difficulties[-1] if lazy.stats.assigned_difficulties else "-",
         max(n.consensus.registry.malicious_count(lazy_keys.node_id)
             for n in [system.manager] + system.gateways)),
        ("double spender",
         spender.stats.accepted,
         spender.stats.assigned_difficulties[-1] if spender.stats.assigned_difficulties else "-",
         max(n.consensus.registry.malicious_count(spender_keys.node_id)
             for n in [system.manager] + system.gateways)),
    ]
    print(format_table(rows, headers=[
        "actor", "accepted txs", "difficulty now", "malice records",
    ]))
    print(f"\nSybil swarm: {sybil.stats.tip_requests_sent} tip requests, "
          f"{sybil.stats.tips_granted} granted, "
          f"{sybil.stats.submissions_accepted} transactions accepted "
          f"(ACL held)")
    conflicts = sum(len(n.ledger.conflicts)
                    for n in [system.manager] + system.gateways)
    print(f"double-spend conflicts detected across replicas: {conflicts}")

    # -- phase 2: DDoS + failover ------------------------------------------
    print("\nphase 2: DDoS takes gateway-0 down; devices fail over")
    ddos = DDoSAttacker("ddos-host", victim="gateway-0", burst_size=100,
                        burst_interval=0.2, rng=random.Random(4))
    system.network.attach(ddos)
    ddos.start()
    system.run_for(5.0)
    system.network.take_down("gateway-0")  # the flood wins; box dies
    moved = failover_devices(system.devices, from_gateway="gateway-0",
                             to_gateway="gateway-1")
    before = sum(d.stats.submissions_accepted for d in system.devices)
    system.run_for(30.0)
    after = sum(d.stats.submissions_accepted for d in system.devices)
    print(f"devices re-homed: {moved}; submissions during outage: "
          f"{after - before} (service availability held)")

    survivor = system.gateways[1]
    lost = {tx.tx_hash for tx in gateway.tangle if tx.kind == "data"} \
        - {tx.tx_hash for tx in survivor.tangle}
    print(f"data transactions lost to the crash: {len(lost)} "
          f"(replicated ledger)")


if __name__ == "__main__":
    main()
