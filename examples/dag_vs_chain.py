#!/usr/bin/env python3
"""DAG-structured vs chain-structured blockchain throughput (Section II).

The paper's architectural argument: the tangle's asynchronous consensus
lets every device attach transactions in parallel, while a chain
serialises them through block mining and makes clients wait for burial
(six-block security) before trusting anything.

Fairness frame used here:

* equal aggregate hash power — the chain's miner gets the *sum* of the
  hash rates of all the tangle devices (a chain cannot usefully split
  mining across IoT devices: competing miners just fork);
* comparable work per ledger transaction — the chain's per-block
  difficulty is the tangle's per-transaction difficulty plus
  log2(block size), so each substrate spends the same expected hashes
  per transaction carried;
* fork avoidance — a chain must keep its block interval much larger
  than network propagation or competing blocks orphan each other
  (Fig. 1), so block production is throttled to MIN_BLOCK_INTERVAL.
  The tangle has no such constraint: forks *are* the data structure.

Reported: time for the full workload to be *on* the ledger, and time
for it to be *confirmed* (cumulative weight >= 6 for the tangle,
six-block burial for the chain).

Run:  python examples/dag_vs_chain.py
"""

import math
import random

from repro.analysis.metrics import format_table
from repro.analysis.workloads import confirmation_times, grow_parallel_tangle
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.miner import Miner
from repro.crypto.keys import KeyPair
from repro.devices.clock import SimulatedClock
from repro.devices.profiles import RASPBERRY_PI_3B, DeviceProfile
from repro.pow.engine import PowEngine
from repro.tangle.transaction import Transaction, ZERO_HASH

DEVICES = 8
TX_PER_DEVICE = 25
TANGLE_DIFFICULTY = 8                     # per-transaction PoW
CHAIN_BLOCK_SIZE = 8
CHAIN_BLOCK_DIFFICULTY = TANGLE_DIFFICULTY + int(math.log2(CHAIN_BLOCK_SIZE))
CONFIRMATION_WEIGHT = 6                   # the six-block analogue
MIN_BLOCK_INTERVAL = 5.0                  # ~10x gateway propagation delay


def run_tangle():
    """Each device grinds its own PoW in parallel.

    Returns (makespan, mean confirmation latency, throughput).
    """
    growth = grow_parallel_tangle(
        device_count=DEVICES, tx_per_device=TX_PER_DEVICE,
        difficulty=TANGLE_DIFFICULTY, seed=1,
    )
    latencies = confirmation_times(growth, threshold=CONFIRMATION_WEIGHT)
    mean_latency = sum(latencies) / len(latencies)
    return growth.makespan, mean_latency, growth.throughput


def run_chain():
    """All transactions queue at one miner with the aggregate hash rate."""
    aggregate = DeviceProfile(
        name="chain-aggregate-miner",
        hash_rate=RASPBERRY_PI_3B.hash_rate * DEVICES,
        pow_overhead_s=RASPBERRY_PI_3B.pow_overhead_s,
        aes_bytes_per_second=RASPBERRY_PI_3B.aes_bytes_per_second,
        signature_seconds=RASPBERRY_PI_3B.signature_seconds,
        is_full_node_capable=True,
    )
    miner_keys = KeyPair.generate(seed=b"cmp-miner")
    chain = Blockchain(Block.mine_genesis(miner_keys))
    clock = SimulatedClock()
    engine = PowEngine(aggregate, clock, rng=random.Random(7))
    miner = Miner(miner_keys, chain, engine,
                  block_difficulty=CHAIN_BLOCK_DIFFICULTY,
                  max_block_transactions=CHAIN_BLOCK_SIZE)
    for d in range(DEVICES):
        keys = KeyPair.generate(seed=f"cmp-device-{d}".encode())
        for i in range(TX_PER_DEVICE):
            miner.submit(Transaction.create(
                keys, kind="data", payload=f"d{d}-tx{i}".encode(),
                timestamp=0.0, branch=ZERO_HASH, trunk=ZERO_HASH,
                difficulty=1,
            ))
    block_times = []
    last_block_at = 0.0
    while miner.mempool:
        # Fork avoidance: do not release blocks faster than the network
        # can propagate them.
        earliest = last_block_at + MIN_BLOCK_INTERVAL
        if clock.now() < earliest:
            clock.advance(earliest - clock.now())
        block = miner.mine_next_block()
        last_block_at = clock.now()
        block_times.append((block, clock.now()))
    makespan = clock.now()
    total = sum(len(b.transactions) for b, _ in block_times)
    # Six-block confirmation: a tx in block i confirms when block i+5
    # is mined (its block plus five successors on top).
    latencies = []
    for i, (block, mined_at) in enumerate(block_times):
        burial_index = i + CONFIRMATION_WEIGHT - 1
        if burial_index >= len(block_times):
            continue
        confirmed_at = block_times[burial_index][1]
        latencies.extend([confirmed_at] * len(block.transactions))
    mean_latency = sum(latencies) / len(latencies) if latencies else float("nan")
    return makespan, mean_latency, total / makespan


def main():
    print(f"workload: {DEVICES} devices x {TX_PER_DEVICE} transactions; "
          f"equal aggregate hash power; equal expected work per tx\n")

    dag_makespan, dag_latency, dag_tps = run_tangle()
    chain_makespan, chain_latency, chain_tps = run_chain()

    rows = [
        ("tangle (DAG)", f"{dag_makespan:.1f}", f"{dag_latency:.1f}",
         f"{dag_tps:.2f}"),
        ("chain", f"{chain_makespan:.1f}", f"{chain_latency:.1f}",
         f"{chain_tps:.2f}"),
    ]
    print(format_table(rows, headers=[
        "substrate", "makespan (s)", "mean confirm latency (s)",
        "throughput (tx/s)",
    ]))
    print(f"\nDAG throughput advantage: {dag_tps / chain_tps:.1f}x; "
          f"confirmation latency advantage: "
          f"{chain_latency / dag_latency:.1f}x")
    print("(the chain serialises mining and confirmation waits for "
          "burial; tangle device PoW overlaps and approvals accumulate "
          "continuously)")


if __name__ == "__main__":
    main()
