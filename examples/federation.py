#!/usr/bin/env python3
"""A two-factory federation on one public tangle (Section IV-A).

"In each smart factory, the existence of one or more managers are
permitted" — this example hard-codes two factory managers into one
genesis.  Each factory runs its own manager (full node), authorises its
own devices and distributes its own group key, yet every transaction
lands on one shared, mutually replicated ledger — the paper's
"break down these monolithic data siloes" story, end to end.

Run:  python examples/federation.py
"""

import random

from repro.analysis.metrics import format_table
from repro.core.authority import BadSignatureError, DataProtector
from repro.core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
from repro.crypto.keys import KeyPair
from repro.devices.sensors import PowerMeterSensor, TemperatureSensor
from repro.network.network import Network
from repro.network.simulator import EventScheduler
from repro.network.transport import BACKBONE_LINK, WIRELESS_SENSOR_LINK
from repro.nodes.light_node import LightNode
from repro.nodes.manager import ManagerNode


def consensus():
    return CreditBasedConsensus(
        policy=InverseDifficultyPolicy(initial_difficulty=6))


def main():
    manager_a_keys = KeyPair.generate(seed=b"fed-example-a")
    manager_b_keys = KeyPair.generate(seed=b"fed-example-b")

    # One genesis, two trust anchors.
    genesis = ManagerNode.create_genesis(
        manager_a_keys, network_name="two-factory-federation",
        extra_managers=[manager_b_keys.public],
    )

    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(17))
    factory_a = ManagerNode("factory-a", manager_a_keys, genesis,
                            consensus=consensus(), rng=random.Random(1))
    factory_b = ManagerNode("factory-b", manager_b_keys, genesis,
                            consensus=consensus(), rng=random.Random(2))
    for node in (factory_a, factory_b):
        network.attach(node)
    factory_a.add_peer("factory-b")
    factory_b.add_peer("factory-a")
    network.set_link("factory-a", "factory-b", BACKBONE_LINK)

    # Each factory fields two devices, homed on its own manager node.
    devices = []
    for factory, sensor_cls, offset in (
        (factory_a, TemperatureSensor, 0),
        (factory_a, PowerMeterSensor, 1),
        (factory_b, TemperatureSensor, 2),
        (factory_b, PowerMeterSensor, 3),
    ):
        keys = KeyPair.generate(seed=f"fed-device-{offset}".encode())
        device = LightNode(
            f"device-{offset}", keys, gateway=factory.address,
            manager=factory.keypair.public,
            sensor=sensor_cls(seed=offset),
            report_interval=2.0, rng=random.Random(50 + offset),
        )
        network.attach(device)
        network.set_link(device.address, factory.address,
                         WIRELESS_SENSOR_LINK)
        devices.append((factory, device))

    # Each manager authorises ITS OWN devices and distributes ITS OWN key.
    for factory in (factory_a, factory_b):
        own = [d.keypair.public for f, d in devices if f is factory]
        factory.authorize_devices(own)
    scheduler.run_until(scheduler.clock.now() + 2.0)
    for factory, device in devices:
        if device.sensor.sensitive:
            factory.distribute_key(device.address, device.keypair.public)
    scheduler.run_until(scheduler.clock.now() + 2.0)

    for _, device in devices:
        device.start()
    scheduler.run_until(scheduler.clock.now() + 60.0)

    rows = []
    for factory, device in devices:
        rows.append((
            device.address, factory.address, device.sensor.sensor_type,
            device.stats.submissions_accepted,
        ))
    print(format_table(rows, headers=[
        "device", "factory", "sensor", "accepted"]))

    hashes_a = {tx.tx_hash for tx in factory_a.tangle}
    hashes_b = {tx.tx_hash for tx in factory_b.tangle}
    print(f"\nshared ledger: factory A holds {len(hashes_a)} txs, "
          f"factory B holds {len(hashes_b)}, "
          f"difference {len(hashes_a.symmetric_difference(hashes_b))}")

    # Confidentiality is per-factory: A cannot read B's sensitive data.
    b_key = factory_b.distributor.group_key()
    a_key = factory_a.distributor.group_key()
    assert a_key != b_key
    reader_a = DataProtector({"sensitive": a_key})
    unreadable = 0
    readable = 0
    for tx in factory_a.tangle:
        if not DataProtector.is_encrypted(tx.payload):
            continue
        try:
            reader_a.unprotect(tx.payload)
            readable += 1
        except BadSignatureError:
            # Both factories label their group "sensitive", but the keys
            # differ: B's envelopes fail A's authentication check.
            unreadable += 1
    print(f"factory A's key opens {readable} encrypted payloads "
          f"(its own) and fails on {unreadable} (factory B's) - "
          f"one ledger, separate confidentiality domains")


if __name__ == "__main__":
    main()
