"""Ext-4 — tip-selection behaviour and lazy-tip resistance.

The threat model warns that a lazy node "can artificially inflate the
number of tips by issuing many transactions that verify a fixed pair of
transactions ... making it possible for future transactions to select
these tips with very high probability, abandoning the tips belonging to
honest nodes".

This bench grows a tangle with a configurable fraction of lazy traffic
and measures, for the uniform-random selector (the paper's baseline)
and the weighted MCMC walk at several α values:

* how much of the honest selectors' approval goes to the lazy spam;
* the size of the tip pool (inflation).
"""

import random

from repro.analysis.metrics import format_table
from repro.crypto.keys import KeyPair
from repro.tangle.tangle import Tangle
from repro.tangle.tip_selection import (
    TipSelector,
    UniformRandomTipSelector,
    WeightedRandomWalkSelector,
)
from repro.tangle.transaction import Transaction

HONEST_TX = 150
LAZY_TX = 50

HONEST = KeyPair.generate(seed=b"ext4-honest")
LAZY = KeyPair.generate(seed=b"ext4-lazy")


def _grow_tangle(selector: TipSelector, seed: int):
    """Grow a tangle with interleaved honest and lazy traffic; return
    (tangle, lazy spam hashes)."""
    rng = random.Random(seed)
    genesis = Transaction.create_genesis(HONEST)
    tangle = Tangle(genesis)
    lazy_hashes = set()
    lazy_budget = LAZY_TX
    honest_budget = HONEST_TX
    t = 0.0
    while honest_budget or lazy_budget:
        t += 0.5
        lazy_turn = lazy_budget and (not honest_budget or rng.random() < 0.25)
        if lazy_turn:
            tx = Transaction.create(
                LAZY, kind="data", payload=f"lazy-{lazy_budget}".encode(),
                timestamp=t, branch=genesis.tx_hash, trunk=genesis.tx_hash,
                difficulty=1,
            )
            lazy_budget -= 1
            tangle.attach(tx, arrival_time=t)
            lazy_hashes.add(tx.tx_hash)
        else:
            branch, trunk = selector.select(tangle, rng)
            tx = Transaction.create(
                HONEST, kind="data",
                payload=f"honest-{honest_budget}".encode(),
                timestamp=t, branch=branch, trunk=trunk, difficulty=1,
            )
            honest_budget -= 1
            tangle.attach(tx, arrival_time=t)
    return tangle, lazy_hashes


def _spam_approval_share(tangle, lazy_hashes) -> float:
    """Fraction of honest approvals that point at lazy spam."""
    spam_approvals = 0
    total_approvals = 0
    for tx in tangle:
        if tx.is_genesis or tx.issuer.node_id == LAZY.node_id:
            continue
        for parent in (tx.branch, tx.trunk):
            total_approvals += 1
            if parent in lazy_hashes:
                spam_approvals += 1
    return spam_approvals / total_approvals


def _sweep():
    selectors = [
        ("uniform", UniformRandomTipSelector()),
        ("mcmc a=0.01", WeightedRandomWalkSelector(alpha=0.01)),
        ("mcmc a=0.1", WeightedRandomWalkSelector(alpha=0.1)),
        ("mcmc a=1.0", WeightedRandomWalkSelector(alpha=1.0)),
    ]
    rows = []
    for name, selector in selectors:
        tangle, lazy_hashes = _grow_tangle(selector, seed=11)
        share = _spam_approval_share(tangle, lazy_hashes)
        unapproved_spam = sum(1 for h in lazy_hashes if tangle.is_tip(h))
        rows.append((name, share, tangle.tip_count, unapproved_spam))
    return rows


def test_bench_ext4_tip_selection(benchmark, report_writer):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    formatted = [
        (name, f"{share * 100:.1f} %", tips, unapproved)
        for name, share, tips, unapproved in rows
    ]
    report_writer("ext4_tip_selection", format_table(formatted, headers=[
        "selector", "approvals wasted on spam", "final tip pool",
        "spam left unapproved",
    ]))

    by_name = {name: (share, tips, unapproved)
               for name, share, tips, unapproved in rows}
    uniform_share = by_name["uniform"][0]
    strong_share = by_name["mcmc a=1.0"][0]
    # The weight-biased walk starves the parasitic spam relative to the
    # uniform baseline...
    assert strong_share < uniform_share
    # ...and leaves (strictly more of) the spam unapproved at the end.
    assert by_name["mcmc a=1.0"][2] >= by_name["uniform"][2]
