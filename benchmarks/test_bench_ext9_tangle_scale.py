"""Ext-9 — tangle hot-path scaling: batched weights and bounded walks.

The seed's eager engine re-walked every ancestor on each attach
(O(|past cone|) per transaction, quadratic over a growth run) and the
weighted walk entered at genesis (O(height) per tip selection).  This
bench measures both replacements on identical pre-built DAGs:

* **attach throughput** — eager (``weight_flush_interval=1``, the old
  behaviour) vs batched-lazy (default interval) at 1k/10k, plus the
  lazy engine alone at 50k where eager is impractical;
* **walk latency** — milestone-bounded entry (``start_depth=20``) vs a
  genesis entry (``start_depth`` larger than any height) at each size;
* **differential check** — eager and lazy report identical ``weight()``
  for every probed transaction, so the speedup is not buying wrong
  answers.

Emits ``benchmarks/out/BENCH_tangle_scale.json`` for EXPERIMENTS.md.

Transactions are pre-built unsigned outside the timed regions (pure-
Python Ed25519 would dominate the measurement; the bare ``Tangle`` runs
no validators so signatures are never checked).
"""

import json
import pathlib
import random
import time

from repro.analysis.metrics import format_table
from repro.crypto.keys import KeyPair
from repro.tangle.tangle import DEFAULT_WEIGHT_FLUSH_INTERVAL, Tangle
from repro.tangle.tip_selection import WeightedRandomWalkSelector
from repro.tangle.transaction import Transaction
from repro.telemetry.registry import MetricsRegistry

OUT_DIR = pathlib.Path(__file__).parent / "out"

KEYS = KeyPair.generate(seed=b"ext9-bench")

SIZES = (1_000, 10_000, 50_000)
EAGER_SIZES = (1_000, 10_000)  # eager at 50k is quadratic — minutes
WALK_SAMPLES = 30
GENESIS_ENTRY_DEPTH = 10 ** 9  # deeper than any height -> genesis entry
TELEMETRY_SIZE = 10_000  # instrumented (untimed) replay for histograms


def _build_schedule(n, seed=5):
    """Pre-build *n* unsigned transactions approving recent arrivals."""
    rng = random.Random(seed)
    genesis = Transaction.create_genesis(KEYS)
    hashes = [genesis.tx_hash]
    txs = []
    for i in range(n):
        recent = hashes[-8:]
        branch, trunk = rng.choice(recent), rng.choice(recent)
        tx = Transaction(
            kind="data", issuer=KEYS.public, payload=f"b{i}".encode(),
            timestamp=float(i + 1), branch=branch, trunk=trunk,
            difficulty=1, nonce=0, signature=b"",
        )
        hashes.append(tx.tx_hash)
        txs.append(tx)
    return genesis, txs


def _timed_attach(genesis, txs, flush_interval):
    tangle = Tangle(genesis, weight_flush_interval=flush_interval)
    start = time.perf_counter()
    for tx in txs:
        tangle.attach(tx, arrival_time=tx.timestamp)
    tangle.flush_weights()  # charge any pending epoch to the run
    elapsed = time.perf_counter() - start
    return tangle, elapsed


def _walk_latency(tangle, start_depth):
    selector = WeightedRandomWalkSelector(alpha=0.05,
                                          start_depth=start_depth)
    rng = random.Random(11)
    start = time.perf_counter()
    for _ in range(WALK_SAMPLES):
        selector.select(tangle, rng)
    return (time.perf_counter() - start) / WALK_SAMPLES


def _histogram_dict(histogram):
    merged = histogram.merged()
    return {
        "buckets": list(histogram.buckets),
        "bucket_counts": merged.bucket_counts,
        "count": merged.count,
        "sum": merged.total,
        "mean": merged.mean,
        "min": merged.minimum if merged.count else None,
        "max": merged.maximum if merged.count else None,
    }


def _instrumented_replay(genesis, txs):
    """Re-run attaches and walks on a telemetry-enabled tangle.

    Kept out of the timed regions: the timed runs use the null registry
    (the production default), this pass only exists to capture the
    flush-batch-size and walk-length distributions for the JSON report.
    """
    registry = MetricsRegistry(record_events=False)
    tangle = Tangle(genesis, telemetry=registry)
    for tx in txs:
        tangle.attach(tx, arrival_time=tx.timestamp)
    tangle.flush_weights()
    selector = WeightedRandomWalkSelector(alpha=0.05, start_depth=20)
    rng = random.Random(11)
    for _ in range(WALK_SAMPLES):
        selector.select(tangle, rng)
    return {
        "flush_batch_size": _histogram_dict(
            registry.get("repro_tangle_flush_batch_size")),
        "walk_length": _histogram_dict(
            registry.get("repro_tangle_walk_length")),
        "attach_total": registry.get("repro_tangle_attach_total").total,
    }


def _run():
    results = {"sizes": list(SIZES), "attach": {}, "walk": {},
               "differential_probes": 0}
    schedules = {n: _build_schedule(n) for n in SIZES}
    lazy_tangles = {}

    for n in SIZES:
        genesis, txs = schedules[n]
        lazy, lazy_s = _timed_attach(genesis, txs,
                                     DEFAULT_WEIGHT_FLUSH_INTERVAL)
        lazy_tangles[n] = lazy
        entry = {"lazy_tx_per_s": n / lazy_s, "lazy_seconds": lazy_s}
        if n in EAGER_SIZES:
            eager, eager_s = _timed_attach(genesis, txs, 1)
            entry.update(eager_tx_per_s=n / eager_s,
                         eager_seconds=eager_s,
                         speedup=eager_s / lazy_s)
            # Differential: the fast engine must agree with the old one.
            probes = [genesis.tx_hash] + [
                tx.tx_hash for tx in txs[:: max(1, n // 200)]
            ]
            for h in probes:
                assert lazy.weight(h) == eager.weight(h)
            results["differential_probes"] += len(probes)
        results["attach"][str(n)] = entry

        results["walk"][str(n)] = {
            "bounded_ms": _walk_latency(lazy, 20) * 1000,
            "genesis_entry_ms":
                _walk_latency(lazy, GENESIS_ENTRY_DEPTH) * 1000,
            "max_height": lazy.max_height,
        }

    genesis, txs = schedules[TELEMETRY_SIZE]
    results["telemetry"] = _instrumented_replay(genesis, txs)
    return results


def test_bench_ext9_tangle_scale(benchmark, report_writer):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    attach_rows = []
    for n in SIZES:
        a = results["attach"][str(n)]
        attach_rows.append((
            n,
            f"{a.get('eager_tx_per_s', float('nan')):,.0f}"
            if "eager_tx_per_s" in a else "-",
            f"{a['lazy_tx_per_s']:,.0f}",
            f"{a['speedup']:.1f}x" if "speedup" in a else "-",
        ))
    walk_rows = [
        (n,
         f"{results['walk'][str(n)]['genesis_entry_ms']:.2f}",
         f"{results['walk'][str(n)]['bounded_ms']:.3f}",
         results["walk"][str(n)]["max_height"])
        for n in SIZES
    ]
    report = "\n\n".join([
        format_table(attach_rows, headers=[
            "transactions", "eager tx/s", "lazy tx/s", "speedup"]),
        format_table(walk_rows, headers=[
            "transactions", "genesis-entry walk ms",
            "bounded walk ms", "max height"]),
    ])
    report_writer("ext9_tangle_scale", report)

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_tangle_scale.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n")

    # Acceptance: >=5x attach throughput at 10k over the eager path,
    # with the differential probes above proving identical weights.
    assert results["attach"]["10000"]["speedup"] >= 5.0
    assert results["differential_probes"] > 0
    # Bounded walks must not degrade with DAG size the way genesis
    # entry does.
    walk_10k = results["walk"]["10000"]
    assert walk_10k["bounded_ms"] < walk_10k["genesis_entry_ms"]
    # The instrumented replay captured real distributions.
    telem = results["telemetry"]
    assert telem["attach_total"] == TELEMETRY_SIZE
    assert telem["flush_batch_size"]["count"] > 0
    # Each select() walks twice: once per parent (branch and trunk).
    assert telem["walk_length"]["count"] == 2 * WALK_SAMPLES
