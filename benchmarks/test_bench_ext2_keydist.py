"""Ext-2 — key-distribution cost (Section VI-B's dismissed term).

Paper claim: "key distribution will not be conducted frequently, even
only conducted once at the initialization of system, impact on
transaction can be ignored".

Reproduction: measure the full three-message Fig. 4 handshake (two
ECIES operations, two signature pairs, two symmetric envelopes) for
real, and compare a one-time handshake against the steady-state AES
cost of a day of sensor readings, confirming the amortised share is
negligible.
"""

import time

from repro.analysis.metrics import format_table
from repro.core.authority import DeviceKeyAgent, ManagerKeyDistributor
from repro.crypto.keys import KeyPair
from repro.devices.profiles import RASPBERRY_PI_3B

MANAGER = KeyPair.generate(seed=b"ext2-manager")
DEVICE = KeyPair.generate(seed=b"ext2-device")


def _full_handshake():
    distributor = ManagerKeyDistributor(MANAGER)
    agent = DeviceKeyAgent(DEVICE, MANAGER.public)
    session, m1 = distributor.initiate(DEVICE.public, now=0.0)
    m2 = agent.handle_m1(m1, now=0.1)
    m3 = distributor.handle_m2(session, m2, now=0.2)
    agent.handle_m3(m3, now=0.3)
    return agent.key_for()


def test_bench_ext2_handshake(benchmark):
    key = benchmark(_full_handshake)
    assert key is not None


def test_bench_ext2_amortisation(benchmark, report_writer):
    start = time.perf_counter()
    _full_handshake()
    handshake_seconds = time.perf_counter() - start

    def analysis():
        # A device posting one 1 KB sensitive reading every 3 s for a
        # day, on the Raspberry Pi model.
        readings_per_day = 86_400 / 3.0
        aes_day = readings_per_day * RASPBERRY_PI_3B.aes_seconds(1024)
        return readings_per_day, aes_day

    readings_per_day, aes_day = benchmark.pedantic(analysis, rounds=1,
                                                   iterations=1)
    share = handshake_seconds / (handshake_seconds + aes_day)
    rows = [
        ("one-time handshake (host, measured)", f"{handshake_seconds:.4f} s"),
        ("daily AES cost (RPi model, 1 KB/3 s)", f"{aes_day:.1f} s"),
        ("handshake share of day-1 crypto cost", f"{share * 100:.3f} %"),
    ]
    report_writer("ext2_keydist", format_table(rows, headers=[
        "quantity", "value",
    ]))
    # The paper's "can be ignored" claim: under 5% of even a single
    # day's encryption budget.
    assert share < 0.05
