"""Fig. 9 — Performance evaluation in credit-based PoW mechanism.

Paper setup: four control experiments over 90 s (3ΔT), initial
difficulty 11, reporting the average PoW time per transaction:

    original PoW                     0.7 s
    credit-based, normal behaviour   0.118 s
    credit-based, one attack         1.667 s
    credit-based, two attacks        3.75 s

Reproduction: the same four regimes on the calibrated Raspberry Pi
profile; attacks at t=24 s (and t=60 s for the fourth regime, matching
Fig. 8(b)'s dips).
"""

from repro.analysis.figures import fig9_pow_comparison
from repro.analysis.metrics import format_table


def test_bench_fig9_four_regimes(benchmark, report_writer):
    regimes = benchmark.pedantic(fig9_pow_comparison, rounds=1, iterations=1)
    by_name = {regime.name: regime for regime in regimes}

    rows = [
        (
            regime.name,
            f"{regime.mean_pow_seconds:.3f}",
            f"{regime.paper_seconds:.3f}",
            regime.transactions,
        )
        for regime in regimes
    ]
    report_writer("fig9_pow_comparison", format_table(rows, headers=[
        "regime", "mean PoW (s)", "paper (s)", "transactions",
    ]))

    original = by_name["original-pow"].mean_pow_seconds
    normal = by_name["credit-normal"].mean_pow_seconds
    one_attack = by_name["credit-1-attack"].mean_pow_seconds
    two_attacks = by_name["credit-2-attacks"].mean_pow_seconds

    # The paper's ordering: normal < original < 1 attack < 2 attacks.
    assert normal < original < one_attack < two_attacks
    # And roughly the paper's factors: honest speedup ~6x, attacks
    # several times the original cost.
    assert original / normal > 3.0
    assert one_attack > 1.5 * original
    assert two_attacks > 1.5 * one_attack
    # Punished nodes also complete fewer transactions in the window.
    assert (by_name["credit-2-attacks"].transactions
            < by_name["credit-normal"].transactions)
