"""Ext-7 — reading-batch ablation: ledger cost vs data latency.

Each tangle transaction costs a device one PoW solve, one signature and
one gateway round-trip regardless of how much sensor data it carries.
Batching readings amortises that cost — but a batched device issues
*fewer* transactions, earns CrP more slowly under Eqn. 3, and therefore
digs at a somewhat higher difficulty: the credit mechanism couples the
two knobs.  This bench sweeps the batch size on a live system and
reports readings throughput, mean per-reading energy, and the device's
steady-state difficulty.
"""

from repro.analysis.energy import energy_for_stats
from repro.analysis.metrics import format_table
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.devices.profiles import RASPBERRY_PI_3B

RUN_SECONDS = 60.0


def _run_with_batch_size(batch_size: int):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=200 + batch_size,
        initial_difficulty=8, report_interval=1.0,
    ))
    for device in system.devices:
        device.batch_size = batch_size
    system.initialize()
    system.start_devices()
    system.run_for(RUN_SECONDS)
    device = system.devices[0]
    stats = device.stats
    energy = energy_for_stats(RASPBERRY_PI_3B, stats)
    readings_on_ledger = stats.submissions_accepted * batch_size
    return {
        "batch_size": batch_size,
        "transactions": stats.submissions_accepted,
        "readings": readings_on_ledger,
        "joules_per_reading": (
            energy.total_joules / max(1, stats.readings_taken)
        ),
        "steady_difficulty": (
            stats.assigned_difficulties[-1]
            if stats.assigned_difficulties else None
        ),
    }


def _sweep():
    return [_run_with_batch_size(size) for size in (1, 2, 4, 8)]


def test_bench_ext7_batching(benchmark, report_writer):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    formatted = [
        (r["batch_size"], r["transactions"], r["readings"],
         f"{r['joules_per_reading']:.3f}", r["steady_difficulty"])
        for r in rows
    ]
    report_writer("ext7_batching", format_table(formatted, headers=[
        "batch size", "txs accepted", "readings on ledger",
        "J per reading", "difficulty at end",
    ]))

    by_size = {r["batch_size"]: r for r in rows}
    # Bigger batches, fewer transactions for comparable reading volume.
    assert by_size[8]["transactions"] < by_size[1]["transactions"] / 3
    # Per-reading energy falls with batching (PoW cost amortised), even
    # though the batched device runs at a higher difficulty.
    assert (by_size[8]["joules_per_reading"]
            < by_size[1]["joules_per_reading"])
    # The credit coupling: fewer transactions -> less CrP -> the batched
    # device keeps a difficulty at or above the unbatched one.
    assert (by_size[8]["steady_difficulty"]
            >= by_size[1]["steady_difficulty"])
