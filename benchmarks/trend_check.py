#!/usr/bin/env python
"""Benchmark trend check: diff fresh BENCH_*.json against baselines.

Benchmarks measure; this script remembers.  ``benchmarks/baselines/``
holds committed copies of the machine-readable benchmark reports
(``BENCH_hotpath.json``, ``BENCH_tangle_scale.json``); after a run
writes fresh reports into ``benchmarks/out/``, this script walks both
trees and compares every *throughput-like* numeric leaf — keys ending
in ``_per_s`` and ``speedup`` fields, where higher is better — and
flags any that regressed by more than the threshold (default 20%).

CI numbers are noisy (shared runners, differing CPUs), so a regression
is a **warning** by default: the script prints the offending metrics
and exits 0.  Pass ``--strict`` to turn warnings into a non-zero exit
for environments stable enough to gate on.

Usage::

    python benchmarks/trend_check.py
    python benchmarks/trend_check.py --current benchmarks/out \
        --baseline benchmarks/baselines --threshold 0.2 --strict
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

#: A leaf counts as throughput-like (higher is better) when its key
#: ends with one of these suffixes.
THROUGHPUT_SUFFIXES = ("_per_s", "speedup")


def throughput_leaves(value, path: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every throughput-like leaf."""
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{path}.{key}" if path else key
            yield from throughput_leaves(value[key], child)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith(THROUGHPUT_SUFFIXES):
            yield path, float(value)


def compare(baseline: Dict, current: Dict,
            threshold: float) -> Tuple[List[str], List[str]]:
    """Return (regressions, notes) comparing throughput leaves."""
    base = dict(throughput_leaves(baseline))
    cur = dict(throughput_leaves(current))
    regressions: List[str] = []
    notes: List[str] = []
    for path in sorted(base):
        if path not in cur:
            notes.append(f"missing in current run: {path}")
            continue
        reference, measured = base[path], cur[path]
        if reference <= 0:
            continue
        delta = (measured - reference) / reference
        line = (f"{path}: {measured:.6g} vs baseline {reference:.6g} "
                f"({delta:+.1%})")
        if delta < -threshold:
            regressions.append(line)
        elif delta > threshold:
            notes.append(f"improved {line}")
    for path in sorted(set(cur) - set(base)):
        notes.append(f"new metric (no baseline): {path}")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="warn when benchmark throughput regresses vs baselines")
    parser.add_argument("--baseline", default="benchmarks/baselines",
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--current", default="benchmarks/out",
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown that counts as a "
                             "regression (0.20 = 20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on regression (default: warn)")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.baseline):
        print(f"trend-check: no baseline directory {args.baseline!r}; "
              f"nothing to compare", file=sys.stderr)
        return 0

    regressions: List[str] = []
    compared = 0
    for name in sorted(os.listdir(args.baseline)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        current_path = os.path.join(args.current, name)
        if not os.path.exists(current_path):
            print(f"trend-check: {name}: no current report "
                  f"(benchmark not run) — skipped")
            continue
        with open(os.path.join(args.baseline, name)) as handle:
            baseline = json.load(handle)
        with open(current_path) as handle:
            current = json.load(handle)
        if current.get("smoke"):
            # Smoke-mode reports use shrunk workloads; their absolute
            # throughput is not comparable to full-run baselines.
            print(f"trend-check: {name}: current report is smoke-mode "
                  f"— skipped")
            continue
        compared += 1
        found, notes = compare(baseline, current, args.threshold)
        for note in notes:
            print(f"trend-check: {name}: {note}")
        for line in found:
            print(f"trend-check: {name}: REGRESSION {line}")
        regressions.extend(found)

    if not regressions:
        print(f"trend-check: OK ({compared} report(s) compared, "
              f"threshold {args.threshold:.0%})")
        return 0
    print(f"trend-check: {len(regressions)} throughput metric(s) "
          f"regressed more than {args.threshold:.0%}"
          + ("" if args.strict else " (warning only; use --strict to fail)"),
          file=sys.stderr)
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
