"""Ext-10 — per-transaction hot path: credit windows, shared caches and
the accelerated crypto lane.

Four measurements of the PR-5/PR-8 fast lanes, on identical inputs:

* **credit evaluation** — the incremental rolling window
  (:class:`~repro.core.credit.CreditRegistry`) vs a from-scratch rescan
  of the full history (the seed behaviour) across a monotone sweep of
  evaluation times over a 10k-record history, with every answer checked
  for exact equality;
* **multi-node gossip throughput** — end-to-end flood of pre-signed
  transactions through rings of 10/50/200 full nodes with PoW and
  signature enforcement on, with and without the deployment-shared
  :class:`~repro.tangle.validation.VerificationCache` and
  :class:`~repro.tangle.transaction.TransactionDecodeCache`;
* **verify/decode cache hit rates** — observed counter values from an
  instrumented cached run;
* **crypto backends** — end-to-end *uncached* gossip-flood validation
  throughput with the reference Ed25519 backend vs the accel backend
  (batch verification + fixed-base tables), identical wire traffic:
  the same ``gossip_batch`` burst floods a ring of full nodes with no
  shared verification/decode caches, so every node pays full signature
  verification for every transaction.

Emits ``benchmarks/out/BENCH_hotpath.json`` for EXPERIMENTS.md.

Set ``HOTPATH_BENCH_SMOKE=1`` (CI) to shrink every dimension: the same
code paths run, the speedup assertions relax to sanity checks.
"""

import json
import os
import pathlib
import random
import time

from repro.analysis.metrics import format_table
from repro.core.credit import CreditParameters, CreditRegistry
from repro.crypto.keys import KeyPair
from repro.network.network import Network
from repro.network.simulator import EventScheduler
from repro.nodes.full_node import FullNode
from repro.nodes.manager import ManagerNode
from repro.tangle.transaction import Transaction, TransactionDecodeCache
from repro.tangle.validation import VerificationCache
from repro.telemetry.registry import MetricsRegistry

OUT_DIR = pathlib.Path(__file__).parent / "out"

SMOKE = os.environ.get("HOTPATH_BENCH_SMOKE") == "1"

MANAGER_KEYS = KeyPair.generate(seed=b"ext10-manager")
ISSUER_KEYS = KeyPair.generate(seed=b"ext10-issuer")

# -- credit sweep dimensions ---------------------------------------------
CREDIT_HISTORY = 1_000 if SMOKE else 10_000
CREDIT_EVALS = 200 if SMOKE else 2_000
CREDIT_SPACING = 0.01  # seconds between records: ~3k records per ΔT=30
CREDIT_MIN_SPEEDUP = 1.0 if SMOKE else 10.0

# -- gossip flood dimensions ---------------------------------------------
NODE_COUNTS = (4, 8) if SMOKE else (10, 50, 200)
TX_COUNTS = {4: 6, 8: 4} if SMOKE else {10: 40, 50: 20, 200: 8}
RING_DEGREE = 2  # peers on each side -> fanout 4

# -- crypto backend dimensions --------------------------------------------
CRYPTO_NODES = 4 if SMOKE else 8
CRYPTO_TXS = 8 if SMOKE else 64
CRYPTO_ISSUERS = 2 if SMOKE else 4
CRYPTO_BATCH_SIZE = 16
CRYPTO_MIN_SPEEDUP = 1.0 if SMOKE else 5.0


# -- credit evaluation ----------------------------------------------------

def _naive_positive_credit(timestamps, weights, now, delta_t):
    """The seed's O(history) rescan of Eqn. 3, kept as the baseline."""
    window_start = now - delta_t
    total = 0.0
    for ts, weight in zip(timestamps, weights):
        if window_start <= ts <= now:
            total += weight
    return total / delta_t


def _bench_credit():
    params = CreditParameters()
    registry = CreditRegistry(params)
    node = b"\xab" * 32
    timestamps, weights = [], []
    for i in range(CREDIT_HISTORY):
        ts = i * CREDIT_SPACING
        registry.record_transaction(node, i.to_bytes(32, "big"), ts)
        timestamps.append(ts)
        weights.append(1.0)
    horizon = CREDIT_HISTORY * CREDIT_SPACING
    evals = [horizon + i * 0.05 for i in range(CREDIT_EVALS)]

    start = time.perf_counter()
    incremental = [registry.positive_credit(node, now) for now in evals]
    incremental_s = time.perf_counter() - start

    start = time.perf_counter()
    naive = [
        _naive_positive_credit(timestamps, weights, now, params.delta_t)
        for now in evals
    ]
    naive_s = time.perf_counter() - start

    assert incremental == naive  # exact, not approx: same floats
    return {
        "history": CREDIT_HISTORY,
        "evaluations": CREDIT_EVALS,
        "naive_seconds": naive_s,
        "incremental_seconds": incremental_s,
        "naive_evals_per_s": CREDIT_EVALS / naive_s,
        "incremental_evals_per_s": CREDIT_EVALS / incremental_s,
        "speedup": naive_s / incremental_s,
    }


# -- multi-node gossip ----------------------------------------------------

def _build_transactions(genesis, count):
    """Pre-sign *count* chained difficulty-1 transactions (signing and
    grinding stay outside the timed region; verification does not)."""
    txs = []
    prev, prev2 = genesis.tx_hash, genesis.tx_hash
    for i in range(count):
        tx = Transaction.create(
            ISSUER_KEYS, kind="data", payload=f"ext10-{i}".encode(),
            timestamp=float(i + 1), branch=prev2, trunk=prev,
            difficulty=1,
        )
        prev2, prev = prev, tx.tx_hash
        txs.append(tx)
    return txs


def _build_ring(genesis, node_count, *, cached, telemetry=None):
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(1234 + node_count))
    verification_cache = VerificationCache(telemetry=telemetry) \
        if cached else None
    decode_cache = TransactionDecodeCache(telemetry=telemetry) \
        if cached else None
    nodes = []
    for i in range(node_count):
        node = FullNode(
            f"n{i}", genesis, rng=random.Random(9000 + i),
            verification_cache=verification_cache,
            decode_cache=decode_cache,
        )
        network.attach(node)
        nodes.append(node)
    for i in range(node_count):
        for step in range(1, RING_DEGREE + 1):
            nodes[i].add_peer(nodes[(i + step) % node_count].address)
            nodes[i].add_peer(nodes[(i - step) % node_count].address)
    return scheduler, network, nodes


def _flood(genesis, txs, node_count, *, cached, telemetry=None):
    """Inject *txs* at one node, run to quiescence, return wall seconds."""
    scheduler, network, nodes = _build_ring(
        genesis, node_count, cached=cached, telemetry=telemetry)
    encoded = [tx.to_bytes() for tx in txs]
    start = time.perf_counter()
    for data in encoded:
        network.send(nodes[0].address, nodes[0].address,
                     "gossip_transaction", {"transaction": data},
                     size_bytes=len(data))
    scheduler.run()
    elapsed = time.perf_counter() - start
    # Full propagation, fully drained (the live pending count must hit
    # zero — this is the EventScheduler len() accessor).
    assert len(scheduler) == 0
    for node in nodes:
        assert len(node.tangle) == len(txs) + 1
    return elapsed, scheduler.events_executed


def _bench_gossip():
    genesis = ManagerNode.create_genesis(MANAGER_KEYS)
    out = {}
    for node_count in NODE_COUNTS:
        txs = _build_transactions(genesis, TX_COUNTS[node_count])
        uncached_s, _ = _flood(genesis, txs, node_count, cached=False)
        telemetry = MetricsRegistry(record_events=False)
        cached_s, events = _flood(genesis, txs, node_count, cached=True,
                                  telemetry=telemetry)
        verify_hits = telemetry.counter(
            "repro_cache_verify_hits_total").total
        verify_misses = telemetry.counter(
            "repro_cache_verify_misses_total").total
        decode_hits = telemetry.counter(
            "repro_cache_decode_hits_total").total
        decode_misses = telemetry.counter(
            "repro_cache_decode_misses_total").total
        deliveries = len(txs) * node_count
        out[str(node_count)] = {
            "transactions": len(txs),
            "uncached_seconds": uncached_s,
            "cached_seconds": cached_s,
            "uncached_delivered_tx_per_s": deliveries / uncached_s,
            "cached_delivered_tx_per_s": deliveries / cached_s,
            "speedup": uncached_s / cached_s,
            "events_executed": events,
            "verify_hit_rate":
                verify_hits / max(verify_hits + verify_misses, 1),
            "decode_hit_rate":
                decode_hits / max(decode_hits + decode_misses, 1),
        }
    return out


# -- crypto backends ------------------------------------------------------

def _build_issuer_transactions(genesis, count, issuers):
    """Chained difficulty-1 transactions spread across *issuers* keys —
    the realistic shape for the batch verifier (few issuers per burst,
    so the accel lane's column merging and decompress reuse engage)."""
    keys = [KeyPair.generate(seed=b"ext10-crypto-%d" % i)
            for i in range(issuers)]
    txs = []
    prev, prev2 = genesis.tx_hash, genesis.tx_hash
    for i in range(count):
        tx = Transaction.create(
            keys[i % issuers], kind="data",
            payload=f"ext10-crypto-{i}".encode(),
            timestamp=float(i + 1), branch=prev2, trunk=prev,
            difficulty=1,
        )
        prev2, prev = prev, tx.tx_hash
        txs.append(tx)
    return txs


def _flood_backend(genesis, txs, backend):
    """Flood *txs* as one gossip_batch through an uncached ring of
    CRYPTO_NODES full nodes running *backend*; return wall seconds."""
    from repro.crypto.accel import ed25519_accel

    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(77))
    nodes = []
    for i in range(CRYPTO_NODES):
        node = FullNode(
            f"cn{i}", genesis, rng=random.Random(7000 + i),
            crypto_backend=backend,
            gossip_batch_size=CRYPTO_BATCH_SIZE,
        )
        network.attach(node)
        nodes.append(node)
    for i in range(CRYPTO_NODES):
        for step in range(1, RING_DEGREE + 1):
            nodes[i].add_peer(nodes[(i + step) % CRYPTO_NODES].address)
            nodes[i].add_peer(nodes[(i - step) % CRYPTO_NODES].address)
    encoded = [tx.to_bytes() for tx in txs]
    # The timed region measures *validation* throughput: table
    # construction is one-time process setup, and the decompress cache
    # is cleared so both backends start cold on this burst's issuers.
    ed25519_accel.precompute()
    ed25519_accel._decompress_cache.clear()
    start = time.perf_counter()
    network.send(nodes[0].address, nodes[0].address,
                 "gossip_batch", {"transactions": encoded},
                 size_bytes=sum(len(e) for e in encoded))
    scheduler.run()
    elapsed = time.perf_counter() - start
    for node in nodes:
        assert len(node.tangle) == len(txs) + 1
    return elapsed


def _bench_crypto_backends():
    genesis = ManagerNode.create_genesis(MANAGER_KEYS)
    txs = _build_issuer_transactions(genesis, CRYPTO_TXS, CRYPTO_ISSUERS)
    deliveries = CRYPTO_TXS * CRYPTO_NODES
    reference_s = _flood_backend(genesis, txs, "reference")
    accel_s = _flood_backend(genesis, txs, "accel")
    return {
        "nodes": CRYPTO_NODES,
        "transactions": CRYPTO_TXS,
        "issuers": CRYPTO_ISSUERS,
        "gossip_batch_size": CRYPTO_BATCH_SIZE,
        "reference_seconds": reference_s,
        "accel_seconds": accel_s,
        "reference_verified_tx_per_s": deliveries / reference_s,
        "accel_verified_tx_per_s": deliveries / accel_s,
        "speedup": reference_s / accel_s,
    }


def _run():
    return {
        "smoke": SMOKE,
        "credit": _bench_credit(),
        "gossip": _bench_gossip(),
        "crypto": _bench_crypto_backends(),
    }


def test_bench_ext10_hotpath(benchmark, report_writer):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    credit = results["credit"]
    credit_rows = [(
        credit["history"], credit["evaluations"],
        f"{credit['naive_evals_per_s']:,.0f}",
        f"{credit['incremental_evals_per_s']:,.0f}",
        f"{credit['speedup']:.1f}x",
    )]
    gossip_rows = [
        (n,
         results["gossip"][str(n)]["transactions"],
         f"{results['gossip'][str(n)]['uncached_delivered_tx_per_s']:,.0f}",
         f"{results['gossip'][str(n)]['cached_delivered_tx_per_s']:,.0f}",
         f"{results['gossip'][str(n)]['speedup']:.1f}x",
         f"{results['gossip'][str(n)]['verify_hit_rate']:.0%}",
         f"{results['gossip'][str(n)]['decode_hit_rate']:.0%}")
        for n in NODE_COUNTS
    ]
    crypto = results["crypto"]
    crypto_rows = [(
        crypto["nodes"], crypto["transactions"], crypto["issuers"],
        f"{crypto['reference_verified_tx_per_s']:,.0f}",
        f"{crypto['accel_verified_tx_per_s']:,.0f}",
        f"{crypto['speedup']:.1f}x",
    )]
    report = "\n\n".join([
        format_table(credit_rows, headers=[
            "history", "evals", "naive evals/s", "incremental evals/s",
            "speedup"]),
        format_table(gossip_rows, headers=[
            "nodes", "txs", "uncached tx/s", "cached tx/s", "speedup",
            "verify hits", "decode hits"]),
        format_table(crypto_rows, headers=[
            "nodes", "txs", "issuers", "reference tx/s", "accel tx/s",
            "speedup"]),
    ])
    report_writer("ext10_hotpath", report)

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_hotpath.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n")

    # Acceptance: >=10x credit evaluation at a 10k history (sanity-only
    # in smoke mode), a measurable cached-gossip win at every size,
    # high hit rates (each tx verified/decoded once, hit n-1 times),
    # and >=5x uncached flood validation throughput for the accel
    # crypto backend over the reference.
    assert credit["speedup"] >= CREDIT_MIN_SPEEDUP
    assert crypto["speedup"] >= CRYPTO_MIN_SPEEDUP
    for n in NODE_COUNTS:
        entry = results["gossip"][str(n)]
        assert entry["cached_seconds"] < entry["uncached_seconds"]
        expected = 1.0 - 1.0 / n
        assert entry["verify_hit_rate"] >= expected * 0.8
        assert entry["decode_hit_rate"] >= expected * 0.8
