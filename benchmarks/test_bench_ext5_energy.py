"""Ext-5 — energy per transaction (the paper's power motivation).

The paper's abstract promises a mechanism that "decreases power
consumption for honest nodes while increasing computing complexity for
malicious nodes" — but never reports joules.  This bench translates the
Fig. 9 regimes into energy using the Raspberry Pi 3B power model
(3.7 W active) and reports the per-transaction budget for each regime,
plus the split between PoW, AES, signing and radio for an honest
sensitive-data device.
"""

from repro.analysis.energy import energy_per_transaction
from repro.analysis.figures import fig9_pow_comparison
from repro.analysis.metrics import format_table
from repro.devices.profiles import RASPBERRY_PI_3B


def test_bench_ext5_energy_per_transaction(benchmark, report_writer):
    regimes = benchmark.pedantic(fig9_pow_comparison, rounds=1, iterations=1)
    rows = []
    energies = {}
    for regime in regimes:
        joules = energy_per_transaction(
            RASPBERRY_PI_3B, regime.mean_pow_seconds,
            payload_bytes=256, encrypts=True,
        )
        energies[regime.name] = joules
        rows.append((regime.name, f"{regime.mean_pow_seconds:.3f}",
                     f"{joules:.2f}"))
    report_writer("ext5_energy", format_table(rows, headers=[
        "regime", "mean PoW (s)", "energy/tx (J)",
    ]))

    # The headline claim, in joules: honest nodes under credit-based
    # PoW spend several times less energy per transaction than under
    # the original PoW, and attackers several times more.
    assert energies["credit-normal"] < energies["original-pow"] / 3
    assert energies["credit-1-attack"] > energies["original-pow"]
    assert energies["credit-2-attacks"] > energies["credit-1-attack"]


def test_bench_ext5_energy_breakdown(benchmark, report_writer):
    def breakdown():
        profile = RASPBERRY_PI_3B
        mean_pow = 0.132  # credit-normal regime (Ext-5 table above)
        rows = []
        pow_j = profile.compute_energy_joules(mean_pow)
        aes_j = profile.compute_energy_joules(profile.aes_seconds(256))
        sig_j = profile.compute_energy_joules(profile.signature_seconds)
        radio_j = profile.radio_energy_joules(256)
        total = pow_j + aes_j + sig_j + radio_j
        for label, value in (
            ("PoW", pow_j), ("AES (256 B)", aes_j),
            ("signature", sig_j), ("radio (256 B)", radio_j),
        ):
            rows.append((label, f"{value:.5f}", f"{value / total * 100:.1f} %"))
        return rows, pow_j, aes_j, radio_j

    rows, pow_j, aes_j, radio_j = benchmark.pedantic(breakdown, rounds=1,
                                                     iterations=1)
    report_writer("ext5_energy_breakdown", format_table(rows, headers=[
        "component", "energy (J)", "share",
    ]))
    # PoW dominates even at the honest regime's lowered difficulty;
    # AES and radio are orders of magnitude below it — consistent with
    # the paper's Fig. 10 conclusion that encryption cost is negligible.
    assert pow_j > 10 * aes_j
    assert pow_j > 1000 * radio_j
