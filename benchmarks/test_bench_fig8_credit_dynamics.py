"""Fig. 8 — Credit value changes based on nodes' behaviours.

Paper setup: one light node traced for 100 s with λ1=1, λ2=0.5,
ΔT=30 s, αl=0.5, αd=1.  Fig. 8(a): one malicious attack at t=24 s —
credit plunges sharply, then the punished PoW keeps the node silent for
~37 s before normal submission resumes.  Fig. 8(b): two attacks take
longer to recover from.

Reproduction: the same scripted trace; we print the Cr/CrP/CrN series
on the paper's grid and the headline observations (minimum credit,
longest transaction gap, recovery time).
"""

from repro.analysis.figures import fig8_credit_trace
from repro.analysis.metrics import format_table


def _series_rows(result, step=6):
    rows = []
    for point in result.tracer.points[::step]:
        rows.append((
            f"{point.time:.0f}",
            f"{point.credit:.2f}",
            f"{point.positive:.2f}",
            f"{point.negative:.2f}",
        ))
    return rows


def test_bench_fig8a_single_attack(benchmark, report_writer):
    result = benchmark.pedantic(
        fig8_credit_trace, kwargs={"attack_times": (24.0,)},
        rounds=1, iterations=1,
    )
    table = format_table(_series_rows(result),
                         headers=["t (s)", "Cr", "CrP", "CrN"])
    summary = (
        f"attack at t=24 s\n"
        f"minimum credit: {result.minimum_credit:.1f} "
        f"(paper curve dips to ~-27)\n"
        f"longest transaction gap: {result.longest_transaction_gap:.1f} s "
        f"(paper: 37 s)\n"
        f"transactions completed: {len(result.transaction_times)}"
    )
    report_writer("fig8a_credit_single_attack", table + "\n\n" + summary)

    # Shape: clean before the attack, sharp dip at it, recovery after.
    before = [p.credit for p in result.tracer.points if p.time < 24.0]
    assert all(credit >= 0 for credit in before)
    assert result.minimum_credit < -15.0
    final = result.tracer.points[-1].credit
    assert final > result.minimum_credit / 10
    # The punished PoW silences the node for tens of seconds (paper: 37 s).
    assert 20.0 < result.longest_transaction_gap < 80.0


def test_bench_fig8b_two_attacks(benchmark, report_writer):
    result = benchmark.pedantic(
        fig8_credit_trace, kwargs={"attack_times": (24.0, 60.0)},
        rounds=1, iterations=1,
    )
    table = format_table(_series_rows(result),
                         headers=["t (s)", "Cr", "CrP", "CrN"])
    summary = (
        f"attacks at t=24 s and t=60 s\n"
        f"minimum credit: {result.minimum_credit:.1f}\n"
        f"longest transaction gap: {result.longest_transaction_gap:.1f} s\n"
        f"transactions completed: {len(result.transaction_times)}"
    )
    report_writer("fig8b_credit_two_attacks", table + "\n\n" + summary)

    single = fig8_credit_trace(attack_times=(24.0,))
    # Two attacks leave the node worse off than one (paper: "it will
    # take longer time to recover normal transaction rate").
    assert result.minimum_credit <= single.minimum_credit
    assert (len(result.transaction_times)
            <= len(single.transaction_times))
    final_two = result.tracer.points[-1].credit
    final_one = single.tracer.points[-1].credit
    assert final_two <= final_one + 1e-9
