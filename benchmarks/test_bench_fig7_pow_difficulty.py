"""Fig. 7 — Running time of PoW algorithm with increasing difficulty.

Paper setup: PoW at difficulties 1..14 on a Raspberry Pi 3B; data tips
at D=1 (0.162 s), D=12 (10.98 s), D=14 (245.3 s); "running time
increases exponentially when the value of difficulty D is larger
than 11".

Reproduction: the same sweep on the calibrated Raspberry Pi profile.
We report the *expected* time (2^D / hash rate), the mean of five
sampled solves (what a small measurement campaign sees — the paper's
single-run anchors are samples of a geometric distribution with
mean-sized variance), and the paper anchors.  The pytest-benchmark
timing covers real SHA-256 grinding at D=12 on the host CPU.
"""

from repro.analysis.figures import fig7_pow_running_time
from repro.analysis.metrics import format_table
from repro.pow import hashcash


def test_bench_fig7_pow_running_time(benchmark, report_writer):
    points = benchmark.pedantic(
        fig7_pow_running_time, kwargs={"samples_per_level": 5, "seed": 7},
        rounds=1, iterations=1,
    )
    rows = [
        (
            p.difficulty,
            f"{p.expected_seconds:.3f}",
            f"{p.sampled_seconds:.3f}",
            f"{p.paper_seconds:.3f}" if p.paper_seconds is not None else "-",
        )
        for p in points
    ]
    report_writer("fig7_pow_difficulty", format_table(rows, headers=[
        "difficulty", "expected (s)", "sampled mean (s)", "paper (s)",
    ]))
    # Shape assertions: exponential growth, knee past the initial
    # difficulty 11, monotone expectations.
    expected = [p.expected_seconds for p in points]
    assert all(b >= a for a, b in zip(expected, expected[1:]))
    assert expected[13] > 50 * expected[0]
    overhead = expected[0]
    assert (expected[13] - overhead) / max(expected[10] - overhead, 1e-9) > 7


def test_bench_fig7_real_pow_grinding(benchmark):
    """Real hashing cost on the host at D=12 (the paper's knee)."""

    def grind():
        return hashcash.solve(b"fig7-real", 12, start_nonce=0)

    proof = benchmark(grind)
    assert hashcash.verify(b"fig7-real", proof.nonce, 12)
