"""Shared benchmark plumbing.

Every benchmark writes its paper-style table to ``benchmarks/out/`` (so
EXPERIMENTS.md can reference exact runs) and echoes it to stdout.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture()
def report_writer(capsys):
    """Returns write(name, text): persist + echo a benchmark report."""

    def write(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return write
