"""Ext-3 — attack mitigation economics and the difficulty-policy
ablation (Section VI-C's security analysis, quantified).

Two questions the paper argues qualitatively, answered with numbers:

1. How much more PoW time does an attacker burn per transaction than
   an honest node, under plain PoW vs credit-based PoW?
   ("this mechanism will let honest nodes consume less resources while
   force malicious nodes to increase the cost of attacks")
2. Ablation: the literal ``Cr ∝ 1/D`` negative branch vs the calibrated
   log-time branch (DESIGN.md §7) — the literal law effectively bans a
   node after one offence; log-time matches Fig. 8's recovery.
"""

from repro.analysis.metrics import format_table
from repro.core.consensus import (
    CreditBasedConsensus,
    FixedDifficultyPolicy,
    InverseDifficultyPolicy,
)
from repro.core.credit import CreditRegistry, MaliciousBehaviour
from repro.devices.profiles import RASPBERRY_PI_3B

NODE = b"\x01" * 32
ATTACK_EVERY = 10.0
DURATION = 300.0
INITIAL_DIFFICULTY = 11


def _attacker_cost(policy) -> float:
    """Total simulated PoW seconds an attacker pays for a 300 s campaign
    of double spends every 10 s under *policy*."""
    registry = CreditRegistry()
    consensus = CreditBasedConsensus(registry, policy=policy)
    total = 0.0
    t = 0.0
    while t < DURATION:
        difficulty = consensus.required_difficulty(NODE, t)
        total += RASPBERRY_PI_3B.expected_pow_seconds(difficulty)
        registry.record_malicious(
            NODE, MaliciousBehaviour.DOUBLE_SPENDING, t)
        t += ATTACK_EVERY
    return total


def _honest_cost(policy) -> float:
    registry = CreditRegistry()
    consensus = CreditBasedConsensus(registry, policy=policy)
    total = 0.0
    t = 0.0
    while t < DURATION:
        difficulty = consensus.required_difficulty(NODE, t)
        total += RASPBERRY_PI_3B.expected_pow_seconds(difficulty)
        registry.record_transaction(NODE, bytes(32), t)
        t += 3.0
    return total


def _economics():
    plain = FixedDifficultyPolicy(INITIAL_DIFFICULTY)
    credit = InverseDifficultyPolicy(initial_difficulty=INITIAL_DIFFICULTY)
    literal = InverseDifficultyPolicy(initial_difficulty=INITIAL_DIFFICULTY,
                                      negative_mode="inverse")
    return {
        "plain": {
            "honest": _honest_cost(plain), "attacker": _attacker_cost(plain),
        },
        "credit-log-time": {
            "honest": _honest_cost(credit), "attacker": _attacker_cost(credit),
        },
        "credit-literal-inverse": {
            "honest": _honest_cost(literal),
            "attacker": _attacker_cost(literal),
        },
    }


def test_bench_ext3_attack_economics(benchmark, report_writer):
    results = benchmark.pedantic(_economics, rounds=1, iterations=1)
    rows = []
    for mechanism, costs in results.items():
        rows.append((
            mechanism,
            f"{costs['honest']:.1f}",
            f"{costs['attacker']:.1f}",
            f"{costs['attacker'] / costs['honest']:.1f}x",
        ))
    report_writer("ext3_attack_mitigation", format_table(rows, headers=[
        "mechanism", "honest total PoW (s)", "attacker total PoW (s)",
        "attacker/honest cost",
    ]))

    plain = results["plain"]
    credit = results["credit-log-time"]
    literal = results["credit-literal-inverse"]
    # Plain PoW charges both parties identically per transaction.
    assert plain["attacker"] < plain["honest"] * 2
    # Credit-based PoW: honest nodes get cheaper, attackers far dearer.
    assert credit["honest"] < plain["honest"]
    assert credit["attacker"] > 5 * credit["honest"]
    assert (credit["attacker"] / credit["honest"]
            > plain["attacker"] / plain["honest"] * 5)
    # Ablation: the literal inverse law is even harsher (a de facto ban).
    assert literal["attacker"] > credit["attacker"]
