"""Fig. 10 — Impact of the data authority method on transaction
efficiency (AES encryption time vs message length).

Paper setup: AES on a Raspberry Pi 3B over message lengths 64 B → 1 MB
(log2 sweep); anchors 64 B → 0.205 ms, 256 KB → 0.373 s, 1 MB →
1.491 s; "a 256 kilobytes data package is large enough for IoT
transmission ... only needs 0.373 second, which has tiny impact on the
whole transaction process".

Reproduction: our from-scratch AES in CTR mode, measured for real on
the host, next to the calibrated Raspberry Pi cost model and the paper
anchors.  The pytest-benchmark timing covers the paper's headline
256 KB point.
"""

from repro.analysis.figures import fig10_aes_timing
from repro.analysis.metrics import format_table
from repro.crypto import aes

_KEY = bytes(range(32))
_MESSAGE_256K = bytes(262144)


def test_bench_fig10_sweep(benchmark, report_writer):
    points = benchmark.pedantic(
        fig10_aes_timing, kwargs={"max_exponent": 20}, rounds=1, iterations=1,
    )
    rows = [
        (
            p.message_bytes,
            f"{p.measured_seconds:.5f}",
            f"{p.modelled_rpi_seconds:.5f}",
            f"{p.paper_seconds:.5f}" if p.paper_seconds is not None else "-",
        )
        for p in points
    ]
    report_writer("fig10_aes_timing", format_table(rows, headers=[
        "message bytes", "measured (s)", "RPi model (s)", "paper (s)",
    ]))

    # Shape: monotone growth, linear in message length (log-log slope 1)
    # over the upper decades where fixed overhead is negligible.
    measured = {p.message_bytes: p.measured_seconds for p in points}
    assert measured[2 ** 20] > measured[2 ** 14] > measured[2 ** 8]
    ratio = measured[2 ** 20] / measured[2 ** 16]
    assert 8 < ratio < 32  # ideal: 16x for a 16x size increase
    # The paper's headline point: 256 KB is sub-second.
    assert measured[2 ** 18] < 1.0


def test_bench_fig10_256kb_point(benchmark):
    """The paper's headline 256 KB encryption, timed for real."""
    cipher = aes.AES(_KEY)

    def encrypt():
        return aes.ctr_encrypt(cipher, b"benchnon", _MESSAGE_256K)

    ciphertext = benchmark(encrypt)
    assert len(ciphertext) == len(_MESSAGE_256K)


def test_bench_fig10_roundtrip_integrity(benchmark):
    """Encrypt+decrypt at 64 KB — the cost a device pays per reading
    batch plus what the consumer pays to read it back."""
    cipher = aes.AES(_KEY)
    message = bytes(65536)

    def roundtrip():
        ciphertext = aes.ctr_encrypt(cipher, b"nonce-rt", message)
        return aes.ctr_decrypt(cipher, b"nonce-rt", ciphertext)

    result = benchmark(roundtrip)
    assert result == message
