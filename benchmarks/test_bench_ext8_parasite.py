"""Ext-8 — the parasite "broom" release vs tip-selection policy.

Quantifies the threat model's strongest lazy-tips escalation ("inflate
the number of tips ... abandoning the tips belonging to honest nodes"):
a burst of transactions all approving a fixed anchor pair is released
into the tip pool, and we measure what share of subsequent honest
approvals the attacker captures under each selector, across parasite
sizes.
"""

from repro.analysis.metrics import format_table
from repro.attacks.parasite import simulate_parasite_release
from repro.tangle.tip_selection import (
    UniformRandomTipSelector,
    WeightedRandomWalkSelector,
)


def _sweep():
    selectors = [
        ("uniform", lambda: UniformRandomTipSelector()),
        ("mcmc a=0.1", lambda: WeightedRandomWalkSelector(alpha=0.1)),
        ("mcmc a=1.0", lambda: WeightedRandomWalkSelector(alpha=1.0)),
    ]
    rows = []
    for parasite_size in (20, 40, 80):
        for name, make_selector in selectors:
            outcome = simulate_parasite_release(
                selector=make_selector(),
                parasite_size=parasite_size,
                seed=13,
            )
            rows.append((parasite_size, name, outcome.capture_ratio))
    return rows


def test_bench_ext8_parasite_release(benchmark, report_writer):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    formatted = [
        (size, name, f"{ratio * 100:.1f} %")
        for size, name, ratio in rows
    ]
    report_writer("ext8_parasite", format_table(formatted, headers=[
        "parasite size", "selector", "honest approvals captured",
    ]))

    by_key = {(size, name): ratio for size, name, ratio in rows}
    for size in (20, 40, 80):
        uniform = by_key[(size, "uniform")]
        strong = by_key[(size, "mcmc a=1.0")]
        # The broom wins big under uniform selection...
        assert uniform > 0.15
        # ...and is starved by the weighted walk.
        assert strong < uniform / 3
        assert strong < 0.05
    # Under uniform selection, a bigger broom captures more.
    assert by_key[(80, "uniform")] >= by_key[(20, "uniform")]
