"""Ext-1 — DAG-structured vs chain-structured blockchain throughput.

Paper claim (Sections II and IV): "we utilize the DAG-structured
blockchain ... which can achieve a high throughput"; chain-structured
blockchains' "synchronous consensus mechanisms limit the system
throughput, i.e., transactions only can be validated one by one".

Reproduction: identical signed workloads through both substrates under
an equal-aggregate-hash-power, equal-work-per-transaction, fork-safe
frame (see examples/dag_vs_chain.py for the full rationale).  The
sweep varies the device count and reports throughput for both, plus
confirmation latency.
"""

import math
import random

from repro.analysis.metrics import format_table
from repro.analysis.workloads import grow_parallel_tangle
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.miner import Miner
from repro.crypto.keys import KeyPair
from repro.devices.clock import SimulatedClock
from repro.devices.profiles import RASPBERRY_PI_3B, DeviceProfile
from repro.pow.engine import PowEngine
from repro.tangle.transaction import Transaction, ZERO_HASH

TX_PER_DEVICE = 12
TANGLE_DIFFICULTY = 8
BLOCK_SIZE = 8
BLOCK_DIFFICULTY = TANGLE_DIFFICULTY + int(math.log2(BLOCK_SIZE))
MIN_BLOCK_INTERVAL = 5.0


def _tangle_throughput(device_count: int, seed: int) -> float:
    growth = grow_parallel_tangle(
        device_count=device_count, tx_per_device=TX_PER_DEVICE,
        difficulty=TANGLE_DIFFICULTY, seed=seed,
        track_cumulative_weight=False,
    )
    return growth.throughput


def _chain_throughput(device_count: int, seed: int) -> float:
    aggregate = DeviceProfile(
        name="ext1-aggregate",
        hash_rate=RASPBERRY_PI_3B.hash_rate * device_count,
        pow_overhead_s=RASPBERRY_PI_3B.pow_overhead_s,
        aes_bytes_per_second=RASPBERRY_PI_3B.aes_bytes_per_second,
        signature_seconds=RASPBERRY_PI_3B.signature_seconds,
        is_full_node_capable=True,
    )
    miner_keys = KeyPair.generate(seed=f"ext1-miner-{seed}".encode())
    chain = Blockchain(Block.mine_genesis(miner_keys))
    clock = SimulatedClock()
    engine = PowEngine(aggregate, clock, rng=random.Random(seed))
    miner = Miner(miner_keys, chain, engine,
                  block_difficulty=BLOCK_DIFFICULTY,
                  max_block_transactions=BLOCK_SIZE)
    for d in range(device_count):
        keys = KeyPair.generate(seed=f"ext1-dev-{d}".encode())
        for i in range(TX_PER_DEVICE):
            miner.submit(Transaction.create(
                keys, kind="data", payload=f"{d}-{i}".encode(),
                timestamp=0.0, branch=ZERO_HASH, trunk=ZERO_HASH,
                difficulty=1,
            ))
    last_block_at = 0.0
    mined = 0
    while miner.mempool:
        earliest = last_block_at + MIN_BLOCK_INTERVAL
        if clock.now() < earliest:
            clock.advance(earliest - clock.now())
        block = miner.mine_next_block()
        last_block_at = clock.now()
        mined += len(block.transactions)
    return mined / clock.now()


def _sweep():
    rows = []
    for device_count in (2, 4, 8, 16):
        dag_tps = _tangle_throughput(device_count, seed=device_count)
        chain_tps = _chain_throughput(device_count, seed=device_count)
        rows.append((device_count, dag_tps, chain_tps,
                     dag_tps / chain_tps))
    return rows


def test_bench_ext1_dag_vs_chain(benchmark, report_writer):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    formatted = [
        (devices, f"{dag:.2f}", f"{chain:.2f}", f"{advantage:.1f}x")
        for devices, dag, chain, advantage in rows
    ]
    report_writer("ext1_dag_vs_chain", format_table(formatted, headers=[
        "devices", "tangle (tx/s)", "chain (tx/s)", "DAG advantage",
    ]))
    # The paper's claim must hold at every scale, and the advantage
    # must grow with the device count (the chain cannot parallelise).
    advantages = [advantage for _, _, _, advantage in rows]
    assert all(advantage > 2.0 for advantage in advantages)
    assert advantages[-1] > advantages[0]
