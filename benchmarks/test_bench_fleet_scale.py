"""Fleet scale — wall-clock tx/s vs full-node process count.

The whole point of the multi-process lane: signature verification
dominates per-transaction cost, so N node processes on N cores should
ingest close to N disjoint transaction shards in the time one process
ingests one.  :func:`repro.network.fleet_proc.run_scale_bench` spawns
1/2/4 isolated ``repro node`` processes (accel crypto backend, each
with its own Prometheus exporter port), pumps one self-contained shard
into each over real TCP, and times the post-warmup stretch.

Emits ``benchmarks/out/BENCH_fleet_scale.json``.  The report records
``cpus`` — the scheduler-usable core count — because the scaling
claim is a *hardware* claim: on a single-core box the curve is
legitimately flat (the processes time-share one core), so the
monotonicity and ≥1.8x-at-4 assertions only arm when the host has the
cores to show it.  CI runners (4 vCPUs) arm them.

Set ``FLEET_BENCH_SMOKE=1`` to shrink to 1/2 processes with short
shards: same code paths, assertions relaxed to sanity checks.
"""

import json
import os
import pathlib

from repro.analysis.metrics import format_table
from repro.network.fleet_proc import run_scale_bench

OUT_DIR = pathlib.Path(__file__).parent / "out"

SMOKE = os.environ.get("FLEET_BENCH_SMOKE") == "1"

SEED = 7
PROCESS_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
TX_PER_PROCESS = 20 if SMOKE else 120
MIN_SPEEDUP_AT_4 = 1.8


def test_fleet_scale(report_writer):
    result = run_scale_bench(
        seed=SEED, process_counts=PROCESS_COUNTS,
        transactions_per_process=TX_PER_PROCESS,
        crypto_backend="accel", smoke=SMOKE)

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_fleet_scale.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n")

    points = [result["points"][f"p{count}"] for count in PROCESS_COUNTS]
    table = format_table(
        [(p["processes"], p["transactions"],
          f"{p['wall_seconds']:.3f}", f"{p['tx_per_s']:.1f}",
          f"{p['speedup']:.2f}x") for p in points],
        headers=("processes", "transactions", "wall_s", "tx_per_s",
                 "speedup"))
    report_writer(
        "fleet_scale",
        table + f"\ncpus={result['cpus']} "
                f"crypto_backend={result['crypto_backend']}")

    # Sanity, always: every leg moved real transactions over real TCP
    # (per process: the shard minus its untimed ACL warmup).
    for point in points:
        assert point["transactions"] == \
            point["processes"] * (TX_PER_PROCESS - 1), point
        assert point["tx_per_s"] > 0, point

    cpus = result["cpus"]
    by_count = {p["processes"]: p["tx_per_s"] for p in points}
    if not SMOKE and cpus >= 4 and 4 in by_count:
        # The acceptance curve: monotone 1 -> 2 -> 4, >=1.8x at 4.
        assert by_count[2] > by_count[1], by_count
        assert by_count[4] > by_count[2], by_count
        assert by_count[4] / by_count[1] >= MIN_SPEEDUP_AT_4, by_count
    elif cpus >= 2 and 2 in by_count:
        assert by_count[2] > by_count[1], by_count
    else:
        # Single core: processes time-share; require only that adding
        # processes does not collapse throughput.
        top = max(by_count)
        assert by_count[top] >= 0.5 * by_count[1], by_count
