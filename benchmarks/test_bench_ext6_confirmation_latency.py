"""Ext-6 — tangle confirmation latency vs traffic level.

The DAG's counterpart to six-block security is cumulative weight: a
transaction is settled once enough later transactions (in)directly
approve it.  Unlike a chain — where confirmation latency is fixed at
k·block-interval no matter the load — the tangle confirms *faster the
busier it is*: every new arrival buries its ancestors deeper.  That is
the property that makes the design fit the paper's "high concurrency"
IoT setting (challenge 3 in §I).

This bench grows tangles at increasing device counts and measures the
mean time for a transaction to reach cumulative weight 6.
"""

from repro.analysis.metrics import format_table
from repro.analysis.workloads import confirmation_times, grow_parallel_tangle

CONFIRMATION_WEIGHT = 6
TX_PER_DEVICE = 15
DIFFICULTY = 8


def _grow_and_measure(device_count: int, seed: int):
    """Grow a parallel tangle and return (mean confirmation latency,
    achieved arrival rate)."""
    growth = grow_parallel_tangle(
        device_count=device_count, tx_per_device=TX_PER_DEVICE,
        difficulty=DIFFICULTY, seed=seed,
    )
    latencies = confirmation_times(growth, threshold=CONFIRMATION_WEIGHT)
    mean_latency = sum(latencies) / len(latencies)
    return mean_latency, growth.throughput


def _sweep():
    rows = []
    for device_count in (2, 4, 8):
        latency, rate = _grow_and_measure(device_count, seed=device_count)
        rows.append((device_count, rate, latency))
    return rows


def test_bench_ext6_confirmation_latency(benchmark, report_writer):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    formatted = [
        (devices, f"{rate:.2f}", f"{latency:.2f}")
        for devices, rate, latency in rows
    ]
    report_writer("ext6_confirmation_latency", format_table(
        formatted, headers=[
            "devices", "arrival rate (tx/s)",
            f"mean time to weight {CONFIRMATION_WEIGHT} (s)",
        ]))
    latencies = [latency for _, _, latency in rows]
    rates = [rate for _, rate, _ in rows]
    # More traffic -> faster burial: latency decreases as rate grows.
    assert rates == sorted(rates)
    assert latencies[-1] < latencies[0]
