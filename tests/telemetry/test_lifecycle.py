"""LifecycleTracker semantics: sampling, stage timelines, spans,
confirmation sweeps, coverage — plus the end-to-end hop chain through
a real deployment."""

import pytest

from repro.telemetry.lifecycle import (
    NULL_LIFECYCLE,
    LifecycleTracker,
    NullLifecycle,
    coerce_lifecycle,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracer import Tracer


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t


def make_tracker(clock=None, sample_every=1):
    clock = clock if clock is not None else FakeClock()
    registry = MetricsRegistry(clock)
    tracker = LifecycleTracker(clock, tracer=Tracer(clock),
                               registry=registry,
                               sample_every=sample_every)
    return tracker, registry, clock


class TestSampling:
    def test_every_round_sampled_by_default(self):
        tracker, _, _ = make_tracker()
        handles = [tracker.begin_submission("device-0") for _ in range(4)]
        assert all(h is not None for h in handles)
        assert len(tracker.timelines()) == 4

    def test_sample_every_n(self):
        tracker, _, _ = make_tracker(sample_every=3)
        handles = [tracker.begin_submission("device-0") for _ in range(7)]
        sampled = [h for h in handles if h is not None]
        assert len(sampled) == 3  # rounds 1, 4, 7
        assert [h.trace_id for h in sampled] == [
            "tx:device-0:00001", "tx:device-0:00004", "tx:device-0:00007"]

    def test_bad_sample_every_rejected(self):
        with pytest.raises(ValueError):
            LifecycleTracker(sample_every=0)


class TestTimeline:
    def test_stage_records_carry_sim_time(self):
        tracker, _, clock = make_tracker()
        handle = tracker.begin_submission("device-0")
        clock.t = 1.0
        tracker.record_handle(handle, "tips_received", "device-0")
        clock.t = 2.0
        tracker.bind(handle, b"\x01" * 32, difficulty=8)
        clock.t = 3.0
        tracker.record(b"\x01" * 32, "received", "gateway-0")
        assert handle.stage_time("submitted") == 0.0
        assert handle.stage_time("tips_received") == 1.0
        assert handle.stage_time("pow_solved") == 2.0
        assert handle.stage_time("received", "gateway-0") == 3.0
        assert handle.bound
        assert handle.short_hash == "01" * 8

    def test_unknown_hash_ignored(self):
        tracker, _, _ = make_tracker()
        tracker.record(b"\xff" * 32, "received", "gateway-0")  # no crash
        assert tracker.timeline_for(b"\xff" * 32) is None

    def test_repeat_stage_at_node_deduplicated(self):
        tracker, registry, clock = make_tracker()
        handle = tracker.begin_submission("device-0")
        tracker.bind(handle, b"\x01" * 32)
        clock.t = 1.0
        tracker.record(b"\x01" * 32, "received", "gateway-0")
        clock.t = 2.0
        tracker.record(b"\x01" * 32, "received", "gateway-0")
        assert handle.stage_times("received") == {"gateway-0": 1.0}
        counter = registry.counter("repro_lifecycle_stage_events_total")
        assert counter.value(stage="received") == 1

    def test_attach_latency_observed_once(self):
        tracker, registry, clock = make_tracker()
        handle = tracker.begin_submission("device-0")
        tracker.bind(handle, b"\x01" * 32)
        clock.t = 0.25
        tracker.record(b"\x01" * 32, "attached", "gateway-0")
        clock.t = 9.0
        tracker.record(b"\x01" * 32, "attached", "manager")
        hist = registry.histogram("repro_lifecycle_submit_to_attach_seconds")
        merged = hist.merged()
        assert merged.count == 1
        assert merged.mean == 0.25  # first attach only


class TestSpans:
    def test_root_span_opens_and_finalize_closes(self):
        tracker, _, _ = make_tracker()
        handle = tracker.begin_submission("device-0")
        assert handle.root is not None and not handle.root.finished
        assert handle.context.trace_id == handle.trace_id
        tracker.finalize(node_count=3)
        assert handle.root.finished

    def test_ingest_span_parents_on_ambient_same_trace(self):
        """A hop whose carrying message was sent inside the previous
        hop's span chains onto it — the cross-node causal link."""
        tracker, _, _ = make_tracker()
        tracer = tracker.tracer
        handle = tracker.begin_submission("device-0")
        tracker.bind(handle, b"\x01" * 32)
        with tracker.ingest(b"\x01" * 32, node="gateway-0",
                            source="device-0") as first:
            first_context = tracer.context_of(first)
            with tracker.ingest(b"\x01" * 32, node="manager",
                                source="gateway-0") as second:
                assert second.parent_id == first_context.span_id
        assert first.parent_id == handle.root.span_id

    def test_ingest_with_foreign_ambient_falls_back_to_root(self):
        """A parent-fetch response delivered inside another trace's
        context must not adopt that trace: the hop span parents on its
        own timeline root instead."""
        tracker, _, _ = make_tracker()
        tracer = tracker.tracer
        a = tracker.begin_submission("device-0")
        b = tracker.begin_submission("device-1")
        tracker.bind(a, b"\x01" * 32)
        tracker.bind(b, b"\x02" * 32)
        with tracer.activate(b.context):
            with tracker.ingest(b"\x01" * 32, node="manager") as span:
                assert span.parent_id == a.root.span_id
                assert span.trace_id == a.trace_id

    def test_untracked_ingest_is_shared_noop(self):
        tracker, _, _ = make_tracker()
        scope_a = tracker.ingest(b"\xff" * 32, node="manager")
        scope_b = tracker.ingest(b"\xee" * 32, node="manager")
        assert scope_a is scope_b  # the shared null scope
        with scope_a as span:
            assert span is None


class FakeTangle:
    def __init__(self, hashes, confirmed=True):
        self._hashes = set(hashes)
        self._confirmed = confirmed

    def __contains__(self, tx_hash):
        return tx_hash in self._hashes

    def is_confirmed(self, tx_hash, threshold):
        return tx_hash in self._hashes and self._confirmed


class FakeNode:
    def __init__(self, hashes, confirmed=True):
        self.tangle = FakeTangle(hashes, confirmed)


class TestSweeps:
    def test_sweep_requires_every_node(self):
        tracker, registry, clock = make_tracker()
        handle = tracker.begin_submission("device-0")
        tracker.bind(handle, b"\x01" * 32)
        partial = [FakeNode([b"\x01" * 32]), FakeNode([])]
        assert tracker.sweep_confirmations(partial) == 0
        assert not handle.confirmed

        clock.t = 5.0
        everywhere = [FakeNode([b"\x01" * 32]), FakeNode([b"\x01" * 32])]
        assert tracker.sweep_confirmations(everywhere) == 1
        assert handle.confirmed
        assert handle.stage_time("confirmed") == 5.0
        hist = registry.histogram("repro_lifecycle_confirmation_seconds")
        assert hist.merged().count == 1
        # Repeat sweeps are idempotent.
        assert tracker.sweep_confirmations(everywhere) == 0

    def test_coverage_gauge_is_mean_over_bound_timelines(self):
        tracker, registry, _ = make_tracker()
        a = tracker.begin_submission("device-0")
        b = tracker.begin_submission("device-1")
        tracker.bind(a, b"\x01" * 32)
        tracker.bind(b, b"\x02" * 32)
        tracker.record(b"\x01" * 32, "attached", "manager")
        tracker.record(b"\x01" * 32, "attached", "gateway-0")
        tracker.record(b"\x02" * 32, "attached", "manager")
        tracker.finalize(node_count=2)
        gauge = registry.gauge("repro_lifecycle_propagation_coverage_ratio")
        assert gauge.value() == pytest.approx((2 / 2 + 1 / 2) / 2)


class TestNullLifecycle:
    def test_coerce(self):
        assert coerce_lifecycle(None) is NULL_LIFECYCLE
        tracker, _, _ = make_tracker()
        assert coerce_lifecycle(tracker) is tracker

    def test_null_surface_is_inert(self):
        null = NullLifecycle()
        handle = null.begin_submission("device-0")
        assert handle is None
        null.record_handle(handle, "tips_received", "device-0")
        null.bind(handle, b"\x01" * 32)
        null.record(b"\x01" * 32, "received", "manager")
        with null.ingest(b"\x01" * 32, node="manager") as span:
            assert span is None
        assert null.sweep_confirmations([]) == 0
        null.finalize(node_count=0)
        assert null.timelines() == []
        assert null.context_of(b"\x01" * 32) is None
        assert not null.enabled


class TestEndToEnd:
    def test_deployment_hop_chain(self):
        """A real (small) telemetry deployment: sampled transactions
        must produce hop spans on multiple nodes, all within one trace,
        with the root reachable by walking parent links."""
        from repro.core.biot import BIoTConfig, BIoTSystem

        config = BIoTConfig(device_count=2, gateway_count=2, seed=11,
                            initial_difficulty=8, tip_alpha=0.05,
                            telemetry=True)
        system = BIoTSystem.build(config)
        system.initialize()
        system.start_devices()
        system.run_for(12.0)
        for device in system.devices:
            device.stop()
        system.run_for(4.0)
        system.lifecycle.finalize(node_count=len(system.full_nodes))

        delivered = [t for t in system.lifecycle.timelines()
                     if t.bound and t.attached_nodes()]
        assert delivered, "no sampled transaction was delivered"
        spans_by_id = {s.span_id: s
                       for s in system.tracer.finished()}
        for timeline in delivered:
            hops = [s for s in system.tracer.finished("tx.ingest")
                    if s.trace_id == timeline.trace_id]
            assert len(hops) == len(timeline.attached_nodes())
            for hop in hops:
                # Walk to the root: every hop chains back to the
                # timeline's tx.lifecycle span.
                cursor = hop
                while cursor.parent_id is not None:
                    cursor = spans_by_id[cursor.parent_id]
                assert cursor is timeline.root
            # At least one multi-hop chain exists for transactions
            # that reached more than one node.
            if len(hops) > 1:
                assert any(
                    hop.parent_id != timeline.root.span_id
                    for hop in hops
                ), "gossip hops never chained through a relay span"
