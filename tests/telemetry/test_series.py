"""TimeSeries: ordered storage and bisect window queries."""

import pytest

from repro.telemetry.series import TimeSeries


class TestAppend:
    def test_in_order_appends(self):
        series = TimeSeries()
        for t in (1.0, 2.0, 2.0, 5.0):
            series.append(t)
        assert series.timestamps == [1.0, 2.0, 2.0, 5.0]
        assert len(series) == 4

    def test_out_of_order_insert_keeps_sorted(self):
        series = TimeSeries()
        for t in (5.0, 1.0, 3.0):
            series.append(t, value=t)
        assert series.timestamps == [1.0, 3.0, 5.0]
        assert series.values == [1.0, 3.0, 5.0]
        assert series.window_sum(0.0, 4.0) == 4.0


class TestWindows:
    def test_window_bounds_inclusive(self):
        series = TimeSeries()
        for t in (0.5, 1.0, 1.5, 9.0):
            series.append(t)
        assert series.window_count(1.0, 1.5) == 2
        assert series.window_count(0.0, 10.0) == 4
        assert series.window_count(2.0, 8.0) == 0

    def test_rate(self):
        series = TimeSeries()
        for t in (0.5, 1.0, 1.5, 9.0):
            series.append(t)
        assert series.rate(0.0, 10.0) == 0.4

    def test_rate_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            TimeSeries().rate(1.0, 1.0)

    def test_window_sum_after_mixed_inserts(self):
        series = TimeSeries()
        series.append(2.0, value=10.0)
        series.append(1.0, value=1.0)  # out of order: prefix goes stale
        series.append(3.0, value=100.0)
        assert series.window_sum(1.0, 2.0) == 11.0
        assert series.window_sum(0.0, 3.0) == 111.0

    def test_first_at_or_after(self):
        series = TimeSeries()
        for t in (1.0, 3.0):
            series.append(t)
        assert series.first_at_or_after(0.0) == 0
        assert series.first_at_or_after(2.0) == 1
        assert series.first_at_or_after(4.0) == 2
