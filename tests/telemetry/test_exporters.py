"""Exporter output against checked-in golden files.

The golden artifacts live next to this test in ``goldens/``; they pin
the exact JSONL record shapes and Prometheus exposition layout so a
formatting regression shows up as a readable diff.  Regenerate with::

    PYTHONPATH=src python tests/telemetry/test_exporters.py regen
"""

import io
import json
import pathlib
import sys

from repro.telemetry.exporters import (
    export_jsonl,
    render_summary,
    to_prometheus_text,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracer import Tracer

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t


def build_sample():
    """A small deterministic registry + tracer exercising every
    instrument kind, label sets and span nesting."""
    clock = FakeClock()
    registry = MetricsRegistry(clock)
    tracer = Tracer(clock)
    requests = registry.counter("repro_demo_requests_total",
                                "Demo requests served")
    depth = registry.gauge("repro_demo_queue_depth", "Demo queue depth")
    latency = registry.histogram("repro_demo_latency_seconds",
                                 "Demo latency", buckets=(0.1, 1.0, 10.0))
    registry.counter("repro_demo_idle_total", "Never emitted")

    clock.t = 1.0
    with tracer.span("phase", kind="demo"):
        requests.inc(node="a")
        clock.t = 2.0
        with tracer.span("step"):
            requests.inc(2, node="b")
            depth.set(3)
            clock.t = 3.0
        latency.observe(0.05, node="a")
        latency.observe(5.0, node="a")
        clock.t = 4.0
    return registry, tracer


def test_jsonl_matches_golden():
    registry, tracer = build_sample()
    sink = io.StringIO()
    records = export_jsonl(sink, registry=registry, tracer=tracer)
    assert records == 8  # 5 metric events + 2 spans + 1 meta
    expected = (GOLDEN_DIR / "sample.jsonl").read_text()
    assert sink.getvalue() == expected


def test_jsonl_lines_are_valid_json_in_time_order():
    registry, tracer = build_sample()
    sink = io.StringIO()
    export_jsonl(sink, registry=registry, tracer=tracer)
    rows = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert [r["t"] for r in rows] == sorted(r["t"] for r in rows)
    assert {r["type"] for r in rows} == {"metric", "span", "meta"}

    spans = {r["name"]: r for r in rows if r["type"] == "span"}
    assert spans["step"]["parent_id"] == spans["phase"]["span_id"]
    assert spans["phase"]["duration"] == 3.0

    meta = rows[-1]
    assert meta["type"] == "meta"  # always the trailing record
    assert meta["events_recorded"] == 5
    assert meta["events_dropped"] == 0


def test_prometheus_matches_golden():
    registry, _ = build_sample()
    expected = (GOLDEN_DIR / "sample.prom").read_text()
    assert to_prometheus_text(registry) == expected


def test_prometheus_histogram_buckets_are_cumulative():
    registry, _ = build_sample()
    text = to_prometheus_text(registry)
    assert ('repro_demo_latency_seconds_bucket'
            '{le="0.1",node="a"} 1') in text
    assert ('repro_demo_latency_seconds_bucket'
            '{le="10",node="a"} 2') in text
    assert ('repro_demo_latency_seconds_bucket'
            '{le="+Inf",node="a"} 2') in text
    assert 'repro_demo_latency_seconds_count{node="a"} 2' in text


def test_render_summary_lists_every_instrument():
    registry, _ = build_sample()
    table = render_summary(registry)
    for name in ("repro_demo_requests_total", "repro_demo_queue_depth",
                 "repro_demo_latency_seconds", "repro_demo_idle_total"):
        assert name in table
    assert "histogram" in table
    assert "total=3" in table  # requests across both label sets


def test_render_summary_includes_quantiles_and_drop_count():
    registry, _ = build_sample()
    table = render_summary(registry)
    assert "p50=" in table and "p95=" in table and "p99=" in table
    assert table.rstrip().endswith("event log: 5 recorded, 0 dropped")


def test_prometheus_quantile_gauges():
    registry, _ = build_sample()
    text = to_prometheus_text(registry)
    # Interpolated estimates for the two observations (0.05, 5.0): the
    # p50 target lands exactly on the first bucket's upper edge (0.1).
    assert ('repro_demo_latency_seconds_quantile'
            '{node="a",quantile="0.5"} 0.1') in text
    assert 'quantile="0.99"' in text
    assert "repro_telemetry_events_dropped_total 0" in text


def _regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    registry, tracer = build_sample()
    sink = io.StringIO()
    export_jsonl(sink, registry=registry, tracer=tracer)
    (GOLDEN_DIR / "sample.jsonl").write_text(sink.getvalue())
    (GOLDEN_DIR / "sample.prom").write_text(to_prometheus_text(registry))
    print(f"regenerated goldens in {GOLDEN_DIR}")


if __name__ == "__main__" and "regen" in sys.argv:
    _regenerate()
