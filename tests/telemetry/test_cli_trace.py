"""The ``repro trace`` subcommand: artifacts, byte-determinism, and
the acceptance properties of the causal trees it emits."""

import json

from repro.cli import build_parser, main
from repro.telemetry.scenario import run_trace_scenario
from repro.telemetry.trace_export import (
    chrome_trace_json,
    dominant_stage,
    lifecycle_report,
    render_lifecycle_text,
)


def run_once(seed=7, seconds=12.0):
    system = run_trace_scenario(seed=seed, seconds=seconds)
    lifecycle = system.lifecycle
    node_count = len(system.full_nodes)
    return {
        "trace": chrome_trace_json(system.tracer, lifecycle),
        "report": json.dumps(lifecycle_report(lifecycle,
                                              node_count=node_count),
                             sort_keys=True, separators=(",", ":")),
        "text": render_lifecycle_text(lifecycle, node_count=node_count),
        "system": system,
    }


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.scenario == "smoke"
        assert args.seed == 7
        assert args.sample_every == 1


class TestDeterminism:
    def test_two_runs_are_byte_identical(self):
        """Same seed, two fresh runs in one process: every artifact
        must match byte for byte (the trace-smoke CI property)."""
        first = run_once()
        second = run_once()
        assert first["trace"] == second["trace"]
        assert first["report"] == second["report"]
        assert first["text"] == second["text"]

    def test_different_seeds_diverge(self):
        assert run_once(seed=7)["trace"] != run_once(seed=8)["trace"]


class TestAcceptance:
    def test_trees_span_nodes_and_name_critical_path(self):
        """Every delivered transaction's causal tree covers at least
        three nodes (device + two full nodes) and names a dominant
        critical-path stage."""
        run = run_once()
        lifecycle = run["system"].lifecycle
        delivered = [t for t in lifecycle.timelines()
                     if t.bound and t.attached_nodes()]
        assert delivered, "trace scenario delivered nothing"
        for timeline in delivered:
            assert len(timeline.nodes()) >= 3, timeline.trace_id
            assert dominant_stage(timeline) is not None

    def test_report_has_quantiles_and_coverage(self):
        report = json.loads(run_once()["report"])
        assert report["delivered"] > 0
        assert 0.0 < report["propagation_coverage"] <= 1.0
        attach = report["submit_to_attach"]
        assert attach["count"] == report["delivered"]
        assert attach["p50"] is not None
        assert report["critical_path_totals"]

    def test_chrome_trace_loads_in_viewer_shape(self):
        doc = json.loads(run_once()["trace"])
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "tx.ingest"
                   for e in events)
        assert any(e["ph"] == "i" and e["name"] == "stage:confirmed"
                   for e in events)
        # Multiple transaction rows, each named by its trace id.
        tx_rows = [e for e in events if e["ph"] == "M"
                   and e["args"]["name"].startswith("tx:")]
        assert len(tx_rows) >= 2


class TestCommand:
    def test_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        code = main(["trace", "--scenario", "smoke", "--seed", "7",
                     "--seconds", "12", "--out-dir", str(out_dir)])
        assert code == 0

        out = capsys.readouterr().out
        assert "transaction lifecycle report" in out
        assert "chrome trace ->" in out

        doc = json.loads((out_dir / "trace.json").read_text())
        assert doc["traceEvents"]
        report = json.loads((out_dir / "lifecycle.json").read_text())
        assert report["delivered"] > 0
        text = (out_dir / "lifecycle.txt").read_text()
        assert "critical path:" in text
